"""Ablation E8: replication factors and data-movement (stationary) choice.

Reproduces the replication trade-off the paper describes for the MLP-2
outer-product configuration on PVC — "without replication, local GEMM
performance was low due to suboptimal local GEMM sizes; with a high
replication factor, local GEMM performance was very high, but performance was
impacted by high accumulation overhead.  The optimal replication factor ...
is a happy medium" — and the sensitivity of performance to the stationary
matrix choice.
"""

import pytest

from benchmarks.harness_common import write_result
from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_ua_point, valid_replication_factors
from repro.bench.workloads import mlp1_workload, mlp2_workload
from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.core.stationary import estimate_all_strategies
from repro.dist.matrix import DistributedMatrix
from repro.runtime.runtime import Runtime
from repro.topology.machines import pvc_system

MACHINE = pvc_system(12)
CONFIG = ExecutionConfig(simulate_only=True)


@pytest.fixture(scope="module")
def replication_sweep():
    """Outer-product MLP-2: percent of peak vs (uniform) replication factor."""
    workload = mlp2_workload(8192)
    scheme = scheme_by_name("outer")
    results = {}
    for factor in valid_replication_factors(MACHINE.num_devices):
        point = run_ua_point(MACHINE, workload, scheme, (factor, factor, factor),
                             stationary="B", config=CONFIG)
        results[factor] = point
    return results


class TestReplicationAblation:
    def test_report(self, replication_sweep):
        lines = ["Outer-product MLP-2 (batch 8192) on 12xPVC: replication sweep",
                 "factor  pct_of_peak  get_MB  accumulate_MB",
                 "------  -----------  ------  -------------"]
        for factor, point in sorted(replication_sweep.items()):
            lines.append(
                f"{factor:<7d} {point.percent_of_peak:10.1f}%  "
                f"{point.extra['remote_get_bytes'] / 1e6:6.0f}  "
                f"{point.extra['remote_accumulate_bytes'] / 1e6:13.0f}"
            )
        write_result("ablation_replication", "\n".join(lines))
        print("\n".join(lines))

    def test_replication_reduces_accumulate_volume(self, replication_sweep):
        """One side of the paper's trade-off: higher replication factors shrink
        the remote-accumulate volume (each replica only covers 1/c of the free
        dimension and accumulates into larger, more local tiles)."""
        factors = sorted(replication_sweep)
        volumes = [replication_sweep[f].extra["remote_accumulate_bytes"] for f in factors]
        assert all(late <= early for early, late in zip(volumes, volumes[1:]))

    def test_moderate_replication_within_reach_of_best(self, replication_sweep):
        """The other side of the trade-off: the reduce_replicas epilogue grows
        with c.  In this model the accumulates overlap with compute well enough
        that c=1 is already near-optimal (the paper's testbed found c=2-3 best);
        moderate replication must stay in the same performance class rather
        than collapse."""
        best = max(point.percent_of_peak for point in replication_sweep.values())
        assert replication_sweep[2].percent_of_peak >= 0.75 * best
        assert replication_sweep[3].percent_of_peak >= 0.7 * best

    def test_full_replication_not_optimal(self, replication_sweep):
        """c = p makes every rank hold everything; the reduce_replicas cost and
        lost parallelism mean it should not be the sweep's winner."""
        best = max(replication_sweep.values(), key=lambda p: p.percent_of_peak)
        assert best.replication[0] != MACHINE.num_devices


class TestStationaryChoiceAblation:
    def test_report_and_heuristic_quality(self):
        """Compare the three data-movement strategies for both MLP layers."""
        lines = ["Stationary-choice sensitivity (12xPVC, batch 8192, column scheme)",
                 "layer   S-A      S-B      S-C"]
        for layer, make in (("mlp1", mlp1_workload), ("mlp2", mlp2_workload)):
            workload = make(8192)
            scheme = scheme_by_name("column")
            pct = {}
            for stationary in ("A", "B", "C"):
                point = run_ua_point(MACHINE, workload, scheme, (1, 1, 1),
                                     stationary=stationary, config=CONFIG)
                pct[stationary] = point.percent_of_peak
            lines.append(f"{layer}   {pct['A']:6.1f}%  {pct['B']:6.1f}%  {pct['C']:6.1f}%")
            # Moving the big weight matrix (Stationary A for these layouts)
            # must never be the best choice.
            assert max(pct, key=pct.get) != "A"
        write_result("ablation_stationary", "\n".join(lines))
        print("\n".join(lines))

    def test_cost_model_selection_matches_exhaustive_check(self):
        """The cost model's strategy estimate must rank the true winner first
        (or within 10%) for a representative problem."""
        workload = mlp1_workload(2048)
        scheme = scheme_by_name("column")
        runtime = Runtime(machine=MACHINE)
        part_a, part_b, part_c = scheme.partitions(workload, 12, 12, 12)
        a = DistributedMatrix.create(runtime, workload.shapes[0], part_a, name="A",
                                     materialize=False)
        b = DistributedMatrix.create(runtime, workload.shapes[1], part_b, name="B",
                                     materialize=False)
        c = DistributedMatrix.create(runtime, workload.shapes[2], part_c, name="C",
                                     materialize=False)
        cost_model = CostModel(MACHINE)
        estimates = estimate_all_strategies(a, b, c, cost_model)
        predicted = min(estimates, key=estimates.get)

        measured = {}
        for stationary in ("A", "B", "C"):
            point = run_ua_point(MACHINE, workload, scheme, (1, 1, 1),
                                 stationary=stationary, config=CONFIG)
            measured[stationary] = point.simulated_time
        best = min(measured, key=measured.get)
        assert measured[predicted.value] <= measured[best] * 1.10


def test_benchmark_replication_point(benchmark):
    workload = mlp2_workload(4096)
    scheme = scheme_by_name("outer")
    point = benchmark(run_ua_point, MACHINE, workload, scheme, (3, 3, 3), "B", CONFIG)
    assert point.percent_of_peak > 0
