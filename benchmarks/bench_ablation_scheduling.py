"""Ablation E7: direct execution vs lowering to the optimized IR.

Section 5.2 of the paper: optimal scheduling mattered for problems with
misaligned tiles before the direct-execution optimisations were added, but
with the iteration offset, prefetching, and asynchronous execution in place,
"direct execution was almost always as efficient as the optimal schedule".

Two comparisons are made here:

1. **Same timing model** (the headline check): the exhaustive-search lowering
   is used only to pick an *op order*, and that order is executed by the
   direct engine under the full contention model.  Direct execution with the
   paper's default order must be within a few percent of the search-optimised
   order.
2. **IR executor** (reported for completeness): the IR path's own step-bucket
   simulator, which by design does not model cross-rank link contention and is
   therefore an optimistic lower bound.

The Section 4.2 optimisations (asynchrony, prefetch, iteration offset, memory
pool) are ablated individually as well.
"""

import pytest

from benchmarks.harness_common import write_result
from repro.core.config import ExecutionConfig, ExecutionMode, LoweringStrategy
from repro.core.cost_model import CostModel
from repro.core.lowering import lower_all_ranks
from repro.core.matmul import universal_matmul
from repro.core.slicing import apply_iteration_offset, generate_all_ops
from repro.core.direct import DirectExecutor
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import CustomTiles
from repro.runtime.runtime import Runtime
from repro.topology.machines import pvc_system

MACHINE = pvc_system(12)
SCALE = 1024


def misaligned_problem(scale: int = SCALE):
    """A Figure-1-style problem whose operand tiles intentionally do not align."""
    m, n, k = 13 * scale, 11 * scale, 9 * scale
    runtime = Runtime(machine=MACHINE)
    a_part = CustomTiles([0, 3 * scale, 8 * scale, m], [0, 4 * scale, k])
    b_part = CustomTiles([0, 5 * scale, k], [0, 2 * scale, 6 * scale, n])
    c_part = CustomTiles([0, 6 * scale, m], [0, 3 * scale, 7 * scale, n])
    a = DistributedMatrix.create(runtime, (m, k), a_part, name="A", materialize=False)
    b = DistributedMatrix.create(runtime, (k, n), b_part, name="B", materialize=False)
    c = DistributedMatrix.create(runtime, (m, n), c_part, name="C", materialize=False)
    return a, b, c


def run_with(config: ExecutionConfig) -> float:
    a, b, c = misaligned_problem()
    return universal_matmul(a, b, c, stationary="C", config=config).simulated_time


def run_direct_with_search_order() -> float:
    """Execute the exhaustive-search (or cost-greedy fallback) op order with the
    direct engine, so both sides of the comparison share one contention model."""
    a, b, c = misaligned_problem()
    cost_model = CostModel(MACHINE)
    per_rank_ops = generate_all_ops(a, b, c, Stationary.C)
    config = ExecutionConfig(simulate_only=True, exhaustive_search_limit=50000)
    programs = lower_all_ranks(per_rank_ops, cost_model, config,
                               LoweringStrategy.EXHAUSTIVE)
    reordered = {
        rank: [per_rank_ops[rank][i] for i in programs[rank].compute_indices()]
        for rank in per_rank_ops
    }
    executor = DirectExecutor(a, b, c, cost_model,
                              ExecutionConfig(simulate_only=True, iteration_offset=False))
    makespan, _ = executor.execute(reordered)
    return makespan


CONFIGS = {
    "direct (paper defaults)": ExecutionConfig(simulate_only=True),
    "direct, no iteration offset": ExecutionConfig(simulate_only=True,
                                                   iteration_offset=False),
    "direct, no prefetch": ExecutionConfig(simulate_only=True, prefetch_depth=0),
    "direct, fully synchronous": ExecutionConfig.synchronous().evolve(simulate_only=True),
    "IR greedy (no contention model)": ExecutionConfig(
        simulate_only=True, mode=ExecutionMode.IR, lowering=LoweringStrategy.GREEDY),
    "IR cost-model greedy (no contention model)": ExecutionConfig(
        simulate_only=True, mode=ExecutionMode.IR, lowering=LoweringStrategy.COST_GREEDY),
    "IR exhaustive (no contention model)": ExecutionConfig(
        simulate_only=True, mode=ExecutionMode.IR, lowering=LoweringStrategy.EXHAUSTIVE,
        exhaustive_search_limit=50000),
}


@pytest.fixture(scope="module")
def results():
    outcome = {name: run_with(config) for name, config in CONFIGS.items()}
    outcome["direct, exhaustive-search op order"] = run_direct_with_search_order()
    return outcome


class TestSchedulingAblation:
    def test_report(self, results):
        lines = ["Scheduling ablation on a misaligned-tile problem (12xPVC model)",
                 "----------------------------------------------------------------"]
        baseline = results["direct (paper defaults)"]
        for name, value in sorted(results.items(), key=lambda item: item[1]):
            lines.append(f"{name:<44s} {value * 1e3:9.3f} ms   ({value / baseline:5.2f}x)")
        write_result("ablation_scheduling", "\n".join(lines))
        print("\n".join(lines))

    def test_direct_execution_close_to_optimised_order(self, results):
        """The paper's headline scheduling claim, under a single timing model."""
        direct = results["direct (paper defaults)"]
        optimised = results["direct, exhaustive-search op order"]
        assert direct <= optimised * 1.10

    def test_asynchrony_is_the_dominant_optimisation(self, results):
        assert results["direct, fully synchronous"] > \
            1.5 * results["direct (paper defaults)"]

    def test_iteration_offset_does_not_hurt(self, results):
        assert results["direct (paper defaults)"] <= \
            results["direct, no iteration offset"] * 1.02

    def test_prefetch_within_noise_of_no_prefetch(self, results):
        """Prefetch traffic competes with demand traffic under contention, so
        its benefit on this problem is small; it must not cost more than a few
        percent either."""
        assert results["direct (paper defaults)"] <= \
            results["direct, no prefetch"] * 1.10

    def test_ir_lower_bound_consistency(self, results):
        """The contention-free IR estimates must not exceed the direct engine's
        contention-aware times (they are optimistic by construction)."""
        assert results["IR exhaustive (no contention model)"] <= \
            results["direct (paper defaults)"] * 1.05


@pytest.mark.parametrize("name", ["direct (paper defaults)",
                                  "IR cost-model greedy (no contention model)"])
def test_benchmark_scheduling_mode(benchmark, name):
    config = CONFIGS[name]
    time = benchmark(run_with, config)
    assert time > 0
