"""Adaptive refresh: background planning must change *when*, never *what*.

PR 8 moved every reason a cold plan used to run synchronously — TTL expiry,
drifting structure, first-seen-next signatures — off the request path
(``repro.planner.refresh``).  This benchmark replays one recorded traffic
trace under a deliberately short TTL in two modes and pins the three
promises that made that acceptable:

* **bit-identical recommendations** — every request's winning plan (scheme,
  replication, stationary operand, simulated time) is identical with the
  refresher on and off, request by request: the search is deterministic per
  signature, so background refresh can only move *when* it runs;
* **zero request-path cold plans once warm** — with the refresher on, after
  each distinct signature's first request every later response is a cache
  hit (fresh or stale-while-revalidate); the same trace without the
  refresher re-plans on the request path five times;
* **exact stale-serve accounting** — the one deliberate traffic gap in the
  trace produces exactly one grace-window serve, and the response flags,
  service counters, and cache counters all agree on it.

The trace runs on an injectable fake clock, so every number in the committed
snapshot — outcomes, stale flags, plan identities, counter totals — is
deterministic and ``--check`` compares all of it exactly.

Usage:
    python benchmarks/bench_adaptive_refresh.py --check   # default
    python benchmarks/bench_adaptive_refresh.py --write
"""

from __future__ import annotations

import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_BENCH = os.path.dirname(os.path.abspath(__file__))
if _BENCH not in sys.path:
    sys.path.insert(0, _BENCH)

from harness_common import RESULTS_DIR, snapshot_cli, write_result

from repro.bench.workloads import Workload
from repro.planner import BackgroundRefresher, PlannerService
from repro.topology.machines import uniform_system

SNAPSHOT_PATH = os.path.join(RESULTS_DIR, "adaptive_refresh.json")

#: Plans expire after this many (fake) seconds — short enough that the trace
#: crosses several expiries.
TTL_SECONDS = 30.0

#: Stale-while-revalidate window on top of the TTL (refresher-on mode only).
GRACE_SECONDS = 300.0

#: Fraction of the TTL treated as the pre-expiry refresh window.
REFRESH_MARGIN = 0.5

#: The recorded trace: ``(workload name, seconds since previous request)``.
#: Three signatures cycle under steady traffic, then one 40 s gap lets every
#: entry expire — the refresher-on replay serves exactly one stale plan
#: across the whole trace, the refresher-off replay re-plans five times.
TRACE = [
    ("a", 0.0), ("b", 5.0), ("c", 5.0),    # warmup: three unavoidable colds
    ("a", 5.0), ("b", 5.0), ("c", 5.0),    # steady traffic, all fresh hits
    ("a", 10.0), ("b", 5.0),               # pre-TTL refresh absorbs aging
    ("a", 40.0),                           # gap: expired-in-grace -> stale
    ("a", 1.0), ("b", 1.0), ("c", 1.0),    # refreshed off-path: fresh again
]

WORKLOADS = {
    "a": Workload("a", 96, 80, 64),
    "b": Workload("b", 512, 80, 64),
    "c": Workload("c", 96, 512, 64),
}

SERVICE_OPTIONS = {"replication_factors": [1, 2],
                   "stationary_options": ("B", "C")}


class _FakeClock:
    """Manually advanced clock injected into the service/cache."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


def _outcome(response) -> str:
    """Classify one response (single-threaded: coalescing cannot occur)."""
    if not response.cache_hit:
        return "computed"
    return "stale" if response.stale else "hit"


def _replay(adaptive: bool) -> dict:
    """Replay the trace with the refresher on (``adaptive``) or off.

    The off mode runs a plain short-TTL cache — every expiry is a
    request-path cold plan, which is exactly the behavior the refresher
    exists to remove.  Both modes advance the same fake clock through the
    same schedule, so request ``i`` sees the same wall-clock instant in
    both replays.
    """
    clock = _FakeClock()
    options = dict(SERVICE_OPTIONS, cache_ttl_seconds=TTL_SECONDS, clock=clock)
    if adaptive:
        options["cache_grace_seconds"] = GRACE_SECONDS
    service = PlannerService(uniform_system(4), **options)
    refresher = (BackgroundRefresher(service, refresh_margin=REFRESH_MARGIN)
                 if adaptive else None)
    requests = []
    try:
        for name, advance in TRACE:
            clock.now += advance
            response = service.plan(WORKLOADS[name])
            winner = response.recommendation
            requests.append({
                "workload": name,
                "outcome": _outcome(response),
                "stale": response.stale,
                "plan_age": round(response.plan_age, 6),
                "scheme": winner.scheme.name,
                "replication": list(winner.replication),
                "stationary": winner.stationary,
                "simulated_time": winner.simulated_time,
            })
            if refresher is not None:
                refresher.run_once()
        stats = service.stats()
        cache = service.cache_stats()
        return {
            "mode": "adaptive" if adaptive else "off",
            "requests": requests,
            "cold_plans": sum(1 for r in requests if r["outcome"] == "computed"),
            "stale_serves": sum(1 for r in requests if r["stale"]),
            "stats_stale_hits": stats.stale_hits,
            "cache_stale_serves": cache.stale_serves,
            "background_refreshes": stats.background_refreshes,
            "plans_computed": stats.plans_computed,
        }
    finally:
        if refresher is not None:
            refresher.close()
        service.close()


def compute_points() -> dict:
    """Both replays, keyed by mode."""
    return {"off": _replay(adaptive=False),
            "adaptive": _replay(adaptive=True)}


def _verify(points: dict) -> list:
    """The machine-independent invariants (everything here is deterministic)."""
    off, on = points["off"], points["adaptive"]
    failures = []
    warmup = len(WORKLOADS)
    for index, (a, b) in enumerate(zip(off["requests"], on["requests"])):
        for field in ("scheme", "replication", "stationary", "simulated_time"):
            if a[field] != b[field]:
                failures.append(
                    f"request {index} ({a['workload']}): refresher changed "
                    f"{field}: {a[field]!r} -> {b[field]!r}")
    seen = set()
    for index, record in enumerate(on["requests"]):
        if record["workload"] not in seen:
            seen.add(record["workload"])
            continue
        if record["outcome"] == "computed":
            failures.append(
                f"request {index} ({record['workload']}) ran a cold plan on "
                f"the request path after warmup")
    if on["cold_plans"] != warmup:
        failures.append(f"adaptive replay computed {on['cold_plans']} "
                        f"request-path plans, expected the {warmup} warmups")
    if off["cold_plans"] <= warmup:
        failures.append("off replay never re-planned: the trace no longer "
                        "exercises TTL expiry")
    if on["stale_serves"] != 1:
        failures.append(f"expected exactly 1 stale serve in the adaptive "
                        f"replay, saw {on['stale_serves']}")
    for counter in ("stats_stale_hits", "cache_stale_serves"):
        if on[counter] != on["stale_serves"]:
            failures.append(
                f"stale accounting disagrees: {on['stale_serves']} flagged "
                f"responses but {counter} = {on[counter]}")
    if on["background_refreshes"] < 1:
        failures.append("adaptive replay never refreshed in the background")
    if (on["plans_computed"]
            != on["cold_plans"] + on["background_refreshes"]):
        failures.append("plans_computed does not decompose into request-path "
                        "colds + background refreshes")
    return failures


def render(points: dict) -> str:
    off, on = points["off"], points["adaptive"]
    lines = [
        f"adaptive refresh replay ({len(TRACE)} requests, "
        f"{len(WORKLOADS)} signatures, ttl {TTL_SECONDS:.0f}s)",
        "",
        f"{'mode':<10} {'request-path colds':>18} {'stale serves':>13} "
        f"{'bg refreshes':>13}",
    ]
    for record in (off, on):
        lines.append(f"{record['mode']:<10} {record['cold_plans']:>18} "
                     f"{record['stale_serves']:>13} "
                     f"{record['background_refreshes']:>13}")
    lines.append("")
    lines.append(f"recommendations identical across modes on all "
                 f"{len(TRACE)} requests; post-warmup request-path "
                 f"colds: {off['cold_plans'] - len(WORKLOADS)} -> 0")
    return "\n".join(lines)


def write_snapshot(path: str = SNAPSHOT_PATH) -> str:
    points = compute_points()
    failures = _verify(points)
    if failures:
        raise SystemExit("adaptive refresh invariants failed:\n  "
                         + "\n  ".join(failures))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "points": points}, handle, indent=1)
        handle.write("\n")
    text = render(points)
    print(text)
    write_result("adaptive_refresh", text)
    return path


def check_snapshot(path: str = SNAPSHOT_PATH) -> int:
    """Re-run both replays and compare everything to the committed record.

    The whole artifact is deterministic (fake clock, deterministic search),
    so the comparison is exact — outcomes, stale flags, plan identities,
    and counter totals all have to match.
    """
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    expected = snapshot["points"]

    points = compute_points()
    failures = _verify(points)
    for mode, record in points.items():
        want = expected.get(mode)
        if want is None:
            failures.append(f"mode {mode!r} missing from snapshot")
            continue
        for field in ("cold_plans", "stale_serves", "background_refreshes",
                      "plans_computed", "stats_stale_hits",
                      "cache_stale_serves"):
            if record[field] != want[field]:
                failures.append(f"{mode}: {field} {record[field]!r} != "
                                f"snapshot {want[field]!r}")
        for index, (got, exp) in enumerate(zip(record["requests"],
                                               want["requests"])):
            if got != exp:
                failures.append(f"{mode}: request {index} diverged from "
                                f"snapshot: {got!r} != {exp!r}")
        if len(record["requests"]) != len(want["requests"]):
            failures.append(f"{mode}: request count "
                            f"{len(record['requests'])} != "
                            f"snapshot {len(want['requests'])}")
    print(render(points))
    if failures:
        print("adaptive refresh check FAILED:\n  " + "\n  ".join(failures))
        return len(failures)
    print("adaptive refresh: OK")
    return 0


def main(argv=None) -> int:
    return snapshot_cli(__doc__, SNAPSHOT_PATH, write_snapshot,
                        check_snapshot, argv)


if __name__ == "__main__":
    raise SystemExit(main())
