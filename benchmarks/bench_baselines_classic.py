"""Experiment E9: the universal algorithm on the classical algorithms' home turf.

The paper's Section 2 positions the universal algorithm against the classical
zoo (1D, Cannon, SUMMA, 1.5D, 2.5D, COSMA).  This benchmark runs square,
aligned problems — the setting those algorithms were designed for — and checks
that the universal algorithm with a traditional aligned 2D partitioning is in
the same performance class as SUMMA rather than paying a large generality
penalty, while the DTensor-style 1-D shardings and the 1-D ring lag on large
square problems.
"""

import pytest

from benchmarks.harness_common import write_result
from repro.baselines import Cannon, CosmaLike, OneAndHalfD, OneDRing, Summa, TwoAndHalfD
from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_baseline_series, run_ua_point
from repro.bench.workloads import square_workload
from repro.core.config import ExecutionConfig
from repro.topology.machines import h100_system, pvc_system

MACHINE = pvc_system(12)
CONFIG = ExecutionConfig(simulate_only=True)
SIZES = (8192, 16384, 32768)


@pytest.fixture(scope="module")
def results():
    algorithms = [OneDRing(), Summa(), Cannon(), OneAndHalfD(2), TwoAndHalfD(2),
                  CosmaLike()]
    table = {}
    for size in SIZES:
        workload = square_workload(size)
        rows = {}
        baseline_points = run_baseline_series(MACHINE, [workload], algorithms)
        for point in baseline_points:
            rows[point.series] = point.percent_of_peak
        for scheme_name, stationary in (("traditional", "C"), ("column", "C")):
            best = 0.0
            for factor in (1, 2, 3):
                point = run_ua_point(MACHINE, workload, scheme_by_name(scheme_name),
                                     (factor, factor, factor), stationary, CONFIG)
                best = max(best, point.percent_of_peak)
            rows[f"UA - {scheme_name}"] = best
        table[size] = rows
    return table


class TestClassicComparison:
    def test_report(self, results):
        series_names = sorted({name for rows in results.values() for name in rows})
        lines = ["Square problems on the 12xPVC model: percent of FP32 peak",
                 "series".ljust(20) + "".join(f"{size:>10}" for size in SIZES)]
        for name in series_names:
            cells = "".join(f"{results[size].get(name, 0.0):9.1f}%" for size in SIZES)
            lines.append(name.ljust(20) + cells)
        write_result("baselines_classic", "\n".join(lines))
        print("\n".join(lines))

    def test_ua_traditional_in_summa_class(self, results):
        """No large generality penalty on aligned 2D problems.

        The SUMMA/Cannon numbers come from idealised analytic models with no
        per-op overheads or link contention, so the universal algorithm's
        contention-aware simulation is held to a relative bar (half of SUMMA at
        the smallest size, 80% at the largest) rather than parity; the absolute
        gap closes as the problem grows.
        """
        for size in SIZES:
            assert results[size]["UA - traditional"] >= 0.5 * results[size]["summa"]
        largest, smallest = SIZES[-1], SIZES[0]
        assert results[largest]["UA - traditional"] >= 0.8 * results[largest]["summa"]
        gap_small = results[smallest]["summa"] - results[smallest]["UA - traditional"]
        gap_large = results[largest]["summa"] - results[largest]["UA - traditional"]
        assert gap_large <= gap_small

    def test_summa_beats_1d_ring_on_square_problems(self, results):
        assert results[SIZES[0]]["summa"] > results[SIZES[0]]["1d_ring"]

    def test_every_algorithm_improves_with_size(self, results):
        for name in ("summa", "UA - traditional"):
            assert results[SIZES[-1]][name] >= results[SIZES[0]][name]


def test_benchmark_summa_model(benchmark):
    result = benchmark(Summa().simulate, 8192, 8192, 8192, MACHINE)
    assert result.simulated_time > 0


def test_benchmark_cosma_selector(benchmark):
    result = benchmark(CosmaLike().simulate, 8192, 8192, 8192, h100_system(8))
    assert result.simulated_time > 0


def test_benchmark_ua_traditional_point(benchmark):
    workload = square_workload(8192)
    point = benchmark(run_ua_point, MACHINE, workload, scheme_by_name("traditional"),
                      (1, 1, 1), "C", CONFIG)
    assert point.percent_of_peak > 0
