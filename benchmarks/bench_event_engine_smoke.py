"""Event-engine drift smoke: pin simulated times to a committed snapshot.

The simulated times produced by the execution engines are pure functions of
the op lists and the machine model — they must not move when the plumbing
underneath them is refactored.  This tool simulates a small deterministic
grid of sweep points (both execution modes, several partitioning schemes and
machines) and compares every simulated time against the snapshot committed at
``benchmarks/results/event_engine_smoke.json`` with a 1e-9 relative
tolerance.  CI runs ``--check`` on every push; run ``--write`` only when a
deliberate cost-model change is being made, and say so in the commit.

Usage:
    python benchmarks/bench_event_engine_smoke.py --check   # default
    python benchmarks/bench_event_engine_smoke.py --write
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_BENCH = os.path.dirname(os.path.abspath(__file__))
if _BENCH not in sys.path:
    sys.path.insert(0, _BENCH)

from harness_common import check_snapshot_file, snapshot_cli, write_snapshot_file

from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig, ExecutionMode
from repro.topology.machines import h100_system, pvc_system, uniform_system

SNAPSHOT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "event_engine_smoke.json"
)
RELATIVE_TOLERANCE = 1.0e-9

_MACHINES = {
    "uniform4": lambda: uniform_system(4),
    "pvc4": lambda: pvc_system(4),
    # H100 exercises the accumulate/compute interference path.
    "h100_4": lambda: h100_system(4),
}
_WORKLOADS = [
    Workload(name="smoke_mlp", m=256, n=512, k=128),
    Workload(name="smoke_ksplit", m=192, n=192, k=384),
    Workload(name="smoke_attn", m=256, n=256, k=64),
]
_SCHEMES = ["column", "outer"]
_STATIONARY = ["A", "C"]
_MODES = ["direct", "ir"]
_REPLICATIONS = [(1, 1, 1), (2, 2, 2)]


def compute_points() -> list:
    """Simulate the smoke grid; returns one record per point, in a fixed order."""
    records = []
    for machine_name, factory in sorted(_MACHINES.items()):
        machine = factory()
        for workload in _WORKLOADS:
            for scheme_name in _SCHEMES:
                for replication in _REPLICATIONS:
                    for stationary in _STATIONARY:
                        for mode in _MODES:
                            config = ExecutionConfig(
                                mode=ExecutionMode(mode), simulate_only=True
                            )
                            point = run_ua_point(
                                machine,
                                workload,
                                scheme_by_name(scheme_name),
                                replication=replication,
                                stationary=stationary,
                                config=config,
                            )
                            records.append(
                                {
                                    "machine": machine_name,
                                    "workload": workload.name,
                                    "m": workload.m,
                                    "n": workload.n,
                                    "k": workload.k,
                                    "scheme": scheme_name,
                                    "replication": list(replication),
                                    "stationary": stationary,
                                    "mode": mode,
                                    "simulated_time": point.simulated_time,
                                    "percent_of_peak": point.percent_of_peak,
                                }
                            )
    return records


def _key(record: dict) -> tuple:
    return (
        record["machine"],
        record["workload"],
        record["scheme"],
        tuple(record["replication"]),
        record["stationary"],
        record["mode"],
    )


def write_snapshot(path: str = SNAPSHOT_PATH) -> str:
    return write_snapshot_file(path, compute_points(), RELATIVE_TOLERANCE)


def check_snapshot(path: str = SNAPSHOT_PATH) -> int:
    """Compare freshly simulated times against the snapshot; returns #mismatches."""
    return check_snapshot_file(path, compute_points(), _key, RELATIVE_TOLERANCE,
                               label="event-engine smoke")


def main(argv=None) -> int:
    return snapshot_cli(__doc__, SNAPSHOT_PATH, write_snapshot, check_snapshot, argv)


if __name__ == "__main__":
    raise SystemExit(main())
