"""Figure 2 (left): 12xPVC, FP32 GEMM, MLP-1 (m=batch, n=48K, k=12K).

Regenerates the percent-of-peak series for the six universal-algorithm
partitioning families (best replication factor and data-movement strategy per
batch size) and the DTensor row/column comparators, and checks the
qualitative findings the paper reports for this panel:

* column-block and inner-product partitionings — the ones that only move the
  A matrix — are the strongest UA configurations;
* the row partitioning, which must move the large B matrix, is the weakest;
* the best UA configuration is competitive with (here: at least as good as)
  the best DTensor sharding.
"""

import pytest

from benchmarks.harness_common import figure_points, render_figure
from repro.bench.report import series_from_points
from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import mlp1_workload
from repro.core.config import ExecutionConfig
from repro.topology.machines import pvc_system

MACHINE = pvc_system(12)


@pytest.fixture(scope="module")
def points():
    return figure_points(MACHINE, "mlp1")


class TestFigure2Mlp1:
    def test_regenerate_figure(self, points):
        text = render_figure("fig2_mlp1_pvc", "Figure 2 (left): 12xPVC FP32 MLP-1 H=12K",
                             points)
        assert "UA - Column" in text and "DT - Row" in text

    def test_column_and_inner_product_lead(self, points):
        series = series_from_points(points)
        at_8192 = {name: dict(values)[8192] for name, values in series.items()
                   if name.startswith("UA")}
        leaders = sorted(at_8192, key=at_8192.get, reverse=True)[:3]
        assert "UA - Column" in leaders
        assert at_8192["UA - Column"] >= at_8192["UA - Row"]
        assert at_8192["UA - Inner Prod."] >= at_8192["UA - Row"]

    def test_row_partitioning_is_weakest_ua(self, points):
        series = series_from_points(points)
        at_8192 = {name: dict(values)[8192] for name, values in series.items()
                   if name.startswith("UA")}
        assert min(at_8192, key=at_8192.get) == "UA - Row"

    def test_ua_best_competitive_with_dtensor(self, points):
        series = series_from_points(points)
        for batch in (2048, 4096, 8192):
            ua_best = max(dict(values)[batch] for name, values in series.items()
                          if name.startswith("UA"))
            dt_best = max(dict(values)[batch] for name, values in series.items()
                          if name.startswith("DT"))
            assert ua_best >= 0.95 * dt_best

    def test_percent_of_peak_increases_with_batch(self, points):
        series = series_from_points(points)
        column = dict(series["UA - Column"])
        assert column[8192] > column[1024]


def test_benchmark_single_point(benchmark):
    """pytest-benchmark target: one harness evaluation (op generation + simulation)."""
    workload = mlp1_workload(4096)
    scheme = scheme_by_name("column")
    config = ExecutionConfig(simulate_only=True)
    result = benchmark(run_ua_point, MACHINE, workload, scheme, (1, 1, 1), "C", config)
    assert result.percent_of_peak > 0
