"""Figure 2 (right): 12xPVC, FP32 GEMM, MLP-2 (m=batch, n=12K, k=48K).

The second MLP multiply shrinks the hidden dimension, so the output C matrix
is the smallest operand.  The paper finds that outer-product-style and 2D
block distributions — which avoid moving the large B weight matrix and instead
accumulate the small C — win on the bandwidth-limited PVC system, that
replication factors above 1 help, and that mixed replication (different
factor for C than for A/B) can help further.
"""

import pytest

from benchmarks.harness_common import figure_points, render_figure
from repro.bench.report import series_from_points
from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_ua_point, run_ua_sweep
from repro.bench.workloads import mlp2_workload
from repro.core.config import ExecutionConfig
from repro.topology.machines import pvc_system

MACHINE = pvc_system(12)


@pytest.fixture(scope="module")
def points():
    # Mixed output replication reproduces the "c_AB-c_C" annotations; restrict
    # the stationary sweep to the two relevant strategies to keep the sweep
    # size manageable (the paper's MLP-2 winners are all S-B or S-C).
    return figure_points(
        MACHINE, "mlp2",
        mixed_output_replication=True,
        stationary_options=("B", "C"),
        replication_factors=[1, 2, 3, 6],
    )


class TestFigure2Mlp2:
    def test_regenerate_figure(self, points):
        text = render_figure("fig2_mlp2_pvc", "Figure 2 (right): 12xPVC FP32 MLP-2 H=12K",
                             points)
        assert "UA - Outer Prod." in text

    def test_outer_product_and_block_lead(self, points):
        series = series_from_points(points)
        at_8192 = {name: dict(values)[8192] for name, values in series.items()
                   if name.startswith("UA")}
        leaders = sorted(at_8192, key=at_8192.get, reverse=True)[:3]
        assert "UA - Outer Prod." in leaders or "UA - Block" in leaders

    def test_outer_product_beats_row(self, points):
        series = series_from_points(points)
        at_8192 = {name: dict(values)[8192] for name, values in series.items()}
        assert at_8192["UA - Outer Prod."] > at_8192["UA - Row"]

    def test_replication_trade_off_for_outer_product(self):
        """The paper sees better MLP-2 performance with replication factors > 1
        because replication reduces the accumulate volume at the cost of a
        reduce_replicas epilogue.  Our model reproduces the volume reduction
        and keeps c=2 in the same performance class, but its accumulates
        overlap with compute well enough that c=1 already wins (documented
        deviation in EXPERIMENTS.md)."""
        workload = mlp2_workload(8192)
        scheme = scheme_by_name("outer")
        config = ExecutionConfig(simulate_only=True)
        flat = run_ua_point(MACHINE, workload, scheme, (1, 1, 1), "B", config)
        replicated = run_ua_point(MACHINE, workload, scheme, (2, 2, 2), "B", config)
        assert replicated.extra["remote_accumulate_bytes"] < \
            flat.extra["remote_accumulate_bytes"]
        assert replicated.percent_of_peak >= 0.8 * flat.percent_of_peak

    def test_best_points_annotate_replication(self, points):
        ua_points = [p for p in points if p.series.startswith("UA")]
        assert any(p.replication != (1, 1, 1) for p in ua_points)

    def test_ua_within_striking_distance_of_dtensor(self, points):
        """Paper: 'Our performance does not quite match DTensor's, coming within 5%'
        on this panel; we only require the same order of magnitude of closeness."""
        series = series_from_points(points)
        at_8192 = {name: dict(values)[8192] for name, values in series.items()}
        ua_best = max(value for name, value in at_8192.items() if name.startswith("UA"))
        dt_best = max(value for name, value in at_8192.items() if name.startswith("DT"))
        assert ua_best >= 0.85 * dt_best


def test_benchmark_single_point(benchmark):
    workload = mlp2_workload(4096)
    scheme = scheme_by_name("outer")
    config = ExecutionConfig(simulate_only=True)
    result = benchmark(run_ua_point, MACHINE, workload, scheme, (2, 2, 1), "B", config)
    assert result.percent_of_peak > 0
