"""Figure 3 (left): 8xH100, FP32 GEMM, MLP-1 (m=batch, n=48K, k=12K).

Same sweep as Figure 2 (left) but on the H100 machine model, plus the
COSMA-NCCL baseline.  The paper's findings for this panel:

* the spread between partitionings is much smaller than on PVC because the
  per-FLOP link bandwidth is ~17x higher — communication is less of a
  bottleneck;
* column and inner-product partitionings still lead, especially at small
  batch sizes;
* COSMA performs poorly on this very rectangular problem.
"""

import pytest

from benchmarks.harness_common import figure_points, render_figure
from repro.bench.report import series_from_points
from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import mlp1_workload
from repro.core.config import ExecutionConfig
from repro.topology.machines import h100_system, pvc_system

MACHINE = h100_system(8)


@pytest.fixture(scope="module")
def points():
    return figure_points(MACHINE, "mlp1", include_cosma=True)


@pytest.fixture(scope="module")
def pvc_points():
    return figure_points(pvc_system(12), "mlp1")


class TestFigure3Mlp1:
    def test_regenerate_figure(self, points):
        text = render_figure("fig3_mlp1_h100", "Figure 3 (left): 8xH100 FP32 MLP-1 H=12K",
                             points)
        assert "COSMA-NCCL" in text

    def test_partitioning_spread_smaller_than_on_pvc(self, points, pvc_points):
        def spread(point_list):
            series = series_from_points(point_list)
            at_8192 = [dict(values)[8192] for name, values in series.items()
                       if name.startswith("UA")]
            return max(at_8192) - min(at_8192)

        assert spread(points) < spread(pvc_points)

    def test_column_still_among_leaders_at_small_batch(self, points):
        series = series_from_points(points)
        at_1024 = {name: dict(values)[1024] for name, values in series.items()
                   if name.startswith("UA")}
        leaders = sorted(at_1024, key=at_1024.get, reverse=True)[:3]
        assert "UA - Column" in leaders or "UA - Inner Prod." in leaders

    def test_cosma_below_best_ua(self, points):
        series = series_from_points(points)
        for batch in (1024, 8192):
            ua_best = max(dict(values)[batch] for name, values in series.items()
                          if name.startswith("UA"))
            cosma = dict(series["COSMA-NCCL"])[batch]
            assert cosma <= ua_best

    def test_ua_competitive_with_dtensor(self, points):
        series = series_from_points(points)
        at_8192 = {name: dict(values)[8192] for name, values in series.items()}
        ua_best = max(value for name, value in at_8192.items() if name.startswith("UA"))
        dt_best = max(value for name, value in at_8192.items() if name.startswith("DT"))
        assert ua_best >= 0.9 * dt_best


def test_benchmark_single_point(benchmark):
    workload = mlp1_workload(4096)
    scheme = scheme_by_name("column")
    config = ExecutionConfig(simulate_only=True)
    result = benchmark(run_ua_point, MACHINE, workload, scheme, (1, 1, 1), "C", config)
    assert result.percent_of_peak > 0
