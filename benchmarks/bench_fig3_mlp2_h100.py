"""Figure 3 (right): 8xH100, FP32 GEMM, MLP-2 (m=batch, n=12K, k=48K).

The paper's findings for this panel:

* the partitioning spread is again much smaller than on PVC;
* unlike on PVC, the outer-product partitioning loses its advantage, because
  the remote-accumulate kernel interferes with the local GEMMs on H100
  (modelled via ``accumulate_compute_interference``), so Stationary-C
  configurations that move A instead win;
* the best UA configuration generally matches or exceeds DTensor.
"""

import pytest

from benchmarks.harness_common import figure_points, render_figure
from repro.bench.report import series_from_points
from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import mlp2_workload
from repro.core.config import ExecutionConfig
from repro.topology.machines import h100_system, pvc_system

MACHINE = h100_system(8)


@pytest.fixture(scope="module")
def points():
    return figure_points(
        MACHINE, "mlp2",
        include_cosma=True,
        mixed_output_replication=True,
        stationary_options=("B", "C"),
        replication_factors=[1, 2, 4, 8],
    )


@pytest.fixture(scope="module")
def pvc_points():
    return figure_points(pvc_system(12), "mlp2", stationary_options=("B", "C"),
                         replication_factors=[1, 2, 3, 6])


class TestFigure3Mlp2:
    def test_regenerate_figure(self, points):
        text = render_figure("fig3_mlp2_h100",
                             "Figure 3 (right): 8xH100 FP32 MLP-2 H=12K", points)
        assert "UA - Outer Prod." in text and "COSMA-NCCL" in text

    def test_spread_smaller_than_on_pvc(self, points, pvc_points):
        def spread(point_list):
            series = series_from_points(point_list)
            at_8192 = [dict(values)[8192] for name, values in series.items()
                       if name.startswith("UA")]
            return max(at_8192) - min(at_8192)

        assert spread(points) < spread(pvc_points)

    def test_outer_product_advantage_disappears_on_h100(self, points, pvc_points):
        """On PVC outer-product is at/near the top for MLP-2; on H100 its margin
        over the Stationary-C alternatives vanishes (paper Section 5.2.1)."""

        def outer_margin(point_list):
            series = series_from_points(point_list)
            at_8192 = {name: dict(values)[8192] for name, values in series.items()
                       if name.startswith("UA")}
            others = [value for name, value in at_8192.items()
                      if name != "UA - Outer Prod."]
            return at_8192["UA - Outer Prod."] - max(others)

        assert outer_margin(points) < outer_margin(pvc_points)

    def test_best_method_matches_or_exceeds_dtensor(self, points):
        series = series_from_points(points)
        at_8192 = {name: dict(values)[8192] for name, values in series.items()}
        ua_best = max(value for name, value in at_8192.items() if name.startswith("UA"))
        dt_best = max(value for name, value in at_8192.items() if name.startswith("DT"))
        assert ua_best >= 0.9 * dt_best


def test_benchmark_single_point(benchmark):
    workload = mlp2_workload(4096)
    scheme = scheme_by_name("block")
    config = ExecutionConfig(simulate_only=True)
    result = benchmark(run_ua_point, MACHINE, workload, scheme, (1, 1, 1), "B", config)
    assert result.percent_of_peak > 0
