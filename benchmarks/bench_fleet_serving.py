"""Fleet serving drift smoke: routed answers, crash resilience, accounting.

Two scenarios, both fully deterministic and pinned by the committed snapshot
at ``benchmarks/results/fleet_serving.json``:

* **routing** — a three-server fleet behind a :class:`FleetClient`.  Every
  workload's consistent-hash home endpoint is pinned (sha1 routing over
  named endpoints is machine-independent), the routed winner must equal the
  in-process :class:`PlannerService` reference (neither the process boundary
  nor the fleet boundary may change a recommendation), and the immediate
  repeat must hit the home server's warm cache.  Zero failovers allowed.

* **crash** — one server whose worker 0 is killed mid-request by the
  deterministic fault seam (:mod:`repro.serve.faults`).  Every request must
  still be answered correctly (client transport retry → surviving worker),
  i.e. **zero lost requests**, and the supervisor must restart the dead slot
  exactly once (restart-count accounting via ``restart_counts()`` and
  ``aggregate_stats().total_restarts``).

CI runs ``--check`` on every push; run ``--write`` only for a deliberate
cost-model, search, or routing change, and say so in the commit.

Usage:
    python benchmarks/bench_fleet_serving.py --check   # default
    python benchmarks/bench_fleet_serving.py --write
"""

from __future__ import annotations

import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_BENCH = os.path.dirname(os.path.abspath(__file__))
if _BENCH not in sys.path:
    sys.path.insert(0, _BENCH)

from harness_common import check_snapshot_file, snapshot_cli, write_snapshot_file, write_result

from repro.bench.workloads import attention_workload, mlp1_workload, mlp2_workload
from repro.planner import PlannerService
from repro.serve import (
    Fault,
    FaultPlan,
    FleetClient,
    PlanClient,
    PlanServer,
    RestartPolicy,
)
from repro.topology.machines import uniform_system

SNAPSHOT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "fleet_serving.json"
)
RELATIVE_TOLERANCE = 1.0e-9

_MACHINE_NAME = "uniform4"
_SERVICE_OPTIONS = {"replication_factors": [1]}

#: Named fleet members: names (not addresses) live on the hash ring, so the
#: home endpoint of every workload is a stable, snapshot-pinnable fact.
FLEET_NAMES = ("alpha", "beta", "gamma")

#: Requests driven through the crash scenario (request 0 kills worker 0).
CRASH_REQUESTS = 8


def _machine():
    return uniform_system(4)


def _workloads():
    return [attention_workload(128), attention_workload(256),
            mlp1_workload(512), mlp2_workload(512)]


def _reference(machine, workloads):
    """The in-process answers every served plan must match."""
    with PlannerService(machine, **_SERVICE_OPTIONS) as service:
        return {workload.name: service.plan(workload).recommendation
                for workload in workloads}


def measure_routing() -> list:
    """Serve every workload through a named three-server fleet; one record each."""
    machine = _machine()
    workloads = _workloads()
    reference = _reference(machine, workloads)

    records = []
    servers = {}
    try:
        endpoints = {}
        for name in FLEET_NAMES:
            server = PlanServer(machine, num_workers=1,
                                service_options=_SERVICE_OPTIONS)
            servers[name] = server
            endpoints[name] = server.start()
        with FleetClient(endpoints, machine,
                         service_options=_SERVICE_OPTIONS) as fleet:
            for workload in workloads:
                home = fleet.route(workload)
                cold = fleet.plan(workload)
                warm = fleet.plan(workload)
                best = cold.recommendation
                want = reference[workload.name]
                if best.plan_key() != want.plan_key():
                    raise AssertionError(
                        f"routed plan deviates from in-process reference for "
                        f"{workload.name}: {best} vs {want}")
                if warm.recommendation.plan_key() != best.plan_key():
                    raise AssertionError(
                        f"warm repeat changed the answer for {workload.name}")
                if fleet.route(workload) != home:
                    raise AssertionError(
                        f"routing is unstable for {workload.name}")
                if not warm.cache_hit:
                    raise AssertionError(
                        f"warm repeat missed the home cache for {workload.name}")
                records.append({
                    "phase": "routing",
                    "machine": _MACHINE_NAME,
                    "workload": workload.name,
                    "home": home,
                    "scheme": best.scheme.name,
                    "replication": list(best.replication),
                    "stationary": best.stationary,
                    "simulated_time": best.simulated_time,
                    "percent_of_peak": best.percent_of_peak,
                    "warm_hit": True,
                    "lost": 0,
                    "restarts": 0,
                })
            if fleet.failovers:
                raise AssertionError(
                    f"healthy fleet failed over {fleet.failovers} times")
    finally:
        for server in servers.values():
            server.stop()
    return records


def measure_crash(requests: int = CRASH_REQUESTS) -> list:
    """Kill worker 0 mid-request; every request must still be answered."""
    machine = _machine()
    workload = _workloads()[0]
    want = _reference(machine, [workload])[workload.name]

    server = PlanServer(
        machine, num_workers=2, service_options=_SERVICE_OPTIONS,
        restart_policy=RestartPolicy(backoff_base=0.01, backoff_cap=0.05),
        fault_plan=FaultPlan([Fault("exit", worker=0)]),  # dies on request 0
    )
    answered = 0
    try:
        address = server.start()
        with PlanClient(address, retries=2, retry_delay=0.05) as client:
            for _ in range(requests):
                response = client.plan(workload)
                if response.recommendation.plan_key() != want.plan_key():
                    raise AssertionError(
                        f"post-crash answer deviates from reference: "
                        f"{response.recommendation} vs {want}")
                answered += 1
        deadline = time.monotonic() + 10.0
        while (server.restart_counts().get(0, 0) < 1
               and time.monotonic() < deadline):
            time.sleep(0.02)
        restarts = dict(server.restart_counts())
        if restarts != {0: 1}:
            raise AssertionError(
                f"expected exactly one restart of worker 0, got {restarts}")
        if server.aggregate_stats().total_restarts != 1:
            raise AssertionError("aggregate restart accounting drifted")
    finally:
        server.stop()

    return [{
        "phase": "crash",
        "machine": _MACHINE_NAME,
        "workload": workload.name,
        "home": "solo",
        "scheme": want.scheme.name,
        "replication": list(want.replication),
        "stationary": want.stationary,
        "simulated_time": want.simulated_time,
        "percent_of_peak": want.percent_of_peak,
        "warm_hit": True,
        "lost": requests - answered,
        "restarts": 1,
    }]


def compute_points() -> list:
    """The full measurement grid, in a fixed order."""
    return measure_routing() + measure_crash()


def _key(record: dict) -> tuple:
    return (record["phase"], record["machine"], record["workload"])


def _winner(record: dict) -> tuple:
    return (record["scheme"], tuple(record["replication"]), record["stationary"])


def render(records: list) -> str:
    """Human-readable fleet table: home endpoints, winners, fault accounting."""
    lines = ["fleet serving: consistent-hash routing + crash resilience", ""]
    lines.append(f"{'phase':<8} {'workload':<24} {'home':<6} "
                 f"{'lost':>4} {'restarts':>8}  winner")
    for record in records:
        winner = (f"{record['scheme']}/{record['replication']}/"
                  f"{record['stationary']}")
        lines.append(
            f"{record['phase']:<8} {record['workload']:<24} "
            f"{record['home']:<6} {record['lost']:>4} "
            f"{record['restarts']:>8}  {winner}")
    lines.append("")
    lines.append("every routed plan identical to the in-process reference; "
                 "zero lost requests across the injected crash")
    return "\n".join(lines)


def write_snapshot(path: str = SNAPSHOT_PATH) -> str:
    records = compute_points()
    write_snapshot_file(path, records, RELATIVE_TOLERANCE)
    text = render(records)
    print(text)
    write_result("fleet_serving", text)
    return path


def _fleet_mismatch(record: dict, reference: dict):
    if _winner(record) != _winner(reference):
        return (f"WINNER CHANGED: snapshot {_winner(reference)} "
                f"vs served {_winner(record)} at")
    if record["home"] != reference["home"]:
        return (f"ROUTING CHANGED: snapshot home {reference['home']!r} "
                f"vs {record['home']!r} at")
    if record["warm_hit"] != reference["warm_hit"]:
        return "WARM AFFINITY LOST at"
    if record["lost"] != reference["lost"]:
        return (f"REQUESTS LOST: snapshot {reference['lost']} "
                f"vs {record['lost']} at")
    if record["restarts"] != reference["restarts"]:
        return (f"RESTART ACCOUNTING CHANGED: snapshot "
                f"{reference['restarts']} vs {record['restarts']} at")
    return None


def check_snapshot(path: str = SNAPSHOT_PATH) -> int:
    """Compare a fresh fleet run (winners, homes, accounting) to the snapshot."""
    return check_snapshot_file(path, compute_points(), _key, RELATIVE_TOLERANCE,
                               label="fleet serving",
                               extra_mismatch=_fleet_mismatch)


def main(argv=None) -> int:
    return snapshot_cli(__doc__, SNAPSHOT_PATH, write_snapshot, check_snapshot, argv)


if __name__ == "__main__":
    raise SystemExit(main())
