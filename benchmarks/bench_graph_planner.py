"""Joint graph planning: when the chain-aware plan beats per-op greedy.

PR 9 added ``repro.planner.graph``: a joint planner that assigns one
``(scheme, replication, stationary)`` layout per op of a matmul chain/DAG,
pricing the reshard between consecutive ops into the objective instead of
picking each op's layout in isolation.  This benchmark pins the three
promises that make it trustworthy:

* **exactness** — on every case the chain DP, the branch-and-bound solver,
  and brute-force enumeration of the full joint lattice agree on the optimal
  makespan (the two solvers are exact, not heuristic);
* **joint never loses** — the joint makespan is <= the per-op greedy
  baseline's on every case (greedy is a member of the search space);
* **joint sometimes wins** — on the pinned reshard-conflict chains the joint
  plan is *strictly* better because it accepts a locally-suboptimal layout
  for one op to avoid expensive redistributions greedy walks into; on the
  three-op chain the deviating op is the middle one, whose compromise layout
  removes both adjacent reshards at once.

Replication is pinned to 1 throughout: these ops are small enough that the
unconstrained search fully replicates the inputs, which makes every layout
transition cost the same broadcast and hides exactly the effect under test.

All numbers are modelled times from the deterministic simulator, so the
committed snapshot compares exactly.

Usage:
    python benchmarks/bench_graph_planner.py --check   # default
    python benchmarks/bench_graph_planner.py --write
"""

from __future__ import annotations

import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_BENCH = os.path.dirname(os.path.abspath(__file__))
if _BENCH not in sys.path:
    sys.path.insert(0, _BENCH)

from harness_common import RESULTS_DIR, snapshot_cli, write_result

from repro.bench.schemes import scheme_by_name
from repro.core.graph import GraphEdge, GraphOp, OpGraph, matmul_chain, mlp_chain
from repro.planner.graph import (
    OpLattice,
    _solve_chain_dp,
    _solve_dag_branch_and_bound,
    build_edge_tables,
    exhaustive_joint_plan,
    op_workload,
    plan_graph_layouts,
)
from repro.planner.search import search_partitionings
from repro.topology.machines import uniform_system

SNAPSHOT_PATH = os.path.join(RESULTS_DIR, "graph_planner.json")

GB = 1e9

#: Makespans are exact model arithmetic; two solvers disagreeing by more
#: than float noise is a real bug.
EQ_TOLERANCE = 1e-12


def _slow_machine():
    """Four devices with deliberately slow links: reshards dominate."""
    return uniform_system(4, link_bandwidth=5.0 * GB, name="uniform_slowlink")


def _diamond_dag() -> OpGraph:
    """A four-op diamond (one producer, two branches, one join) for the B&B."""
    ops = (
        GraphOp(name="d0", m=128, n=128, k=64),
        GraphOp(name="d1", m=128, n=128, k=128),
        GraphOp(name="d2", m=128, n=96, k=128),
        GraphOp(name="d3", m=128, n=96, k=128),
    )
    edges = (
        GraphEdge(src=0, dst=1, operand="A"),
        GraphEdge(src=0, dst=2, operand="A"),
        GraphEdge(src=1, dst=3, operand="A"),
        GraphEdge(src=2, dst=3, operand="B"),
    )
    return OpGraph(name="diamond", ops=ops, edges=edges)


def _cases():
    """The pinned planning problems: (name, machine, graph, planner options)."""
    return [
        # Greedy already optimal: every op's isolated winner shares a
        # self-compatible layout, so the joint planner must simply agree.
        ("mlp_aligned", uniform_system(4), mlp_chain(96, 64),
         {"replication_factors": [1], "lattice_size": 4}),
        # Wide-then-reduce chain on slow links: the first op's isolated
        # winner emits a layout the second op cannot consume in place, and
        # the joint plan deviates on op 1 to make the edge free.
        ("wide_reduce_conflict", _slow_machine(),
         matmul_chain("widetall", (GraphOp("w1", m=64, n=2048, k=64),
                                   GraphOp("w2", m=64, n=64, k=2048))),
         {"replication_factors": [1], "lattice_size": 4}),
        # Three-op chain under a row/column/inner search space: greedy pays
        # two expensive reshards around the middle op; the joint plan gives
        # the middle op a locally-suboptimal layout that removes both.
        ("middle_compromise", _slow_machine(),
         matmul_chain("alt3", (GraphOp("a1", m=1024, n=64, k=256),
                               GraphOp("a2", m=1024, n=1024, k=64),
                               GraphOp("a3", m=1024, n=64, k=1024))),
         {"replication_factors": [1], "lattice_size": 6,
          "schemes": [scheme_by_name("row"), scheme_by_name("column"),
                      scheme_by_name("inner")]}),
        # A genuine DAG: branch-and-bound is the primary solver here.
        ("diamond_dag", _slow_machine(), _diamond_dag(),
         {"replication_factors": [1], "lattice_size": 4}),
    ]


def _lattices_and_tables(machine, graph, options):
    """Rebuild the planner's internal tables for the reference solvers."""
    lattices = []
    for op in graph.ops:
        recommendations, _ = search_partitionings(
            machine, op_workload(op),
            schemes=options.get("schemes"),
            replication_factors=options["replication_factors"],
            top_k=options["lattice_size"],
        )
        lattices.append(OpLattice(op_workload(op), tuple(recommendations)))
    return lattices, build_edge_tables(machine, graph, lattices)


def compute_points() -> list:
    """Solve every pinned case three ways and record the full comparison."""
    points = []
    for name, machine, graph, options in _cases():
        plan, stats = plan_graph_layouts(machine, graph, **options)
        lattices, tables = _lattices_and_tables(machine, graph, options)
        exhaustive_assignment, exhaustive_makespan = exhaustive_joint_plan(
            graph, lattices, tables)
        # Both exact solvers must agree on every case — chains are DAGs too,
        # so the branch-and-bound runs even where the DP answered.
        bnb_assignment, bnb_makespan, bnb_expanded = _solve_dag_branch_and_bound(
            graph, lattices, tables)
        record = {
            "case": name,
            "graph": graph.name,
            "num_ops": len(graph.ops),
            "is_chain": graph.is_chain,
            "method": plan.method,
            "assignment": list(plan.assignment),
            "greedy_assignment": list(plan.greedy_assignment),
            "joint_makespan": plan.makespan,
            "greedy_makespan": plan.greedy_makespan,
            "improvement": plan.improvement,
            "exhaustive_makespan": exhaustive_makespan,
            "bnb_makespan": bnb_makespan,
            "bnb_expanded": bnb_expanded,
            "joint_edge_times": list(plan.edge_times),
            "greedy_edge_times": [tables[pos][0][0]
                                  for pos in range(len(graph.edges))],
            "joint_schemes": [r.scheme.name for r in plan.recommendations],
            "greedy_schemes": [lat.recommendations[0].scheme.name
                               for lat in lattices],
            "candidates_simulated": stats.num_simulated,
        }
        if graph.is_chain:
            dp_assignment, dp_makespan = _solve_chain_dp(graph, lattices, tables)
            record["dp_makespan"] = dp_makespan
            record["dp_assignment"] = list(dp_assignment)
        points.append(record)
    return points


def _verify(points: list) -> list:
    """The invariants every run must satisfy, snapshot or not."""
    failures = []
    by_case = {record["case"]: record for record in points}
    for record in points:
        name = record["case"]
        joint, greedy = record["joint_makespan"], record["greedy_makespan"]
        if joint > greedy + EQ_TOLERANCE:
            failures.append(f"{name}: joint makespan {joint} worse than "
                            f"greedy {greedy}")
        for solver in ("exhaustive_makespan", "bnb_makespan"):
            if abs(record[solver] - joint) > EQ_TOLERANCE:
                failures.append(f"{name}: {solver} {record[solver]} != "
                                f"joint {joint} (solver disagreement)")
        if record["is_chain"] and abs(record["dp_makespan"] - joint) > EQ_TOLERANCE:
            failures.append(f"{name}: dp_makespan {record['dp_makespan']} != "
                            f"joint {joint}")
    for name in ("wide_reduce_conflict", "middle_compromise"):
        record = by_case.get(name)
        if record is None:
            failures.append(f"pinned case {name!r} missing")
            continue
        if record["improvement"] <= EQ_TOLERANCE:
            failures.append(f"{name}: joint no longer strictly beats greedy "
                            f"(improvement {record['improvement']})")
        if record["assignment"] == record["greedy_assignment"]:
            failures.append(f"{name}: joint win without deviating from the "
                            f"greedy assignment (accounting bug)")
    aligned = by_case.get("mlp_aligned")
    if aligned is None:
        failures.append("pinned case 'mlp_aligned' missing")
    elif aligned["improvement"] > EQ_TOLERANCE:
        failures.append("mlp_aligned: greedy was supposed to already be "
                        "optimal on this case")
    middle = by_case.get("middle_compromise")
    if middle is not None and len(middle["assignment"]) == 3:
        if middle["assignment"][1] == 0:
            failures.append("middle_compromise: the middle op kept its "
                            "isolated winner; the pinned conflict is gone")
        greedy_edges = middle["greedy_edge_times"]
        joint_edges = middle["joint_edge_times"]
        if sum(1 for t in greedy_edges if t > 0) < 2:
            failures.append("middle_compromise: greedy no longer pays two "
                            "reshards on this chain")
        if sum(joint_edges) >= sum(greedy_edges):
            failures.append("middle_compromise: joint plan does not reduce "
                            "total reshard time")
    diamond = by_case.get("diamond_dag")
    if diamond is not None and diamond["method"] != "branch_and_bound":
        failures.append("diamond_dag: expected the branch-and-bound solver, "
                        f"got {diamond['method']!r}")
    return failures


def render(points: list) -> str:
    lines = [
        f"joint graph planning vs per-op greedy ({len(points)} cases, "
        "replication pinned to 1)",
        "",
        f"{'case':<22} {'ops':>3} {'solver':<17} {'greedy us':>10} "
        f"{'joint us':>10} {'saved us':>9} {'saved %':>8}",
    ]
    for record in points:
        saved_pct = (100.0 * record["improvement"] / record["greedy_makespan"]
                     if record["greedy_makespan"] else 0.0)
        lines.append(
            f"{record['case']:<22} {record['num_ops']:>3} "
            f"{record['method']:<17} "
            f"{record['greedy_makespan'] * 1e6:>10.2f} "
            f"{record['joint_makespan'] * 1e6:>10.2f} "
            f"{record['improvement'] * 1e6:>9.2f} {saved_pct:>7.1f}%")
    lines.append("")
    lines.append("DP, branch-and-bound, and exhaustive enumeration agree on "
                 "every case; joint <= greedy everywhere.")
    return "\n".join(lines)


def write_snapshot(path: str = SNAPSHOT_PATH) -> str:
    points = compute_points()
    failures = _verify(points)
    if failures:
        raise SystemExit("graph planner invariants failed:\n  "
                         + "\n  ".join(failures))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "points": points}, handle, indent=1)
        handle.write("\n")
    text = render(points)
    print(text)
    write_result("graph_planner", text)
    return path


def check_snapshot(path: str = SNAPSHOT_PATH) -> int:
    """Re-solve every case and compare the full record to the snapshot.

    Everything is deterministic model arithmetic, so the comparison is
    exact: assignments, makespans, edge times, and solver agreement all
    have to reproduce.
    """
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    expected = {record["case"]: record for record in snapshot["points"]}

    points = compute_points()
    failures = _verify(points)
    for record in points:
        want = expected.get(record["case"])
        if want is None:
            failures.append(f"case {record['case']!r} missing from snapshot")
            continue
        if record != want:
            diffs = [key for key in record
                     if record.get(key) != want.get(key)]
            failures.append(f"{record['case']}: diverged from snapshot on "
                            f"{diffs}")
    if len(points) != len(snapshot["points"]):
        failures.append(f"case count {len(points)} != snapshot "
                        f"{len(snapshot['points'])}")
    print(render(points))
    if failures:
        print("graph planner check FAILED:\n  " + "\n  ".join(failures))
        return len(failures)
    print("graph planner: OK")
    return 0


def main(argv=None) -> int:
    return snapshot_cli(__doc__, SNAPSHOT_PATH, write_snapshot,
                        check_snapshot, argv)


if __name__ == "__main__":
    raise SystemExit(main())
