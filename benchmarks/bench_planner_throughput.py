"""Planner serving throughput: cold (search) vs. warm (cache) planning.

The ROADMAP's serving goal means the planner must answer near-identical
requests at memory speed.  This benchmark measures four things:

* **cold** planning latency — a cache-miss request that runs the pruned
  design-space search end to end;
* **cold-latency breakdown** — where the cold milliseconds go, split into
  op generation / eager bounding / lazy refinement / simulation (the phases
  ``SearchStats`` now times separately);
* **warm** planning throughput — repeated requests answered from the LRU
  plan cache (the acceptance bar is warm >= 10x faster than cold);
* **pruning effectiveness** — how many candidate simulations the cost-bound
  search skipped relative to the exhaustive sweep.

Runs standalone (``python benchmarks/bench_planner_throughput.py [--fast]``)
and under pytest; results are persisted to ``benchmarks/results/``.  The
pre-optimization record lives in ``planner_throughput_before.json`` so the
speedup from the vectorized evaluation core stays measurable in-tree.

``--check`` replays the full search matrix and pins the recommended plans —
winner identity, ranking order, and simulated times — against the committed
snapshot at **0.0 drift**.  Timing fields are machine-dependent and stay
informational; plan identity is not, so any drift fails CI.
"""

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # script mode: mirror conftest's path setup
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _path in (_ROOT, os.path.join(_ROOT, "src")):
        if os.path.isdir(_path) and _path not in sys.path:
            sys.path.insert(0, _path)

from benchmarks.harness_common import RESULTS_DIR, write_result
from repro.bench.workloads import attention_workload, mlp1_workload
from repro.planner import PlannerService
from repro.planner.search import search_partitionings
from repro.topology.machines import pvc_system, uniform_system

#: Warm requests per measured batch (enough to average out timer noise).
WARM_REQUESTS = 200


def measure_service(machine, workload, *, replication_factors=None, warm_requests=WARM_REQUESTS):
    """Return a dict of cold/warm latency and pruning counters for one problem."""
    service = PlannerService(machine, replication_factors=replication_factors)
    with service:
        started = time.perf_counter()
        cold = service.plan(workload)
        cold_seconds = time.perf_counter() - started
        assert not cold.cache_hit

        started = time.perf_counter()
        for _ in range(warm_requests):
            warm = service.plan(workload)
            assert warm.cache_hit
        warm_seconds = (time.perf_counter() - started) / warm_requests

        stats = service.stats()
        return {
            "workload": workload.name,
            "machine": machine.name,
            "num_devices": machine.num_devices,
            "cold_ms": cold_seconds * 1e3,
            "warm_ms": warm_seconds * 1e3,
            "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
            "warm_requests_per_s": 1.0 / warm_seconds if warm_seconds > 0 else float("inf"),
            "candidates_simulated": stats.candidates_simulated,
            "candidates_pruned": stats.candidates_pruned,
        }


def measure_breakdown(machine, workload, *, replication_factors=None, top_k=3):
    """Time one cold search and split it into the planner's four phases.

    Also records the ranked winners — the part of the output ``--check``
    pins bit-exactly against the committed snapshot.
    """
    started = time.perf_counter()
    recommendations, stats = search_partitionings(
        machine, workload, top_k=top_k, replication_factors=replication_factors)
    cold_seconds = time.perf_counter() - started
    return {
        "workload": workload.name,
        "machine": machine.name,
        "num_devices": machine.num_devices,
        "cold_ms": cold_seconds * 1e3,
        "opgen_ms": stats.opgen_seconds * 1e3,
        "bound_ms": stats.bound_seconds * 1e3,
        "refine_ms": stats.refine_seconds * 1e3,
        "simulate_ms": stats.simulate_seconds * 1e3,
        "winners": [
            {
                "scheme": rec.scheme.name,
                "replication": list(rec.replication),
                "stationary": rec.stationary,
                "simulated_time": rec.simulated_time,
                "percent_of_peak": rec.percent_of_peak,
            }
            for rec in recommendations
        ],
    }


def measure_pruning(machine, workload, *, replication_factors=None):
    """Compare pruned vs. exhaustive search on one problem."""
    _, exhaustive = search_partitionings(machine, workload, prune=False,
                                         replication_factors=replication_factors)
    _, pruned = search_partitionings(machine, workload, prune=True,
                                     replication_factors=replication_factors)
    return {
        "workload": workload.name,
        "exhaustive_simulated": exhaustive.num_simulated,
        "pruned_simulated": pruned.num_simulated,
        "pruned_skipped": pruned.num_pruned,
        "simulation_reduction": (
            exhaustive.num_simulated / pruned.num_simulated
            if pruned.num_simulated else float("inf")
        ),
    }


def _scenarios(fast: bool):
    if fast:
        return [(uniform_system(4), attention_workload(256), [1, 2])]
    return [
        (uniform_system(8), attention_workload(1024), None),
        (pvc_system(12), mlp1_workload(4096), [1, 2]),
    ]


def run(fast: bool = False):
    """Run the full measurement matrix; returns (rows, breakdown, pruning)."""
    scenarios = _scenarios(fast)
    rows = [
        measure_service(machine, workload, replication_factors=factors)
        for machine, workload, factors in scenarios
    ]
    breakdown_rows = [
        measure_breakdown(machine, workload, replication_factors=factors)
        for machine, workload, factors in scenarios
    ]
    pruning_rows = [
        measure_pruning(machine, workload, replication_factors=factors)
        for machine, workload, factors in scenarios
    ]
    return rows, breakdown_rows, pruning_rows


def render(rows, breakdown_rows, pruning_rows) -> str:
    lines = ["planner serving throughput (cold search vs. warm cache)", ""]
    for row in rows:
        lines.append(
            f"{row['workload']:<24} on {row['machine']}x{row['num_devices']}: "
            f"cold {row['cold_ms']:.2f} ms, warm {row['warm_ms']:.4f} ms "
            f"({row['speedup']:.0f}x, {row['warm_requests_per_s']:.0f} req/s)"
        )
    lines.append("")
    lines.append("cold-latency breakdown (opgen / bound / refine / simulate)")
    for row in breakdown_rows:
        winner = row["winners"][0] if row["winners"] else None
        best = (f" -> {winner['scheme']} {winner['stationary']}"
                if winner else "")
        lines.append(
            f"{row['workload']:<24} cold {row['cold_ms']:.2f} ms = "
            f"opgen {row['opgen_ms']:.2f} + bound {row['bound_ms']:.2f} + "
            f"refine {row['refine_ms']:.2f} + simulate {row['simulate_ms']:.2f}"
            f"{best}"
        )
    lines.append("")
    lines.append("cost-bound pruning vs. exhaustive sweep")
    for row in pruning_rows:
        lines.append(
            f"{row['workload']:<24} simulated {row['pruned_simulated']} of "
            f"{row['exhaustive_simulated']} candidates "
            f"({row['simulation_reduction']:.1f}x fewer)"
        )
    return "\n".join(lines)


def _result_name(fast: bool) -> str:
    """Fast (CI smoke) runs must not clobber the committed full-run record."""
    return "planner_throughput_fast" if fast else "planner_throughput"


def _save_snapshot(rows, breakdown_rows, pruning_rows, fast: bool = False) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{_result_name(fast)}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"throughput": rows, "breakdown": breakdown_rows,
                   "pruning": pruning_rows}, handle, indent=2)
        handle.write("\n")
    return path


def check(fast: bool = False, snapshot_path: str | None = None) -> None:
    """Pin winners + ranking against the committed snapshot at 0.0 drift.

    Re-runs the search matrix and requires each scenario's ranked plan list
    to match the snapshot exactly: scheme, replication, stationary layout,
    and ``simulated_time`` / ``percent_of_peak`` to the last bit.  Timing
    fields (``*_ms``) are machine-dependent and deliberately not compared.
    """
    path = snapshot_path or os.path.join(RESULTS_DIR, f"{_result_name(fast)}.json")
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    expected = {row["workload"]: row["winners"] for row in snapshot["breakdown"]}

    failures = []
    for machine, workload, factors in _scenarios(fast):
        row = measure_breakdown(machine, workload, replication_factors=factors)
        want = expected.get(workload.name)
        if want is None:
            failures.append(f"{workload.name}: missing from snapshot {path}")
            continue
        got = row["winners"]
        if len(got) != len(want):
            failures.append(
                f"{workload.name}: {len(got)} winners, snapshot has {len(want)}")
            continue
        for position, (g, w) in enumerate(zip(got, want)):
            for field in ("scheme", "replication", "stationary",
                          "simulated_time", "percent_of_peak"):
                if g[field] != w[field]:
                    failures.append(
                        f"{workload.name} rank {position}: {field} "
                        f"{g[field]!r} != snapshot {w[field]!r}")
        print(f"{workload.name:<24} {len(got)} ranked plans match "
              f"snapshot (0.0 drift)")
    if failures:
        raise SystemExit("planner recommendation drift vs "
                         f"{path}:\n  " + "\n  ".join(failures))
    print(f"OK: winners and ranking identical to {path}")


# ---------------------------------------------------------------------- #
# pytest entry points
# ---------------------------------------------------------------------- #
def test_warm_cache_is_10x_faster_than_cold():
    """Acceptance: a warm-cache plan() is >= 10x faster than the cold call."""
    row = measure_service(uniform_system(4), attention_workload(256),
                          replication_factors=[1, 2])
    assert row["speedup"] >= 10.0, row


def test_pruned_search_simulates_fewer_candidates():
    row = measure_pruning(uniform_system(4), attention_workload(256),
                          replication_factors=[1, 2])
    assert row["pruned_simulated"] < row["exhaustive_simulated"], row


def test_cold_breakdown_covers_the_cold_time():
    """The four phase timers must account for (nearly) all of the search."""
    row = measure_breakdown(uniform_system(4), attention_workload(256),
                            replication_factors=[1, 2])
    phases = (row["opgen_ms"] + row["bound_ms"] + row["refine_ms"]
              + row["simulate_ms"])
    assert phases <= row["cold_ms"]
    assert phases >= 0.5 * row["cold_ms"], row
    assert row["winners"], row


def test_winners_pinned_by_committed_snapshot():
    """The committed full-matrix snapshot must replay at 0.0 drift."""
    check(fast=False)


def test_full_report(results_dir):
    rows, breakdown_rows, pruning_rows = run(fast=True)
    write_result(_result_name(fast=True),
                 render(rows, breakdown_rows, pruning_rows))
    _save_snapshot(rows, breakdown_rows, pruning_rows, fast=True)


def _report_speedup_vs_before(rows) -> None:
    """Informational: geometric-mean cold speedup over the committed
    pre-optimization record, when that record is present."""
    before_path = os.path.join(RESULTS_DIR, "planner_throughput_before.json")
    if not os.path.exists(before_path):
        return
    with open(before_path, encoding="utf-8") as handle:
        before = {row["workload"]: row["cold_ms"]
                  for row in json.load(handle)["throughput"]}
    ratios = [before[row["workload"]] / row["cold_ms"]
              for row in rows if row["workload"] in before and row["cold_ms"] > 0]
    if not ratios:
        return
    geomean = 1.0
    for ratio in ratios:
        geomean *= ratio
    geomean **= 1.0 / len(ratios)
    print(f"\ncold-plan speedup vs pre-optimization record: "
          f"{geomean:.2f}x geometric mean over {len(ratios)} scenario(s)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small scenario only (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="pin winners/ranking against the committed "
                             "snapshot at 0.0 drift (timings informational)")
    args = parser.parse_args()
    if args.check:
        check(fast=args.fast)
        return
    rows, breakdown_rows, pruning_rows = run(fast=args.fast)
    text = render(rows, breakdown_rows, pruning_rows)
    print(text)
    write_result(_result_name(args.fast), text)
    _save_snapshot(rows, breakdown_rows, pruning_rows, fast=args.fast)
    slowest = min(rows, key=lambda row: row["speedup"])
    if slowest["speedup"] < 10.0:
        raise SystemExit(
            f"warm/cold speedup {slowest['speedup']:.1f}x below the 10x bar"
        )
    print(f"\nOK: warm cache is >= 10x faster than cold planning "
          f"(worst case {slowest['speedup']:.0f}x)")
    if not args.fast:
        _report_speedup_vs_before(rows)


if __name__ == "__main__":
    main()
