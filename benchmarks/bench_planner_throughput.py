"""Planner serving throughput: cold (search) vs. warm (cache) planning.

The ROADMAP's serving goal means the planner must answer near-identical
requests at memory speed.  This benchmark measures three things:

* **cold** planning latency — a cache-miss request that runs the pruned
  design-space search end to end;
* **warm** planning throughput — repeated requests answered from the LRU
  plan cache (the acceptance bar is warm >= 10x faster than cold);
* **pruning effectiveness** — how many candidate simulations the cost-bound
  search skipped relative to the exhaustive sweep.

Runs standalone (``python benchmarks/bench_planner_throughput.py [--fast]``)
and under pytest; results are persisted to ``benchmarks/results/``.
"""

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # script mode: mirror conftest's path setup
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _path in (_ROOT, os.path.join(_ROOT, "src")):
        if os.path.isdir(_path) and _path not in sys.path:
            sys.path.insert(0, _path)

from benchmarks.harness_common import RESULTS_DIR, write_result
from repro.bench.workloads import attention_workload, mlp1_workload
from repro.planner import PlannerService
from repro.planner.search import search_partitionings
from repro.topology.machines import pvc_system, uniform_system

#: Warm requests per measured batch (enough to average out timer noise).
WARM_REQUESTS = 200


def measure_service(machine, workload, *, replication_factors=None, warm_requests=WARM_REQUESTS):
    """Return a dict of cold/warm latency and pruning counters for one problem."""
    service = PlannerService(machine, replication_factors=replication_factors)
    with service:
        started = time.perf_counter()
        cold = service.plan(workload)
        cold_seconds = time.perf_counter() - started
        assert not cold.cache_hit

        started = time.perf_counter()
        for _ in range(warm_requests):
            warm = service.plan(workload)
            assert warm.cache_hit
        warm_seconds = (time.perf_counter() - started) / warm_requests

        stats = service.stats()
        return {
            "workload": workload.name,
            "machine": machine.name,
            "num_devices": machine.num_devices,
            "cold_ms": cold_seconds * 1e3,
            "warm_ms": warm_seconds * 1e3,
            "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
            "warm_requests_per_s": 1.0 / warm_seconds if warm_seconds > 0 else float("inf"),
            "candidates_simulated": stats.candidates_simulated,
            "candidates_pruned": stats.candidates_pruned,
        }


def measure_pruning(machine, workload, *, replication_factors=None):
    """Compare pruned vs. exhaustive search on one problem."""
    _, exhaustive = search_partitionings(machine, workload, prune=False,
                                         replication_factors=replication_factors)
    _, pruned = search_partitionings(machine, workload, prune=True,
                                     replication_factors=replication_factors)
    return {
        "workload": workload.name,
        "exhaustive_simulated": exhaustive.num_simulated,
        "pruned_simulated": pruned.num_simulated,
        "pruned_skipped": pruned.num_pruned,
        "simulation_reduction": (
            exhaustive.num_simulated / pruned.num_simulated
            if pruned.num_simulated else float("inf")
        ),
    }


def run(fast: bool = False):
    """Run the full measurement matrix; returns (rows, pruning_rows)."""
    if fast:
        scenarios = [(uniform_system(4), attention_workload(256), [1, 2])]
    else:
        scenarios = [
            (uniform_system(8), attention_workload(1024), None),
            (pvc_system(12), mlp1_workload(4096), [1, 2]),
        ]
    rows = [
        measure_service(machine, workload, replication_factors=factors)
        for machine, workload, factors in scenarios
    ]
    pruning_rows = [
        measure_pruning(machine, workload, replication_factors=factors)
        for machine, workload, factors in scenarios
    ]
    return rows, pruning_rows


def render(rows, pruning_rows) -> str:
    lines = ["planner serving throughput (cold search vs. warm cache)", ""]
    for row in rows:
        lines.append(
            f"{row['workload']:<24} on {row['machine']}x{row['num_devices']}: "
            f"cold {row['cold_ms']:.2f} ms, warm {row['warm_ms']:.4f} ms "
            f"({row['speedup']:.0f}x, {row['warm_requests_per_s']:.0f} req/s)"
        )
    lines.append("")
    lines.append("cost-bound pruning vs. exhaustive sweep")
    for row in pruning_rows:
        lines.append(
            f"{row['workload']:<24} simulated {row['pruned_simulated']} of "
            f"{row['exhaustive_simulated']} candidates "
            f"({row['simulation_reduction']:.1f}x fewer)"
        )
    return "\n".join(lines)


def _result_name(fast: bool) -> str:
    """Fast (CI smoke) runs must not clobber the committed full-run record."""
    return "planner_throughput_fast" if fast else "planner_throughput"


def _save_snapshot(rows, pruning_rows, fast: bool = False) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{_result_name(fast)}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"throughput": rows, "pruning": pruning_rows}, handle, indent=2)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------- #
# pytest entry points
# ---------------------------------------------------------------------- #
def test_warm_cache_is_10x_faster_than_cold():
    """Acceptance: a warm-cache plan() is >= 10x faster than the cold call."""
    row = measure_service(uniform_system(4), attention_workload(256),
                          replication_factors=[1, 2])
    assert row["speedup"] >= 10.0, row


def test_pruned_search_simulates_fewer_candidates():
    row = measure_pruning(uniform_system(4), attention_workload(256),
                          replication_factors=[1, 2])
    assert row["pruned_simulated"] < row["exhaustive_simulated"], row


def test_full_report(results_dir):
    rows, pruning_rows = run(fast=True)
    write_result(_result_name(fast=True), render(rows, pruning_rows))
    _save_snapshot(rows, pruning_rows, fast=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small scenario only (CI smoke mode)")
    args = parser.parse_args()
    rows, pruning_rows = run(fast=args.fast)
    text = render(rows, pruning_rows)
    print(text)
    write_result(_result_name(args.fast), text)
    _save_snapshot(rows, pruning_rows, fast=args.fast)
    slowest = min(rows, key=lambda row: row["speedup"])
    if slowest["speedup"] < 10.0:
        raise SystemExit(
            f"warm/cold speedup {slowest['speedup']:.1f}x below the 10x bar"
        )
    print(f"\nOK: warm cache is >= 10x faster than cold planning "
          f"(worst case {slowest['speedup']:.0f}x)")


if __name__ == "__main__":
    main()
