"""Serving throughput: requests/s through the multi-process PlanServer fleet.

For each worker count the benchmark starts a real :class:`PlanServer`
(forked workers, Unix socket, framed JSON protocol), drives it with one
pooled :class:`PlanClient` connection per worker, and measures:

* **cold** round — every worker computes the plan from scratch (cache miss,
  pruned search) for each workload;
* **warm** round — repeated concurrent requests answered from the per-worker
  plan caches (this is the serving hot path: requests/s vs. worker count).

The committed snapshot at ``benchmarks/results/serving_throughput.json``
pins what is *deterministic* about serving — the winning plan each fleet
returns (which must also equal the in-process :class:`PlannerService`
answer: the process boundary may not change a single recommendation), the
request accounting (every request answered, hits spread across every
worker), and the simulated time of the winner.  Throughput numbers are
recorded for trend-watching but not drift-checked (wall clock is machine
dependent).

CI runs ``--check`` on every push; run ``--write`` only for a deliberate
cost-model or search change, and say so in the commit.

Usage:
    python benchmarks/bench_serving_throughput.py --check   # default
    python benchmarks/bench_serving_throughput.py --write
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_BENCH = os.path.dirname(os.path.abspath(__file__))
if _BENCH not in sys.path:
    sys.path.insert(0, _BENCH)

from harness_common import check_snapshot_file, snapshot_cli, write_snapshot_file, write_result

from repro.bench.workloads import attention_workload, mlp1_workload
from repro.planner import PlannerService
from repro.serve import PlanClient, PlanServer
from repro.topology.machines import uniform_system

SNAPSHOT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "serving_throughput.json"
)
RELATIVE_TOLERANCE = 1.0e-9

#: Fleet sizes measured (requests/s should grow with workers on warm traffic).
WORKER_COUNTS = (1, 2, 4)

#: Warm requests per (workload, fleet) measurement.
WARM_REQUESTS = 64

_MACHINE_NAME = "uniform4"
_SERVICE_OPTIONS = {"replication_factors": [1, 2]}


def _machine():
    return uniform_system(4)


def _workloads():
    return [attention_workload(256), mlp1_workload(1024)]


def measure_fleet(num_workers: int, warm_requests: int = WARM_REQUESTS) -> list:
    """Serve every workload through a ``num_workers`` fleet; one record each."""
    machine = _machine()
    workloads = _workloads()
    reference = {}
    with PlannerService(machine, **_SERVICE_OPTIONS) as service:
        for workload in workloads:
            reference[workload.name] = service.plan(workload).recommendation

    records = []
    with PlanServer(machine, num_workers=num_workers,
                    service_options=_SERVICE_OPTIONS) as server:
        # One client per worker (consecutive connects round-robin), and each
        # client driven by exactly ONE thread: its single pooled connection
        # stays pinned to its worker, so the cold/warm accounting is fully
        # deterministic (sharing a client across threads would open extra
        # connections that land on arbitrary workers).
        clients = [PlanClient(server.address) for _ in range(num_workers)]
        try:
            with ThreadPoolExecutor(max_workers=num_workers) as pool:
                for workload in workloads:
                    started = time.perf_counter()
                    cold = list(pool.map(lambda c: c.plan(workload), clients))
                    cold_seconds = time.perf_counter() - started

                    per_client = max(1, warm_requests // num_workers)

                    def warm_burst(client):
                        return [client.plan(workload) for _ in range(per_client)]

                    started = time.perf_counter()
                    warm = [response
                            for burst in pool.map(warm_burst, clients)
                            for response in burst]
                    warm_seconds = time.perf_counter() - started

                    best = cold[0].recommendation
                    want = reference[workload.name]
                    if best.plan_key() != want.plan_key():
                        raise AssertionError(
                            f"served plan deviates from in-process reference "
                            f"for {workload.name}: {best} vs {want}")
                    answers = {r.recommendation.plan_key() for r in cold + warm}
                    if len(answers) != 1:
                        raise AssertionError(
                            f"shared-nothing workers disagreed on "
                            f"{workload.name}: {sorted(answers)}")

                    warm_hits = sum(r.cache_hit for r in warm)
                    records.append({
                        "machine": _MACHINE_NAME,
                        "workload": workload.name,
                        "num_workers": num_workers,
                        "scheme": best.scheme.name,
                        "replication": list(best.replication),
                        "stationary": best.stationary,
                        "simulated_time": best.simulated_time,
                        "percent_of_peak": best.percent_of_peak,
                        "warm_requests": len(warm),
                        "warm_hits": warm_hits,
                        "workers_served": len({r.worker for r in cold + warm}),
                        "matches_in_process": True,
                        # informational (machine-dependent, not drift-checked):
                        "cold_round_ms": cold_seconds * 1e3,
                        "warm_requests_per_s": (len(warm) / warm_seconds
                                                if warm_seconds > 0 else float("inf")),
                    })
        finally:
            for client in clients:
                client.close()

        stats = server.aggregate_stats()
        expected = sum(r["warm_requests"] for r in records
                       if r["num_workers"] == num_workers) + \
            num_workers * len(workloads)
        if stats.totals.requests != expected:
            raise AssertionError(
                f"request accounting drifted: fleet counted "
                f"{stats.totals.requests}, clients issued {expected}")
        if stats.workers_with_hits != num_workers:
            raise AssertionError(
                f"warm traffic reached {stats.workers_with_hits} of "
                f"{num_workers} workers")
    return records


def compute_points() -> list:
    """The full measurement grid, in a fixed order."""
    records = []
    for num_workers in WORKER_COUNTS:
        records.extend(measure_fleet(num_workers))
    return records


def _key(record: dict) -> tuple:
    return (record["machine"], record["workload"], record["num_workers"])


def _winner(record: dict) -> tuple:
    return (record["scheme"], tuple(record["replication"]), record["stationary"])


def render(records: list) -> str:
    """Human-readable requests/s table (warm path, by worker count)."""
    lines = ["serving throughput through the PlanServer fleet (warm plan cache)",
             ""]
    lines.append(f"{'workload':<24} {'workers':>7} {'cold round':>11} "
                 f"{'warm req/s':>11}  winner")
    for record in records:
        winner = (f"{record['scheme']}/{record['replication']}/"
                  f"{record['stationary']}")
        lines.append(
            f"{record['workload']:<24} {record['num_workers']:>7} "
            f"{record['cold_round_ms']:>9.1f}ms "
            f"{record['warm_requests_per_s']:>11.0f}  {winner}"
        )
    lines.append("")
    lines.append("every served plan identical to the in-process PlannerService; "
                 "warm hits on every worker")
    return "\n".join(lines)


def write_snapshot(path: str = SNAPSHOT_PATH) -> str:
    records = compute_points()
    write_snapshot_file(path, records, RELATIVE_TOLERANCE)
    text = render(records)
    print(text)
    write_result("serving_throughput", text)
    return path


def _serving_mismatch(record: dict, reference: dict):
    if _winner(record) != _winner(reference):
        return (f"WINNER CHANGED: snapshot {_winner(reference)} "
                f"vs served {_winner(record)} at")
    if record["workers_served"] < reference["num_workers"]:
        return (f"FLEET COVERAGE LOST: {record['workers_served']} of "
                f"{reference['num_workers']} workers served at")
    if record["warm_hits"] != reference["warm_hits"]:
        return (f"WARM HIT ACCOUNTING CHANGED: snapshot {reference['warm_hits']} "
                f"vs served {record['warm_hits']} at")
    return None


def check_snapshot(path: str = SNAPSHOT_PATH) -> int:
    """Compare a fresh serving run (winners, accounting, times) to the snapshot."""
    return check_snapshot_file(path, compute_points(), _key, RELATIVE_TOLERANCE,
                               label="serving throughput",
                               extra_mismatch=_serving_mismatch)


def main(argv=None) -> int:
    return snapshot_cli(__doc__, SNAPSHOT_PATH, write_snapshot, check_snapshot, argv)


if __name__ == "__main__":
    raise SystemExit(main())
