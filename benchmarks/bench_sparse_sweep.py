"""Sparse-sweep drift smoke: structured workloads through the pruned search.

For a deterministic grid of block-sparse and MoE-ragged workloads (plus each
one's dense envelope) this tool runs the planner's pruned search end-to-end
and records the winning partitioning and its simulated time.  The committed
snapshot at ``benchmarks/results/sparse_sweep.json`` pins two things:

* **times** — structured cost modelling is a pure function of the workload
  structure and the machine model, so simulated times must not drift when
  plumbing is refactored (1e-9 relative tolerance, like the event smoke);
* **winners** — the headline capability of the sparse frontier: the search
  picks *different* partitionings for a 0.9-sparse weight matrix and for a
  skewed MoE batch than for their dense envelopes (block sparsity removes
  B traffic, raggedness turns row partitionings into load imbalance).  The
  snapshot stores each point's winner and ``--check`` fails on any change.

CI runs ``--check`` on every push; run ``--write`` only for a deliberate
cost-model change, and say so in the commit.

Usage:
    python benchmarks/bench_sparse_sweep.py --check   # default
    python benchmarks/bench_sparse_sweep.py --write
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_BENCH = os.path.dirname(os.path.abspath(__file__))
if _BENCH not in sys.path:
    sys.path.insert(0, _BENCH)

from harness_common import check_snapshot_file, snapshot_cli, write_snapshot_file

from repro.bench.workloads import Workload, block_sparse_workload, moe_workload
from repro.core.config import ExecutionConfig
from repro.planner.search import search_partitionings
from repro.topology.machines import pvc_system, uniform_system

SNAPSHOT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "sparse_sweep.json"
)
RELATIVE_TOLERANCE = 1.0e-9

_MACHINES = {
    "uniform4": lambda: uniform_system(4),
    "pvc4": lambda: pvc_system(4),
}


def _workload_grid() -> list:
    """(group, workload) pairs; each group holds a dense envelope + sparse members."""
    grid = []
    # Block-sparse weights on an MLP-ish shape: 0.9-sparse, 0.75-sparse, and
    # the all-live mask (structured path, dense numbers).
    envelope = Workload("bs_env_256x512x512", 256, 512, 512)
    grid.append(("block_sparse", envelope))
    for density in (0.10, 0.25, 1.0):
        grid.append(
            ("block_sparse",
             block_sparse_workload(256, 512, 512, density=density,
                                   block_k=64, block_n=64, seed=1))
        )
    # MoE-ragged batches over a tall envelope (only m parallelises densely):
    # one expert hot, the rest nearly idle — versus the balanced dense view.
    grid.append(("moe", Workload("moe_env_1024x256x256", 1024, 256, 256)))
    grid.append(("moe", moe_workload(4, 256, 256, 256,
                                     expert_tokens=[256, 20, 20, 20])))
    grid.append(("moe", moe_workload(8, 128, 256, 256,
                                     expert_tokens=[128, 128, 8, 8, 8, 8, 8, 8])))
    return grid


def compute_points() -> list:
    """Run the pruned search for every grid point, in a fixed order."""
    config = ExecutionConfig(simulate_only=True)
    records = []
    for machine_name, factory in sorted(_MACHINES.items()):
        machine = factory()
        for group, workload in _workload_grid():
            recommendations, stats = search_partitionings(
                machine, workload, config=config, top_k=1
            )
            best = recommendations[0]
            records.append(
                {
                    "machine": machine_name,
                    "group": group,
                    "workload": workload.name,
                    "structure": workload.structure.signature_token(),
                    "m": workload.m,
                    "n": workload.n,
                    "k": workload.k,
                    "scheme": best.scheme.name,
                    "replication": list(best.replication),
                    "stationary": best.stationary,
                    "simulated_time": best.simulated_time,
                    "percent_of_peak": best.percent_of_peak,
                    "effective_flops": workload.effective_flops,
                    "num_simulated": stats.num_simulated,
                    "num_candidates": stats.num_candidates,
                }
            )
    return records


def _key(record: dict) -> tuple:
    return (record["machine"], record["workload"], record["structure"])


def _winner(record: dict) -> tuple:
    return (record["scheme"], tuple(record["replication"]), record["stationary"])


def summarize(records: list) -> None:
    """Print the winner table and flag sparse-vs-envelope winner changes."""
    envelopes = {
        (record["machine"], record["group"]): record
        for record in records
        if record["structure"] == "dense"
    }
    print(f"{'machine':9s} {'workload':38s} {'winner':34s} time")
    for record in records:
        winner = f"{record['scheme']}/{record['replication']}/{record['stationary']}"
        envelope = envelopes.get((record["machine"], record["group"]))
        marker = ""
        if record["structure"] != "dense" and envelope is not None:
            marker = " *" if _winner(record) != _winner(envelope) else ""
        print(f"{record['machine']:9s} {record['workload']:38s} {winner:34s} "
              f"{record['simulated_time']:.4e}{marker}")
    print("(* = search picked a different partitioning than the dense envelope)")


def write_snapshot(path: str = SNAPSHOT_PATH) -> str:
    records = compute_points()
    write_snapshot_file(path, records, RELATIVE_TOLERANCE)
    summarize(records)
    return path


def _winner_mismatch(record: dict, reference: dict):
    if _winner(record) != _winner(reference):
        return (f"WINNER CHANGED: snapshot {_winner(reference)} "
                f"vs search {_winner(record)} at")
    return None


def check_snapshot(path: str = SNAPSHOT_PATH) -> int:
    """Compare fresh search results (winners + times) against the snapshot."""
    return check_snapshot_file(path, compute_points(), _key, RELATIVE_TOLERANCE,
                               label="sparse sweep",
                               extra_mismatch=_winner_mismatch)


def main(argv=None) -> int:
    return snapshot_cli(__doc__, SNAPSHOT_PATH, write_snapshot, check_snapshot, argv)


if __name__ == "__main__":
    raise SystemExit(main())
