"""Table 1: the distributed-matrix primitive set.

The paper's Table 1 is an API table rather than a measurement, so this
benchmark (experiment E1) does two things: it verifies that every primitive
listed in the table exists and behaves as documented, and it measures the
Python-side cost of each primitive on a representative distributed matrix so
regressions in the data-structure layer are caught.
"""

import numpy as np
import pytest

from benchmarks.harness_common import write_result
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D
from repro.runtime.runtime import Runtime
from repro.topology.machines import pvc_system
from repro.util.indexing import Rect

TABLE1_PRIMITIVES = [
    ("grid_shape()", "Return the shape of the matrix's tile grid."),
    ("tile(tile_idx, replica_idx)", "Returns view of tile tile_idx in replica replica_idx."),
    ("get_tile(tile_idx, replica_idx)", "Returns copy of tile tile_idx in replica replica_idx."),
    ("get_tile_async(tile_idx, replica_idx)", "Returns future to copy of tile."),
    ("accumulate_tile(replica_idx, tile_idx, view)", "Accumulate into remote tile."),
    ("broadcast_replica(origin_idx)", "Broadcast tiles from replica origin_idx to other replicas."),
    ("reduce_replicas(origin_idx)", "Accumulate values from all replicas into replica origin_idx."),
    ("overlapping_tiles(slice, replica_idx)", "Return list of tiles that overlap with slice."),
    ("tile_bounds(tile_idx)", "Return the index bounds of the tile tile_idx."),
]


@pytest.fixture(scope="module")
def matrix():
    runtime = Runtime(machine=pvc_system(12))
    dm = DistributedMatrix.create(runtime, (1536, 1536), Block2D(), replication=2,
                                  dtype=np.float32, name="bench")
    dm.fill_random(seed=0)
    return dm


def test_table1_primitives_all_present(matrix):
    """Every row of Table 1 maps to an implemented method."""
    rows = []
    for signature, description in TABLE1_PRIMITIVES:
        method = signature.split("(")[0]
        assert hasattr(matrix, method), f"missing Table-1 primitive: {method}"
        rows.append(f"{signature:<48s} {description}")
    write_result("table1_primitives", "\n".join(rows))


class TestPrimitiveBenchmarks:
    def test_grid_shape(self, benchmark, matrix):
        # replication=2 over 12 devices -> each replica is partitioned over 6.
        assert benchmark(matrix.grid_shape) == (2, 3)

    def test_tile_bounds(self, benchmark, matrix):
        bounds = benchmark(matrix.tile_bounds, (1, 1))
        assert bounds.size > 0

    def test_overlapping_tiles(self, benchmark, matrix):
        rect = Rect.from_bounds(100, 900, 100, 900)
        tiles = benchmark(matrix.overlapping_tiles, rect)
        assert len(tiles) >= 4

    def test_tile_view(self, benchmark, matrix):
        owner = matrix.owner_rank((0, 0), 0)
        view = benchmark(lambda: matrix.tile((0, 0), 0, rank=owner))
        assert view.shape == matrix.tile_bounds((0, 0)).shape

    def test_get_tile(self, benchmark, matrix):
        tile = benchmark(lambda: matrix.get_tile((1, 2), 0, initiator=0))
        assert tile.shape == matrix.tile_bounds((1, 2)).shape

    def test_get_tile_async(self, benchmark, matrix):
        future = benchmark(lambda: matrix.get_tile_async((1, 1), 0, initiator=0))
        assert future.done()

    def test_accumulate_tile(self, benchmark, matrix):
        update = np.ones(matrix.tile_bounds((0, 1)).shape, dtype=np.float32)
        benchmark(lambda: matrix.accumulate_tile((0, 1), update, 0, initiator=5))

    def test_broadcast_replica(self, benchmark, matrix):
        benchmark(matrix.broadcast_replica, 0)

    def test_reduce_replicas(self, benchmark, matrix):
        benchmark(matrix.reduce_replicas, 0)
