"""Table 2: system details of the PVC and H100 evaluation machines.

Regenerates the table from the machine presets (experiment E2) and also
benchmarks the modelled transfer-time queries that every simulation relies on.
"""

import pytest

from benchmarks.harness_common import write_result
from repro.topology.machines import GB, TFLOP, h100_system, pvc_system


def test_regenerate_table2():
    rows = ["System  Devices  Link BW      FP32 Peak",
            "------  -------  -----------  ----------"]
    expectations = {
        "pvc": (12, 26.5, 22.7),
        "h100": (8, 450.0, 67.0),
    }
    for name, machine in (("pvc", pvc_system()), ("h100", h100_system())):
        devices, link_gb, peak_tf = expectations[name]
        # Cross-GPU link bandwidth (the Table-2 number) and per-device peak.
        remote_bw = machine.topology.min_remote_bandwidth()
        assert machine.num_devices == devices
        assert remote_bw == pytest.approx(link_gb * GB)
        assert machine.flops_peak == pytest.approx(peak_tf * TFLOP)
        rows.append(
            f"{name.upper():<7s} {machine.num_devices:<8d} "
            f"{remote_bw / GB:>6.1f} GB/s  {machine.flops_peak / TFLOP:>5.1f} TFLOPs"
        )
    write_result("table2_systems", "\n".join(rows))


def test_h100_has_more_bandwidth_per_flop():
    """The ratio that explains why Figure 3's curves are compressed."""
    pvc = pvc_system()
    h100 = h100_system()
    pvc_ratio = pvc.topology.min_remote_bandwidth() / pvc.flops_peak
    h100_ratio = h100.topology.min_remote_bandwidth() / h100.flops_peak
    assert h100_ratio > 5 * pvc_ratio


def test_benchmark_transfer_time_query(benchmark):
    machine = pvc_system(12)
    time = benchmark(machine.topology.transfer_time, 0, 5, 1 << 26)
    assert time > 0


def test_benchmark_machine_construction(benchmark):
    machine = benchmark(pvc_system, 12)
    assert machine.num_devices == 12
