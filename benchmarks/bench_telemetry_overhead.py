"""Telemetry overhead: observability must be free when off, cheap when on.

The observability layer (``repro.obs``) rides the planner's hottest paths —
every ``plan()`` crosses the metrics counters, the tracer's span guard, and
the request-log appender.  This benchmark pins the two promises that made
that acceptable:

* **off is free** — a :class:`PlannerService` constructed without any
  telemetry backend must plan at the same cold latency as before the
  instrumentation landed (drift past a generous allowance vs. the committed
  PR 6 record in ``planner_throughput.json`` prints a warning);
* **on is cheap** — with metrics + tracing + request logging all enabled,
  a cold plan over the 288-candidate attention frontier (``uniform8`` x
  ``attn_s1024_d128``) must cost < 5% extra, because span bookkeeping is
  microseconds against a ~50 ms search.

Latencies are min-of-repeats, and the two modes run interleaved in paired
rounds.  The gated overhead is the more favorable of two load-robust
statistics — the ratio of per-mode floors (immune to per-round spikes) and
the median paired-round ratio (immune to drift between rounds) — because a
real regression inflates both, while noise has to fool both at once to
flap the check.  Absolute wall clock vs. the committed record is reported
as a warning only (machine-dependent, like every other bench's timings).
``--check`` also pins what is *deterministic*: telemetry may not change a
single recommendation, nor the candidate accounting.

Usage:
    python benchmarks/bench_telemetry_overhead.py --check   # default
    python benchmarks/bench_telemetry_overhead.py --write
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_BENCH = os.path.dirname(os.path.abspath(__file__))
if _BENCH not in sys.path:
    sys.path.insert(0, _BENCH)

from harness_common import RESULTS_DIR, snapshot_cli, write_result

from repro.bench.workloads import attention_workload
from repro.obs.metrics import MetricsRegistry
from repro.obs.reqlog import RequestLog
from repro.obs.tracing import Tracer
from repro.planner import PlannerService
from repro.topology.machines import uniform_system

SNAPSHOT_PATH = os.path.join(RESULTS_DIR, "telemetry_overhead.json")

#: Cold repeats per mode; the minimum is the reported latency.  Modes are
#: interleaved repeat-by-repeat so machine-load drift hits both equally.
COLD_REPEATS = 7

#: Warm requests measured per cold plan (informational per-request cost).
WARM_REQUESTS = 200

#: Enabled-telemetry cold overhead bar (fraction of the disabled latency).
MAX_ENABLED_OVERHEAD = 0.05

#: Disabled-mode cold latency allowance vs. the committed PR 6 record
#: (min-of-repeats vs. a single recorded run on a possibly busier machine).
MAX_BASELINE_RATIO = 1.6

_BASELINE_SNAPSHOT = os.path.join(RESULTS_DIR, "planner_throughput.json")


def _scenario():
    return uniform_system(8), attention_workload(1024)


def _one_repeat(telemetry: bool) -> tuple:
    """One fresh-service cold plan + warm loop: (cold_s, warm_s, winner, stats)."""
    machine, workload = _scenario()
    backends = {}
    tmp = None
    if telemetry:
        tmp = tempfile.TemporaryDirectory(prefix="reqlog-bench-")
        backends = dict(
            metrics=MetricsRegistry(),
            tracer=Tracer(role="bench"),
            request_log=RequestLog(os.path.join(tmp.name, "requests.jsonl")),
        )
    try:
        with PlannerService(machine, **backends) as service:
            started = time.perf_counter()
            cold = service.plan(workload)
            cold_s = time.perf_counter() - started
            assert not cold.cache_hit
            started = time.perf_counter()
            for _ in range(WARM_REQUESTS):
                service.plan(workload)
            warm_s = (time.perf_counter() - started) / WARM_REQUESTS
            return cold_s, warm_s, cold.recommendation, service.stats()
    finally:
        if telemetry:
            backends["request_log"].close()
            tmp.cleanup()


def compute_points() -> list:
    """Measure both modes, interleaved repeat-by-repeat.

    Back-to-back repeats of the *same* mode would let machine-load drift
    between the two blocks masquerade as telemetry overhead; alternating
    off/telemetry within each round exposes both modes to the same
    conditions, and min-of-repeats discards the noisy rounds entirely.
    """
    _one_repeat(telemetry=False)  # untimed warmup: numpy/import caches
    samples = {False: [], True: []}
    for _ in range(COLD_REPEATS):
        for telemetry in (False, True):
            samples[telemetry].append(_one_repeat(telemetry))
    # The gated statistic is the *median paired round*: within one round both
    # modes ran back-to-back, so their ratio isolates telemetry from machine
    # load, and the median discards spiky rounds in either direction — a real
    # regression inflates every round, so the median still catches it.
    ratios = sorted(on[0] / off[0]
                    for off, on in zip(samples[False], samples[True]))
    paired = ratios[len(ratios) // 2]
    records = []
    for telemetry in (False, True):
        runs = samples[telemetry]
        winner = runs[-1][2]
        stats = runs[-1][3]
        records.append({
            "mode": "telemetry" if telemetry else "off",
            "cold_ms": min(run[0] for run in runs) * 1e3,
            "warm_us": min(run[1] for run in runs) * 1e6,
            "paired_overhead": paired - 1.0,
            "scheme": winner.scheme.name,
            "replication": list(winner.replication),
            "stationary": winner.stationary,
            "simulated_time": winner.simulated_time,
            "candidates_simulated": stats.candidates_simulated,
            "candidates_pruned": stats.candidates_pruned,
        })
    return records


def render(records: list) -> str:
    machine, workload = _scenario()
    by_mode = {record["mode"]: record for record in records}
    off, on = by_mode["off"], by_mode["telemetry"]
    overhead = on["cold_ms"] / off["cold_ms"] - 1.0 if off["cold_ms"] else 0.0
    lines = [
        f"telemetry overhead on {workload.name} ({machine.name}"
        f"x{machine.num_devices}, "
        f"{off['candidates_simulated'] + off['candidates_pruned']} candidates)",
        "",
        f"{'mode':<12} {'cold (min)':>11} {'warm/req':>10}",
    ]
    for record in records:
        lines.append(f"{record['mode']:<12} {record['cold_ms']:>9.2f}ms "
                     f"{record['warm_us']:>8.1f}us")
    lines.append("")
    lines.append(f"enabled-telemetry cold overhead: min {overhead * 100.0:+.2f}%, "
                 f"median paired round {on['paired_overhead'] * 100.0:+.2f}% "
                 f"(bar: < {MAX_ENABLED_OVERHEAD * 100.0:.0f}%)")
    lines.append("winner and candidate accounting identical across modes")
    return "\n".join(lines)


def _verify(records: list) -> list:
    """Mode-vs-mode invariants that hold on any machine."""
    by_mode = {record["mode"]: record for record in records}
    off, on = by_mode["off"], by_mode["telemetry"]
    failures = []
    for field in ("scheme", "replication", "stationary", "simulated_time",
                  "candidates_simulated", "candidates_pruned"):
        if off[field] != on[field]:
            failures.append(f"telemetry changed {field}: "
                            f"{off[field]!r} -> {on[field]!r}")
    # Two load-robust views of the same cost: the ratio of per-mode floors
    # (immune to per-round spikes) and the median paired round (immune to
    # drift between rounds).  A real regression inflates both, so the more
    # favorable one is gated — noise has to fool both to flap the check.
    overhead = min(on["cold_ms"] / off["cold_ms"] - 1.0, on["paired_overhead"])
    if overhead > MAX_ENABLED_OVERHEAD:
        failures.append(
            f"enabled-telemetry cold overhead {overhead * 100.0:.2f}% "
            f"(best of min-ratio and median paired round) exceeds the "
            f"{MAX_ENABLED_OVERHEAD * 100.0:.0f}% bar")
    baseline = _pr6_baseline_cold_ms()
    if baseline is not None and off["cold_ms"] > baseline * MAX_BASELINE_RATIO:
        # Informational, not gating: absolute wall clock depends on the
        # machine and its load (the other benches treat timings the same
        # way); the portable off-is-free signal is the paired ratio above.
        print(f"WARNING: disabled-observability cold latency "
              f"{off['cold_ms']:.2f}ms is past {MAX_BASELINE_RATIO:.1f}x the "
              f"committed record ({baseline:.2f}ms) — slow or loaded machine?")
    return failures


def _pr6_baseline_cold_ms():
    """Cold latency of this scenario in the committed planner record."""
    _, workload = _scenario()
    try:
        with open(_BASELINE_SNAPSHOT, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    for row in payload.get("throughput", []):
        if row.get("workload") == workload.name:
            return float(row["cold_ms"])
    return None


def write_snapshot(path: str = SNAPSHOT_PATH) -> str:
    records = compute_points()
    failures = _verify(records)
    if failures:
        raise SystemExit("telemetry overhead bar failed:\n  "
                         + "\n  ".join(failures))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "points": records}, handle, indent=1)
        handle.write("\n")
    text = render(records)
    print(text)
    write_result("telemetry_overhead", text)
    return path


def check_snapshot(path: str = SNAPSHOT_PATH) -> int:
    """Re-measure both modes; fail on overhead or determinism regressions.

    The committed snapshot pins the deterministic half (winner identity and
    candidate accounting per mode); latencies are re-measured live because
    wall clock is machine-dependent — the *ratio* between modes is the
    portable statistic the 5% bar checks.
    """
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    expected = {record["mode"]: record for record in snapshot["points"]}

    records = compute_points()
    failures = _verify(records)
    for record in records:
        want = expected.get(record["mode"])
        if want is None:
            failures.append(f"mode {record['mode']!r} missing from snapshot")
            continue
        for field in ("scheme", "replication", "stationary", "simulated_time",
                      "candidates_simulated", "candidates_pruned"):
            if record[field] != want[field]:
                failures.append(
                    f"{record['mode']}: {field} {record[field]!r} != "
                    f"snapshot {want[field]!r}")
    print(render(records))
    if failures:
        print("telemetry overhead check FAILED:\n  " + "\n  ".join(failures))
        return len(failures)
    print("telemetry overhead: OK")
    return 0


def main(argv=None) -> int:
    return snapshot_cli(__doc__, SNAPSHOT_PATH, write_snapshot,
                        check_snapshot, argv)


if __name__ == "__main__":
    raise SystemExit(main())
