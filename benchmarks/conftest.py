"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index).  The regenerated series are printed to
stdout *and* written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can reference them; the pytest-benchmark timings measure the harness itself
(op generation + simulation) rather than the modelled GPU times, which are
reported inside the figures.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def write_result(name: str, text: str) -> str:
    """Persist a regenerated figure/table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
