"""Helpers shared by the benchmark modules (result persistence, sweep presets,
drift-smoke snapshot scaffolding).

Set ``REPRO_SWEEP_JOBS=<n>`` to fan the universal-algorithm sweeps behind the
figure benchmarks over ``n`` worker processes (the default remains serial).
"""

from __future__ import annotations

import json
import logging
import os
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bench.report import print_figure
from repro.util.logging import enable_console_logging, get_logger, log_event
from repro.bench.sweep import (
    SweepPoint,
    best_per_scheme,
    run_cosma_series,
    run_dtensor_series,
    run_ua_sweep,
)
from repro.bench.workloads import BATCH_SIZES, mlp1_workload, mlp2_workload
from repro.core.config import ExecutionConfig
from repro.topology.machines import MachineSpec

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

_LOG = get_logger("bench")


def sweep_jobs(default: Optional[int] = None) -> Optional[int]:
    """Worker-pool width for sweeps: the ``REPRO_SWEEP_JOBS`` env var wins."""
    raw = os.environ.get("REPRO_SWEEP_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return default


def write_result(name: str, text: str) -> str:
    """Persist a regenerated figure/table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def figure_points(
    machine: MachineSpec,
    layer: str,
    batches: Sequence[int] = BATCH_SIZES,
    mixed_output_replication: bool = False,
    include_cosma: bool = False,
    stationary_options: Sequence[str] = ("A", "B", "C"),
    replication_factors: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Regenerate one figure panel: the best UA bar per scheme plus comparators.

    ``layer`` is "mlp1" or "mlp2"; the full paper batch sizes are used by
    default.  Mixed output replication reproduces the "c_AB-c_C" annotations of
    the MLP-2 panels.
    """
    make = mlp1_workload if layer == "mlp1" else mlp2_workload
    workloads = [make(batch) for batch in batches]
    config = ExecutionConfig(simulate_only=True)
    ua_points = run_ua_sweep(
        machine,
        workloads,
        replication_factors=replication_factors,
        mixed_output_replication=mixed_output_replication,
        stationary_options=stationary_options,
        config=config,
        jobs=sweep_jobs(jobs),
    )
    points = best_per_scheme(ua_points)
    points += run_dtensor_series(machine, workloads)
    if include_cosma:
        points += run_cosma_series(machine, workloads)
    return points


def render_figure(name: str, title: str, points: Sequence[SweepPoint]) -> str:
    """Print the figure text and persist it under benchmarks/results/."""
    text = print_figure(title, points)
    write_result(name, text)
    return text


# ---------------------------------------------------------------------- #
# drift-smoke snapshot scaffolding
# ---------------------------------------------------------------------- #
def write_snapshot_file(path: str, points: List[dict], tolerance: float) -> str:
    """Persist a drift-smoke snapshot (shared JSON layout for every smoke)."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {"version": 1, "tolerance": tolerance, "points": points}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return path


def check_snapshot_file(
    path: str,
    actual: List[dict],
    key_fn: Callable[[dict], Tuple],
    tolerance: float,
    label: str,
    extra_mismatch: Optional[Callable[[dict, dict], Optional[str]]] = None,
) -> int:
    """Compare freshly computed points against a snapshot; returns #mismatches.

    ``key_fn`` identifies a point across runs; ``extra_mismatch`` lets a
    smoke pin more than the simulated time (e.g. the sparse sweep pins the
    winning partitioning) by returning a message when a point regressed.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    expected = {key_fn(record): record for record in payload["points"]}
    if len(actual) != len(expected):
        log_event(_LOG, "bench.snapshot.point_count_drift", label=label,
                  level=logging.WARNING,
                  snapshot=len(expected), run=len(actual))
        return max(1, abs(len(actual) - len(expected)))

    mismatches = 0
    worst = 0.0
    for record in actual:
        reference = expected.get(key_fn(record))
        if reference is None:
            log_event(_LOG, "bench.snapshot.point_missing", label=label,
                      level=logging.WARNING, point=key_fn(record))
            mismatches += 1
            continue
        if extra_mismatch is not None:
            message = extra_mismatch(record, reference)
            if message is not None:
                mismatches += 1
                log_event(_LOG, "bench.snapshot.mismatch", label=label,
                          level=logging.WARNING,
                          point=key_fn(record), detail=message)
                continue
        want = reference["simulated_time"]
        got = record["simulated_time"]
        drift = abs(got - want) / max(abs(want), 1e-300)
        worst = max(worst, drift)
        if drift > tolerance:
            mismatches += 1
            log_event(_LOG, "bench.snapshot.drift", label=label,
                      level=logging.WARNING,
                      point=key_fn(record), snapshot=want, simulated=got,
                      relative=f"{drift:.3e}")
    status = "OK" if mismatches == 0 else f"{mismatches} mismatches"
    print(f"{label}: {len(actual)} points, max relative drift {worst:.3e} — {status}")
    return mismatches


def snapshot_cli(description: str, default_snapshot: str,
                 write_fn: Callable[[str], str],
                 check_fn: Callable[[str], int], argv=None) -> int:
    """The shared ``--write`` / ``--check`` / ``--snapshot`` entry point.

    Structured ``bench.*`` log records (drift details, snapshot mismatches)
    are surfaced on stderr so a failing ``--check`` explains itself in CI.
    """
    import argparse

    enable_console_logging()

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--write", action="store_true",
                        help="regenerate the snapshot instead of checking it")
    parser.add_argument("--check", action="store_true",
                        help="check against the snapshot (the default action)")
    parser.add_argument("--snapshot", default=default_snapshot,
                        help="snapshot path (default: committed location)")
    args = parser.parse_args(argv)
    if args.write:
        path = write_fn(args.snapshot)
        print(f"wrote {path}")
        return 0
    return 1 if check_fn(args.snapshot) else 0
