"""Helpers shared by the benchmark modules (result persistence, sweep presets).

Set ``REPRO_SWEEP_JOBS=<n>`` to fan the universal-algorithm sweeps behind the
figure benchmarks over ``n`` worker processes (the default remains serial).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.bench.report import print_figure
from repro.bench.sweep import (
    SweepPoint,
    best_per_scheme,
    run_cosma_series,
    run_dtensor_series,
    run_ua_sweep,
)
from repro.bench.workloads import BATCH_SIZES, mlp1_workload, mlp2_workload
from repro.core.config import ExecutionConfig
from repro.topology.machines import MachineSpec

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def sweep_jobs(default: Optional[int] = None) -> Optional[int]:
    """Worker-pool width for sweeps: the ``REPRO_SWEEP_JOBS`` env var wins."""
    raw = os.environ.get("REPRO_SWEEP_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return default


def write_result(name: str, text: str) -> str:
    """Persist a regenerated figure/table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def figure_points(
    machine: MachineSpec,
    layer: str,
    batches: Sequence[int] = BATCH_SIZES,
    mixed_output_replication: bool = False,
    include_cosma: bool = False,
    stationary_options: Sequence[str] = ("A", "B", "C"),
    replication_factors: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Regenerate one figure panel: the best UA bar per scheme plus comparators.

    ``layer`` is "mlp1" or "mlp2"; the full paper batch sizes are used by
    default.  Mixed output replication reproduces the "c_AB-c_C" annotations of
    the MLP-2 panels.
    """
    make = mlp1_workload if layer == "mlp1" else mlp2_workload
    workloads = [make(batch) for batch in batches]
    config = ExecutionConfig(simulate_only=True)
    ua_points = run_ua_sweep(
        machine,
        workloads,
        replication_factors=replication_factors,
        mixed_output_replication=mixed_output_replication,
        stationary_options=stationary_options,
        config=config,
        jobs=sweep_jobs(jobs),
    )
    points = best_per_scheme(ua_points)
    points += run_dtensor_series(machine, workloads)
    if include_cosma:
        points += run_cosma_series(machine, workloads)
    return points


def render_figure(name: str, title: str, points: Sequence[SweepPoint]) -> str:
    """Print the figure text and persist it under benchmarks/results/."""
    text = print_figure(title, points)
    write_result(name, text)
    return text
