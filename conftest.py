"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(for example on an offline machine where ``pip install -e .`` cannot build an
editable wheel).  When the package *is* installed this is a harmless no-op
shadowed by the installed distribution's identical sources.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
