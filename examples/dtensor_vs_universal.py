"""Compare the universal algorithm against the DTensor-style SPMD comparator.

Run with ``python examples/dtensor_vs_universal.py``.

The DTensor-like layer dispatches a sharded matmul to a small set of rules and
reshards operands when no rule matches — the behaviour the paper identifies as
the limitation of current SPMD systems.  This example takes one MLP-2-shaped
problem, shows which rule DTensor's dispatcher picks for the row and column
shardings, what resharding it pays for, and how the universal algorithm's best
partitioning compares, on both evaluation machines.
"""

from repro.bench.schemes import ua_schemes
from repro.bench.sweep import best_per_scheme, run_ua_sweep
from repro.bench.workloads import mlp2_workload
from repro.core.config import ExecutionConfig
from repro.dtensor import DeviceMesh, Shard, simulate_dtensor_matmul
from repro.topology import h100_system, pvc_system


def main() -> None:
    workload = mlp2_workload(8192)
    config = ExecutionConfig(simulate_only=True)

    for machine in (pvc_system(12), h100_system(8)):
        print(f"\n=== {machine.name.upper()} ({machine.num_devices} devices) — "
              f"MLP-2, batch {workload.m} ===")

        mesh = DeviceMesh(machine)
        for sharding, dim in (("row", 0), ("column", 1)):
            outcome = simulate_dtensor_matmul(
                mesh, workload.m, workload.n, workload.k, Shard(dim), Shard(dim)
            )
            print(f"  DTensor {sharding:<7s}: rule={outcome['rule']:<24s} "
                  f"comm={outcome['communication_bytes'] / 1e9:6.2f} GB  "
                  f"{outcome['percent_of_peak']:5.1f}% of peak")

        points = run_ua_sweep(machine, [workload], schemes=ua_schemes(),
                              replication_factors=[1, 2], stationary_options=("B", "C"),
                              config=config)
        for point in sorted(best_per_scheme(points), key=lambda p: -p.percent_of_peak):
            print(f"  {point.series:<18s}: c={point.replication_label:<4s} "
                  f"S-{point.stationary}   "
                  f"get={point.extra['remote_get_bytes'] / 1e9:5.2f} GB "
                  f"acc={point.extra['remote_accumulate_bytes'] / 1e9:5.2f} GB  "
                  f"{point.percent_of_peak:5.1f}% of peak")


if __name__ == "__main__":
    main()
