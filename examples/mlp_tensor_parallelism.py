"""Tensor-parallel GPT MLP layer: the workload that motivates the paper.

Run with ``python examples/mlp_tensor_parallelism.py``.

A transformer MLP block applies two linear layers: an expansion (MLP-1) and a
contraction (MLP-2).  Megatron-LM-style tensor parallelism distributes the
first weight matrix by columns and the second by rows; sequence parallelism
instead splits the activations.  Because the universal algorithm accepts any
combination of partitionings, all of these variants — and everything in
between — run through the same ``universal_matmul`` call.

The example runs a scaled-down MLP forward pass (so it executes in seconds on
a laptop with real data), checks the numerics, and then uses the
simulate-only mode to model the same layer at the paper's full size.
"""

import numpy as np

from repro import (
    Block2D,
    ColumnBlock,
    DistributedMatrix,
    ExecutionConfig,
    RowBlock,
    Runtime,
    universal_matmul,
)
from repro.bench.workloads import mlp1_workload, mlp2_workload
from repro.topology import pvc_system


def forward_pass_small() -> None:
    """Megatron-style MLP forward pass with real data (scaled down)."""
    runtime = Runtime(machine=pvc_system(12))
    rng = np.random.default_rng(1)

    batch, hidden, expansion = 96, 144, 576
    x_dense = rng.standard_normal((batch, hidden)).astype(np.float32)
    w1_dense = rng.standard_normal((hidden, expansion)).astype(np.float32) / np.sqrt(hidden)
    w2_dense = rng.standard_normal((expansion, hidden)).astype(np.float32) / np.sqrt(expansion)

    # Megatron-LM: X replicated, W1 column-parallel -> H column-parallel.
    x = DistributedMatrix.from_dense(runtime, x_dense, RowBlock(), replication=12, name="X")
    w1 = DistributedMatrix.from_dense(runtime, w1_dense, ColumnBlock(), name="W1")
    h = DistributedMatrix.create(runtime, (batch, expansion), ColumnBlock(), name="H")
    result1 = universal_matmul(x, w1, h, stationary="B")

    # Second layer: H column-parallel, W2 row-parallel -> Y needs accumulation.
    w2 = DistributedMatrix.from_dense(runtime, w2_dense, RowBlock(), name="W2")
    y = DistributedMatrix.create(runtime, (batch, hidden), Block2D(), name="Y")
    result2 = universal_matmul(h, w2, y, stationary="B")

    reference = (x_dense @ w1_dense) @ w2_dense
    np.testing.assert_allclose(y.to_dense(), reference, rtol=1e-2, atol=1e-2)

    print("small-scale MLP forward pass verified against NumPy")
    for name, result in (("MLP-1", result1), ("MLP-2", result2)):
        print(f"  {name}: stationary {result.stationary.value}, "
              f"{result.remote_get_bytes / 1e6:.1f} MB fetched, "
              f"{result.remote_accumulate_bytes / 1e6:.1f} MB accumulated, "
              f"{result.percent_of_peak:.1f}% of peak (modelled)")


def model_paper_scale() -> None:
    """Model the full-size MLP layers (batch 8192, hidden 12K) without data."""
    runtime_config = ExecutionConfig(simulate_only=True)
    print("\npaper-scale model (batch 8192, H=12K, 12xPVC):")
    for label, workload, parts in (
        ("MLP-1, column-parallel", mlp1_workload(8192),
         (ColumnBlock(), ColumnBlock(), ColumnBlock())),
        ("MLP-2, outer-product", mlp2_workload(8192),
         (ColumnBlock(), RowBlock(), Block2D())),
    ):
        runtime = Runtime(machine=pvc_system(12))
        a_shape, b_shape, c_shape = workload.shapes
        a = DistributedMatrix.create(runtime, a_shape, parts[0], name="A", materialize=False)
        b = DistributedMatrix.create(runtime, b_shape, parts[1], name="B", materialize=False)
        c = DistributedMatrix.create(runtime, c_shape, parts[2], name="C", materialize=False)
        result = universal_matmul(a, b, c, config=runtime_config)
        print(f"  {label:<26s} {result.simulated_time * 1e3:7.2f} ms modelled, "
              f"{result.percent_of_peak:5.1f}% of peak "
              f"(stationary {result.stationary.value})")


def main() -> None:
    forward_pass_small()
    model_paper_scale()


if __name__ == "__main__":
    main()
