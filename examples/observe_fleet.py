"""Observe a serving fleet end to end: metrics, traces, and the request log.

Run with ``python examples/observe_fleet.py [options]``, e.g.::

    python examples/observe_fleet.py
    python examples/observe_fleet.py --workers 4 --requests 48
    python examples/observe_fleet.py --out /tmp/fleet-obs

The demo drives every surface the observability layer exposes:

1. a :class:`PlanServer` fleet boots with metrics, tracing, and per-worker
   request logs enabled (all off-by-default knobs);
2. traced clients send mixed traffic — a hot workload hammered repeatedly
   plus a spread of colder ones;
3. one worker is scraped through the public socket (the ``metrics`` op),
   and the fleet-merged snapshot prints as Prometheus text exposition;
4. each worker runs a background refresher (``refresh_options``): after the
   short plan TTL lapses, a request is served **stale** from the grace
   window while the worker re-plans off the request path, and the refresh
   counters show up in the fleet-merged metrics;
5. the request-log directory is compacted into a rollup — top signatures by
   traffic, hit rates, stale serves, plan-age percentiles;
6. one traced request's cross-process timeline (client -> worker ->
   planner -> search) is dumped as Chrome/Perfetto JSON.

Exits non-zero if any surface comes back empty or inconsistent.
"""

import argparse
import json
import os
import sys
import tempfile
import time

if __package__ in (None, ""):  # script mode: make src/ importable like conftest does
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.bench.workloads import attention_workload, mlp1_workload
from repro.obs.metrics import render_prometheus
from repro.obs.rollup import rollup_requests
from repro.obs.tracing import Tracer
from repro.serve import PlanClient, PlanServer
from repro.topology.machines import uniform_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2,
                        help="forked planner workers behind the socket")
    parser.add_argument("--devices", type=int, default=4,
                        help="device count of the synthetic machine")
    parser.add_argument("--requests", type=int, default=24,
                        help="requests for the hot workload (cold spread on top)")
    parser.add_argument("--out", default=None,
                        help="directory for request logs + the exported trace "
                             "(default: a temporary directory)")
    args = parser.parse_args()

    machine = uniform_system(args.devices)
    hot = attention_workload(256)
    cold = [mlp1_workload(512), mlp1_workload(1024), attention_workload(384)]

    out_dir = args.out or tempfile.mkdtemp(prefix="fleet-obs-")
    reqlog_dir = os.path.join(out_dir, "reqlogs")

    # A deliberately short TTL plus a generous grace window: the demo lets
    # the hot plan expire, serves it stale once, and watches each worker's
    # background refresher re-plan it off the request path.  The long
    # scheduler interval keeps the refresher quiet until a stale serve wakes
    # it, so the stale path is actually exercised.
    with PlanServer(machine, num_workers=args.workers,
                    service_options={"replication_factors": [1, 2],
                                     "cache_ttl_seconds": 0.5,
                                     "cache_grace_seconds": 60.0},
                    refresh_options={"interval_seconds": 60.0},
                    enable_metrics=True, enable_tracing=True,
                    reqlog_dir=reqlog_dir) as server:
        print(f"PlanServer: {args.workers} workers on {server.address}")
        print(f"request logs: {reqlog_dir}/requests-<worker>.jsonl\n")

        # Mixed traffic through traced clients: one client per worker so the
        # round-robin accept spreads load deterministically.
        tracer = Tracer(role="client")
        clients = [PlanClient(server.address, tracer=tracer)
                   for _ in range(args.workers)]
        try:
            for client in clients:
                for workload in cold:
                    client.plan(workload)
            hot_responses = [clients[i % len(clients)].plan(hot)
                             for i in range(args.requests)]

            # Let the hot plan outlive its TTL, then ask again: each worker
            # serves its expired-but-in-grace copy immediately (stale=True)
            # and wakes its refresher to re-plan off the request path.
            time.sleep(0.7)
            stale_responses = [client.plan(hot) for client in clients]
            stale_count = sum(1 for r in stale_responses if r.stale)
            print(f"stale-while-revalidate: {stale_count} of "
                  f"{len(stale_responses)} post-TTL requests served stale "
                  f"(plan ages "
                  f"{[round(r.plan_age, 2) for r in stale_responses]})")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                totals = server.aggregate_stats().totals
                if totals.background_refreshes >= stale_count:
                    break
                time.sleep(0.05)
            fresh_responses = [client.plan(hot) for client in clients]
            print(f"after background refresh: "
                  f"{sum(1 for r in fresh_responses if not r.stale)} of "
                  f"{len(fresh_responses)} requests fresh again "
                  f"({totals.background_refreshes} plans recomputed "
                  f"off the request path)\n")
        finally:
            # Scrape ONE worker through the public socket before closing —
            # any client can, which is what makes the op deployable.
            single = clients[0].metrics()
            for client in clients:
                client.close()

        single_requests = sum(
            value for name, value in single["counters"].items()
            if name.startswith("repro_planner_requests_total"))
        print(f"single-worker scrape (metrics op): "
              f"{single_requests:.0f} requests on that worker\n")

        merged = server.aggregate_metrics()
        print("fleet-merged Prometheus exposition:")
        print(render_prometheus(merged))

        refresh_counters = {
            name: value for name, value in merged["counters"].items()
            if name.startswith(("repro_refresh_", "repro_plan_cache_stale"))}
        print("fleet refresh counters:")
        for name in sorted(refresh_counters):
            print(f"  {name} = {refresh_counters[name]:.0f}")
        print()

        rollup = rollup_requests(reqlog_dir)
        print(f"request-log rollup: {rollup.records} records, "
              f"{len(rollup.signatures)} signatures")
        print(f"{'signature':<40} {'reqs':>5} {'hit%':>5} {'stale':>5} "
              f"{'age p90':>8} {'workers':>7}")
        for agg in rollup.top(5, by="requests"):
            print(f"{agg.signature[:40]:<40} {agg.requests:>5} "
                  f"{agg.hit_rate * 100.0:>4.0f}% {agg.stale:>5} "
                  f"{agg.age_p90:>7.2f}s {agg.workers:>7}")

        stats = server.aggregate_stats()
        print(f"\nfleet extremes: slowest plan "
              f"{stats.max_planning_time * 1e3:.1f} ms, oldest resident plan "
              f"{stats.oldest_plan_age or 0.0:.1f} s")

    # Export the last hot request's cross-process timeline.
    last = hot_responses[-1]
    trace_path = os.path.join(out_dir, "request_trace.json")
    tracer.dump_chrome_trace(trace_path, last.trace_id)
    events = json.load(open(trace_path))["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    roles = {e["tid"] for e in slices}
    print(f"\nChrome trace for request {last.trace_id}: {trace_path}")
    print(f"  {len(slices)} spans across {roles} "
          f"(open in chrome://tracing or ui.perfetto.dev)")

    failures = []
    total_requests = sum(
        value for name, value in merged["counters"].items()
        if name.startswith("repro_planner_requests_total"))
    expected = args.requests + args.workers * (len(cold) + 2)
    if total_requests != expected:
        failures.append(f"fleet metrics counted {total_requests:.0f} requests, "
                        f"clients issued {expected}")
    if rollup.records != expected:
        failures.append(f"request log replayed {rollup.records} records, "
                        f"expected {expected}")
    if stale_count < 1:
        failures.append("no post-TTL request was served stale")
    rollup_stale = sum(agg.stale for agg in rollup.signatures.values())
    if rollup_stale != stale_count:
        failures.append(f"rollup counted {rollup_stale} stale serves, "
                        f"responses flagged {stale_count}")
    if refresh_counters.get("repro_refresh_completed_total", 0.0) < stale_count:
        failures.append("background refreshers completed fewer refreshes "
                        "than stale serves")
    if not any(e["args"].get("trace_id") == last.trace_id for e in slices):
        failures.append("exported trace lost the request id")
    if {"client.plan", "worker.plan", "planner.plan"} - {e["name"] for e in slices}:
        failures.append("exported trace is missing a tier of the timeline")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("\nOK: metrics, rollup, and trace all agree on the traffic")


if __name__ == "__main__":
    main()
