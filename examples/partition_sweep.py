"""Explore the partitioning x replication design space for one problem.

Run with ``python examples/partition_sweep.py [batch_size]``.

This is the experiment methodology of the paper's Figures 2-3 in miniature:
for a GPT MLP-1 layer, sweep the six partitioning families, all valid
replication factors, and the three data-movement strategies on the PVC
machine model, then print the best configuration per family together with the
DTensor-style comparators.  Everything runs in simulate-only mode, so the
full-size problem is explored in a few seconds.  Set ``REPRO_SWEEP_JOBS=<n>``
to fan the sweep over a pool of worker processes.
"""

import os
import sys

from repro.bench.report import format_table, print_figure
from repro.bench.sweep import best_per_scheme, run_dtensor_series, run_ua_sweep
from repro.bench.workloads import mlp1_workload
from repro.core.config import ExecutionConfig
from repro.topology import pvc_system


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    machine = pvc_system(12)
    workload = mlp1_workload(batch)
    config = ExecutionConfig(simulate_only=True)

    # Same semantics as benchmarks/harness_common.sweep_jobs (separate tree,
    # so not importable here): unset or non-numeric means serial.
    raw = os.environ.get("REPRO_SWEEP_JOBS", "").strip()
    try:
        jobs = max(1, int(raw)) if raw else None
    except ValueError:
        jobs = None
    suffix = f" with {jobs} worker processes" if jobs and jobs > 1 else ""
    print(f"sweeping partitionings for MLP-1 with batch={batch} on 12xPVC{suffix} ...")
    points = run_ua_sweep(machine, [workload], config=config, jobs=jobs)
    best = best_per_scheme(points)
    best += run_dtensor_series(machine, [workload])

    print()
    print_figure(f"MLP-1 (batch {batch}) — best configuration per partitioning family", best)
    print()
    print("full detail of the winning configurations:")
    print(format_table(best))

    winner = max(best, key=lambda p: p.percent_of_peak)
    print()
    print(f"overall winner: {winner.series} with replication {winner.replication_label} "
          f"and Stationary {winner.stationary or '-'} "
          f"at {winner.percent_of_peak:.1f}% of peak")


if __name__ == "__main__":
    main()
