"""Serve plans from a multi-process PlanServer fleet and verify them live.

Run with ``python examples/planner_server.py [options]``, e.g.::

    python examples/planner_server.py --family attention --sizes 256 512
    python examples/planner_server.py --workers 4 --requests 64 --top-k 2
    python examples/planner_server.py --tcp --store /tmp/plans.json

The demo makes the process boundary visible end to end:

1. an in-process :class:`PlannerService` computes **reference** plans;
2. a :class:`PlanServer` forks the worker fleet (each worker owns its own
   planner service and plan cache — shared-nothing);
3. one :class:`PlanClient` per worker (connections round-robin across the
   fleet) issues a concurrent cold round and then a warm round of requests;
4. every served plan is checked **identical** to the in-process reference,
   and the aggregated fleet stats must show cache hits on multiple workers.

Exits non-zero if any served plan deviates from the reference or the warm
traffic failed to spread across workers.
"""

import argparse
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

if __package__ in (None, ""):  # script mode: make src/ importable like conftest does
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.bench.workloads import (
    attention_workload,
    mlp1_workload,
    mlp2_workload,
    square_workload,
    tall_skinny_workload,
)
from repro.planner import PlannerService
from repro.serve import PlanClient, PlanServer
from repro.topology.machines import get_system, uniform_system

FAMILIES = {
    "mlp1": mlp1_workload,
    "mlp2": mlp2_workload,
    "square": square_workload,
    "attention": attention_workload,
    "tall_skinny": tall_skinny_workload,
}


def same_plan(lhs, rhs) -> bool:
    """True when two recommendations pick the identical plan."""
    return lhs.plan_key() == rhs.plan_key()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2,
                        help="forked planner workers behind the socket")
    parser.add_argument("--family", choices=sorted(FAMILIES), default="attention",
                        help="workload family to request plans for")
    parser.add_argument("--sizes", type=int, nargs="+", default=[256, 384],
                        help="sizes within the family")
    parser.add_argument("--system", default="uniform",
                        help='"pvc", "h100", or "uniform" (synthetic)')
    parser.add_argument("--devices", type=int, default=4,
                        help="device count of the machine")
    parser.add_argument("--top-k", type=int, default=1,
                        help="how many ranked plans to return per request")
    parser.add_argument("--requests", type=int, default=24,
                        help="warm requests per workload (spread over the fleet)")
    parser.add_argument("--replication-factors", type=int, nargs="+", default=[1, 2],
                        help="replication factors to search over")
    parser.add_argument("--tcp", action="store_true",
                        help="serve on loopback TCP instead of a Unix socket")
    parser.add_argument("--store", default=None,
                        help="shared JSON plan store every worker warm-starts from")
    args = parser.parse_args()

    if args.system == "uniform":
        machine = uniform_system(args.devices)
    else:
        machine = get_system(args.system, args.devices)
    workloads = [FAMILIES[args.family](size) for size in args.sizes]
    service_options = dict(top_k=args.top_k,
                           replication_factors=args.replication_factors,
                           store_path=args.store)

    print(f"reference: in-process PlannerService on {machine.name} "
          f"({machine.num_devices} devices)")
    reference = {}
    with PlannerService(machine, **service_options) as service:
        for workload in workloads:
            reference[workload.name] = service.plan(workload).recommendation
            print(f"  {workload.name:<24} {reference[workload.name].describe()}")

    address = ("127.0.0.1", 0) if args.tcp else None
    with PlanServer(machine, num_workers=args.workers, address=address,
                    service_options=service_options) as server:
        print(f"\nPlanServer: {args.workers} workers on {server.address}")
        # One client per worker, each driven by exactly one thread: its single
        # pooled connection stays pinned to the worker the round-robin accept
        # dealt it to, so the fleet spread is deterministic (sharing a client
        # across threads would open extra, arbitrarily-placed connections).
        clients = [PlanClient(server.address) for _ in range(args.workers)]

        def client_round(client):
            return [(workload, client.plan(workload))
                    for _ in range(max(1, args.requests // args.workers))
                    for workload in workloads]

        try:
            mismatches = 0
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=args.workers) as pool:
                for label in ("cold", "warm"):
                    responses = [item
                                 for per_client in pool.map(client_round, clients)
                                 for item in per_client]
                    hits = sum(response.cache_hit for _, response in responses)
                    served_by = sorted({response.worker for _, response in responses})
                    for workload, response in responses:
                        if not same_plan(response.recommendation,
                                         reference[workload.name]):
                            mismatches += 1
                    print(f"{label:<4} round: {len(responses)} requests, "
                          f"{hits} cache hits, served by workers {served_by}")
            elapsed = time.perf_counter() - started
        finally:
            for client in clients:
                client.close()

        stats = server.aggregate_stats()
        print(f"\n{stats.describe()}")
        print(f"\n{stats.totals.requests} requests in {elapsed:.2f}s "
              f"({stats.totals.requests / elapsed:.0f} req/s through "
              f"{args.workers} workers)")
        if args.store:
            print(f"plan store shared at {args.store} "
                  f"(workers warm-start from it at boot)")

        failures = []
        if mismatches:
            failures.append(f"{mismatches} served plans deviated from the "
                            f"in-process reference")
        if args.workers >= 2 and stats.workers_with_hits < 2:
            failures.append("warm traffic failed to reach >= 2 workers")
        if failures:
            raise SystemExit("FAIL: " + "; ".join(failures))
        print("OK: every served plan matches the in-process reference; "
              f"cache hits on {stats.workers_with_hits} workers")


if __name__ == "__main__":
    main()
