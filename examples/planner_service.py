"""Serve partitioning plans for a stream of workloads with the PlannerService.

Run with ``python examples/planner_service.py [options]``, e.g.::

    python examples/planner_service.py --family mlp1 --sizes 1024 2048
    python examples/planner_service.py --family attention --system uniform \
        --devices 4 --sizes 256 512 --top-k 2
    python examples/planner_service.py --family rect --store /tmp/plans.json

The demo makes the serving behaviour visible: every workload is requested
twice (a cold pass that runs the pruned design-space search, then a warm pass
answered from the plan cache), per-request lines show hit/miss and latency,
and the summary reports cache hit rate plus how many candidate simulations
the cost-bound pruning skipped.
"""

import argparse
import os
import sys

if __package__ in (None, ""):  # script mode: make src/ importable like conftest does
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.bench.workloads import (
    attention_workload,
    mlp1_workload,
    mlp2_workload,
    rectangular_series,
    square_workload,
    tall_skinny_workload,
)
from repro.planner import PlannerService
from repro.topology.machines import get_system, uniform_system

FAMILIES = {
    "mlp1": lambda size: mlp1_workload(size),
    "mlp2": lambda size: mlp2_workload(size),
    "square": lambda size: square_workload(size),
    "attention": lambda size: attention_workload(size),
    "tall_skinny": lambda size: tall_skinny_workload(size),
    "rect": None,  # expands to the whole rectangular series, ignoring --sizes
}


def build_workloads(family: str, sizes):
    if family == "rect":
        return rectangular_series()
    return [FAMILIES[family](size) for size in sizes]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--family", choices=sorted(FAMILIES), default="mlp1",
                        help="workload family to request plans for")
    parser.add_argument("--sizes", type=int, nargs="+", default=[1024, 2048],
                        help="sizes within the family (batch/seq/rows/...)")
    parser.add_argument("--system", default="pvc",
                        help='"pvc", "h100", or "uniform" (synthetic)')
    parser.add_argument("--devices", type=int, default=None,
                        help="override the system's device count")
    parser.add_argument("--top-k", type=int, default=1,
                        help="how many ranked plans to return per request")
    parser.add_argument("--replication-factors", type=int, nargs="+", default=[1, 2],
                        help="replication factors to search over")
    parser.add_argument("--store", default=None,
                        help="JSON plan store for warm starts across runs")
    args = parser.parse_args()

    if args.system == "uniform":
        machine = uniform_system(args.devices or 4)
    else:
        machine = get_system(args.system, args.devices)

    workloads = build_workloads(args.family, args.sizes)
    service = PlannerService(machine, top_k=args.top_k,
                             replication_factors=args.replication_factors,
                             store_path=args.store)

    with service:
        if service.stats().warm_start_entries:
            print(f"warm start: {service.stats().warm_start_entries} plans "
                  f"loaded from {args.store}")
        print(f"serving {len(workloads)} x 2 planning requests for family "
              f"'{args.family}' on {machine.name} ({machine.num_devices} devices)\n")
        for label in ("cold", "warm"):
            for workload, response in zip(workloads, service.plan_many(workloads)):
                best = response.recommendation
                source = "cache-hit " if response.cache_hit else "planned  "
                detail = ""
                if response.search_stats is not None:
                    detail = (f"  [{response.search_stats.num_simulated} simulated, "
                              f"{response.search_stats.num_pruned} pruned]")
                print(f"{label:<4} {source} {workload.name:<24} "
                      f"{response.planning_time * 1e3:8.2f} ms  {best.describe()}{detail}")
            print()

        stats = service.stats()
        print(f"served {stats.requests} requests: {stats.plans_computed} planned, "
              f"{stats.cache_hits} cache hits ({stats.hit_rate:.0%}), "
              f"{stats.coalesced_requests} coalesced")
        print(f"design-space pruning skipped {stats.candidates_pruned} of "
              f"{stats.candidates_pruned + stats.candidates_simulated} "
              f"candidate simulations")
        if args.store:
            print(f"plan store saved to {service.save_store()}")


if __name__ == "__main__":
    main()
