"""Quickstart: multiply two distributed matrices with the universal algorithm.

Run with ``python examples/quickstart.py``.

The example builds the 12-device PVC machine model from the paper's Table 2,
distributes three matrices with *different* partitionings (the situation that
forces existing SPMD systems to reshard), multiplies them with a single call
to :func:`repro.universal_matmul`, and verifies the result against NumPy.
"""

import numpy as np

from repro import (
    Block2D,
    ColumnBlock,
    DistributedMatrix,
    RowBlock,
    Runtime,
    universal_matmul,
)
from repro.topology import pvc_system


def main() -> None:
    # 1. A runtime hosting 12 simulated devices with the PVC interconnect model.
    runtime = Runtime(machine=pvc_system(12))

    # 2. Operands with deliberately mismatched partitionings.
    rng = np.random.default_rng(0)
    m, k, n = 768, 512, 640
    a_dense = rng.standard_normal((m, k)).astype(np.float32)
    b_dense = rng.standard_normal((k, n)).astype(np.float32)

    a = DistributedMatrix.from_dense(runtime, a_dense, RowBlock(), name="A")
    b = DistributedMatrix.from_dense(runtime, b_dense, ColumnBlock(), name="B")
    c = DistributedMatrix.create(runtime, (m, n), Block2D(), name="C")

    # 3. One algorithm for any combination of partitionings.
    result = universal_matmul(a, b, c)

    # 4. The data is really there — compare against NumPy.
    np.testing.assert_allclose(c.to_dense(), a_dense @ b_dense, rtol=1e-3, atol=1e-3)

    print("universal_matmul succeeded")
    print(f"  data movement strategy : Stationary {result.stationary.value}")
    print(f"  local matmul ops       : {result.total_ops}")
    print(f"  remote gets            : {result.remote_get_bytes / 1e6:.2f} MB")
    print(f"  remote accumulates     : {result.remote_accumulate_bytes / 1e6:.2f} MB")
    print(f"  modelled time          : {result.simulated_time * 1e3:.3f} ms")
    print(f"  percent of FP32 peak   : {result.percent_of_peak:.1f}%")


if __name__ == "__main__":
    main()
