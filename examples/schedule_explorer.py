"""Inspect what the universal algorithm actually does: ops, graphs, IR schedules.

Run with ``python examples/schedule_explorer.py``.

For a small, deliberately misaligned problem (like the paper's Figure 1), this
example prints the list of local matrix-multiply operations one rank generates
by slicing, builds the bipartite computation graph, lowers it to the optimized
IR with the greedy and cost-model strategies, and compares the modelled
execution times of direct execution versus the lowered schedules.
"""

import numpy as np

from repro import CustomTiles, DistributedMatrix, ExecutionConfig, Runtime, universal_matmul
from repro.core import (
    ComputationGraph,
    CostModel,
    ExecutionMode,
    LoweringStrategy,
    Stationary,
    estimate_program_time,
    generate_local_ops,
    lower_to_ir,
)
from repro.topology import pvc_system


def build_problem(runtime: Runtime):
    m, n, k = 52, 44, 36
    a_part = CustomTiles([0, 13, 29, m], [0, 10, k])
    b_part = CustomTiles([0, 20, k], [0, 7, 30, n])
    c_part = CustomTiles([0, 25, m], [0, 11, n])
    rng = np.random.default_rng(3)
    a = DistributedMatrix.from_dense(runtime, rng.standard_normal((m, k)).astype(np.float32),
                                     a_part, name="A")
    b = DistributedMatrix.from_dense(runtime, rng.standard_normal((k, n)).astype(np.float32),
                                     b_part, name="B")
    c = DistributedMatrix.create(runtime, (m, n), c_part, name="C")
    return a, b, c


def main() -> None:
    runtime = Runtime(machine=pvc_system(12))
    a, b, c = build_problem(runtime)
    cost_model = CostModel(runtime.machine)

    rank = 1
    ops = generate_local_ops(a, b, c, Stationary.C, rank)
    print(f"rank {rank} generated {len(ops)} local matmul ops (Stationary C):")
    for op in ops:
        locality = "local" if not (op.a_is_remote or op.b_is_remote) else "needs comm"
        print(f"  {op.describe():<70s} [{locality}]")

    graph = ComputationGraph.build(rank, ops)
    print(f"\ncomputation graph: {graph.num_ops} compute nodes, "
          f"{len(graph.data_nodes)} data nodes, "
          f"{len(graph.remote_data_keys())} of them remote "
          f"({graph.total_remote_bytes() / 1e3:.1f} kB to fetch)")

    for strategy in (LoweringStrategy.GREEDY, LoweringStrategy.COST_GREEDY):
        program = lower_to_ir(graph, cost_model, ExecutionConfig(), strategy)
        estimate = estimate_program_time(program, graph, cost_model)
        print(f"\nIR lowering with {strategy.value}: {program.num_steps} steps, "
              f"estimated {estimate * 1e6:.1f} us")
        for index, step in enumerate(program.steps):
            comms = ", ".join(f"fetch {c.data[0]}{c.data[2]}" for c in step.comms) or "-"
            computes = ", ".join(f"op{c.op_index}" for c in step.computes) or "-"
            print(f"  step {index}: compute [{computes}]  ||  comm [{comms}]")

    # Execute both ways and confirm they agree with NumPy and with each other.
    reference = a.to_dense() @ b.to_dense()
    direct_result = universal_matmul(a, b, c, stationary="C", config=ExecutionConfig())
    np.testing.assert_allclose(c.to_dense(), reference, rtol=1e-3, atol=1e-3)
    c.zero()
    ir_result = universal_matmul(
        a, b, c, stationary="C",
        config=ExecutionConfig(mode=ExecutionMode.IR, lowering=LoweringStrategy.COST_GREEDY),
    )
    np.testing.assert_allclose(c.to_dense(), reference, rtol=1e-3, atol=1e-3)

    print("\nmodelled execution time:")
    print(f"  direct execution      : {direct_result.simulated_time * 1e6:.1f} us")
    print(f"  IR (cost-model greedy): {ir_result.simulated_time * 1e6:.1f} us")
    print("both paths produce bit-identical results (checked against NumPy)")


if __name__ == "__main__":
    main()
