#!/usr/bin/env python
"""Documentation gate: markdown link check + executable docs smoke.

Two checks, both offline and stdlib-only:

1. **Link check** — every markdown link in README.md, ROADMAP.md, and
   docs/*.md whose target is a local path must resolve to an existing file,
   and every ``file.md#anchor`` / ``#anchor`` fragment must match a heading
   in the target file (GitHub-style slugs).  External http(s) links are
   counted but not fetched (CI has no network guarantee).

2. **Snippet smoke** — every fenced ``python`` code block in the
   executable docs (docs/serving.md, docs/observability.md,
   docs/adaptive.md, docs/graph_planning.md) is extracted and executed
   *in order in one shared namespace per file*, so the documented
   quickstarts provably run against the current code.

Usage:
    python scripts/check_docs.py
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if os.path.isdir(SRC) and SRC not in sys.path:
    sys.path.insert(0, SRC)

#: Files whose links are checked (docs/*.md are added dynamically).
LINKED_FILES = ["README.md", "ROADMAP.md"]

#: Documentation files whose python blocks must execute.
EXECUTABLE_DOCS = [os.path.join("docs", "serving.md"),
                   os.path.join("docs", "observability.md"),
                   os.path.join("docs", "adaptive.md"),
                   os.path.join("docs", "graph_planning.md")]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"^```([A-Za-z0-9_+-]*)\s*$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (lowercase, punctuation dropped)."""
    text = heading.strip().lower()
    out = []
    for char in text:
        if char.isalnum() or char in (" ", "-", "_"):
            out.append(char)
    return "".join(out).replace(" ", "-")


def heading_slugs(markdown: str) -> set:
    """Every anchor a markdown document exposes.

    Fenced code blocks are stripped first: a ``# comment`` inside a code
    block is not a heading and must not become a phantom anchor.
    """
    slugs = set()
    for match in _HEADING.finditer(_strip_code(markdown)):
        slugs.add(github_slug(match.group(1)))
    return slugs


def _strip_code(markdown: str) -> str:
    """Remove fenced code blocks (their contents are not hyperlinks)."""
    lines = []
    in_fence = False
    for line in markdown.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append(line)
    return "\n".join(lines)


def check_links(files: List[str]) -> Tuple[int, int, List[str]]:
    """Validate local link targets + anchors; returns (checked, external, errors)."""
    contents: Dict[str, str] = {}
    for path in files:
        with open(os.path.join(ROOT, path), "r", encoding="utf-8") as handle:
            contents[path] = handle.read()

    checked = 0
    external = 0
    errors: List[str] = []
    for path, markdown in contents.items():
        base = os.path.dirname(os.path.join(ROOT, path))
        for match in _LINK.finditer(_strip_code(markdown)):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            checked += 1
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = os.path.normpath(os.path.join(base, file_part))
                if not os.path.exists(resolved):
                    errors.append(f"{path}: broken link -> {target}")
                    continue
                anchor_source = resolved
            else:
                anchor_source = os.path.join(ROOT, path)
            if anchor:
                try:
                    with open(anchor_source, "r", encoding="utf-8") as handle:
                        slugs = heading_slugs(handle.read())
                except (OSError, UnicodeDecodeError):
                    errors.append(f"{path}: unreadable anchor target -> {target}")
                    continue
                if anchor not in slugs:
                    errors.append(f"{path}: missing anchor -> {target}")
    return checked, external, errors


def extract_python_blocks(path: str) -> List[Tuple[int, str]]:
    """Return (first_line_number, source) for every fenced python block."""
    blocks: List[Tuple[int, str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    collecting = False
    start = 0
    buffer: List[str] = []
    for number, line in enumerate(lines, start=1):
        fence = _FENCE.match(line.strip())
        if fence and not collecting and fence.group(1) == "python":
            collecting = True
            start = number + 1
            buffer = []
            continue
        if fence and collecting:
            collecting = False
            blocks.append((start, "\n".join(buffer)))
            continue
        if collecting:
            buffer.append(line)
    return blocks


def run_python_blocks(path: str) -> List[str]:
    """Execute every python block sequentially in one namespace."""
    blocks = extract_python_blocks(os.path.join(ROOT, path))
    namespace: Dict[str, object] = {"__name__": "__docs__"}
    errors: List[str] = []
    for index, (line, source) in enumerate(blocks, start=1):
        try:
            code = compile(source, f"{path}:block{index}@line{line}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except BaseException as error:  # noqa: BLE001 - report, keep format
            errors.append(f"{path} block {index} (line {line}): "
                          f"{type(error).__name__}: {error}")
            break  # later blocks depend on earlier state; stop at first failure
    print(f"executed {len(blocks)} python blocks from {path}")
    return errors


def main() -> int:
    """Run both gates; returns a process exit code."""
    files = list(LINKED_FILES)
    docs_dir = os.path.join(ROOT, "docs")
    if os.path.isdir(docs_dir):
        files.extend(sorted(
            os.path.join("docs", name)
            for name in os.listdir(docs_dir) if name.endswith(".md")
        ))
    checked, external, errors = check_links(files)
    print(f"link check: {checked} local links verified across {len(files)} files "
          f"({external} external links not fetched)")

    for doc in EXECUTABLE_DOCS:
        errors.extend(run_python_blocks(doc))
    if errors:
        print("\nFAILURES:")
        for line in errors:
            print(f"  {line}")
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
