#!/usr/bin/env python
"""Docstring-coverage gate (interrogate-style, stdlib only).

Walks the given source trees and computes what fraction of public objects —
modules, classes, functions, and methods whose names do not start with an
underscore (dunders are excluded) — carry a docstring.  Fails (exit 1) when
coverage lands under the threshold.

Usage:
    python scripts/check_docstrings.py --threshold 90 src/repro/planner src/repro/serve
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, Tuple


def iter_python_files(paths: List[str]) -> Iterator[str]:
    """Yield every .py file under the given files/directories."""
    for path in paths:
        if os.path.isfile(path) and path.endswith(".py"):
            yield path
            continue
        for root, _dirs, files in os.walk(path):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def is_public(name: str) -> bool:
    """Public means no leading underscore; dunders are infrastructure."""
    return not name.startswith("_")


def audit_file(path: str) -> Tuple[int, int, List[str]]:
    """Count (documented, total) public objects in one file.

    Returns:
        ``(documented, total, missing)`` where ``missing`` lists the
        qualified names lacking docstrings.
    """
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)

    documented = 0
    total = 0
    missing: List[str] = []

    def visit(node: ast.AST, qualifier: str, public_scope: bool) -> None:
        nonlocal documented, total
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                public = public_scope and is_public(child.name)
                name = f"{qualifier}{child.name}"
                if public:
                    total += 1
                    if ast.get_docstring(child):
                        documented += 1
                    else:
                        missing.append(name)
                # Count methods of public classes; skip bodies of private
                # scopes and nested function internals entirely.
                if isinstance(child, ast.ClassDef):
                    visit(child, f"{name}.", public)

    total += 1  # the module itself
    if ast.get_docstring(tree):
        documented += 1
    else:
        missing.append("(module docstring)")
    visit(tree, "", True)
    return documented, total, missing


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="source files or directories to audit")
    parser.add_argument("--threshold", type=float, default=90.0,
                        help="minimum documented percentage (default 90)")
    parser.add_argument("--verbose", action="store_true",
                        help="list every undocumented object")
    args = parser.parse_args(argv)

    grand_documented = 0
    grand_total = 0
    failures: List[str] = []
    for path in iter_python_files(args.paths):
        documented, total, missing = audit_file(path)
        grand_documented += documented
        grand_total += total
        pct = 100.0 * documented / total if total else 100.0
        print(f"{pct:6.1f}%  {documented:3d}/{total:<3d}  {path}")
        for name in missing:
            failures.append(f"{path}: {name}")
            if args.verbose:
                print(f"         missing: {name}")

    coverage = 100.0 * grand_documented / grand_total if grand_total else 100.0
    print(f"\ntotal docstring coverage: {coverage:.1f}% "
          f"({grand_documented}/{grand_total} public objects), "
          f"threshold {args.threshold:.0f}%")
    if coverage < args.threshold:
        print("\nundocumented:")
        for line in failures:
            print(f"  {line}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
