#!/usr/bin/env bash
# CI entrypoint: tier-1 test suite + example smoke runs.
#
# Usage: ./scripts/ci.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== example smoke: quickstart =="
python examples/quickstart.py

echo "== example smoke: partition sweep (small batch) =="
python examples/partition_sweep.py 512

echo "CI passed."
