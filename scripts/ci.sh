#!/usr/bin/env bash
# CI entrypoint: tier-1 test suite + example smoke runs.
#
# Usage: ./scripts/ci.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== example smoke: quickstart =="
python examples/quickstart.py

echo "== example smoke: partition sweep (small batch) =="
python examples/partition_sweep.py 512

echo "== example smoke: planner service =="
python examples/planner_service.py --family attention --system uniform \
  --devices 4 --sizes 256 --top-k 2

echo "== benchmark smoke: planner throughput (fast mode) =="
python benchmarks/bench_planner_throughput.py --fast

echo "== benchmark smoke: event-engine drift check =="
python benchmarks/bench_event_engine_smoke.py --check

echo "== benchmark smoke: sparse/MoE sweep drift check =="
python benchmarks/bench_sparse_sweep.py --check

echo "CI passed."
