#!/usr/bin/env bash
# CI entrypoint: tier-1 test suite + example smoke runs.
#
# Usage: ./scripts/ci.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== example smoke: quickstart =="
python examples/quickstart.py

echo "== example smoke: partition sweep (small batch) =="
python examples/partition_sweep.py 512

echo "== example smoke: planner service =="
python examples/planner_service.py --family attention --system uniform \
  --devices 4 --sizes 256 --top-k 2

echo "== example smoke: planner server (multi-process fleet) =="
python examples/planner_server.py --workers 2 --family attention \
  --sizes 256 --requests 8

echo "== example smoke: observe fleet (metrics + rollup + trace) =="
python examples/observe_fleet.py --workers 2 --requests 8

echo "== benchmark smoke: planner throughput (fast mode) =="
python benchmarks/bench_planner_throughput.py --fast

echo "== benchmark smoke: planner winners/ranking check (vs snapshot) =="
python benchmarks/bench_planner_throughput.py --check

echo "== benchmark smoke: serving throughput check (fleet vs snapshot) =="
python benchmarks/bench_serving_throughput.py --check

echo "== benchmark smoke: fleet serving check (routing + crash resilience vs snapshot) =="
python benchmarks/bench_fleet_serving.py --check

echo "== benchmark smoke: event-engine drift check =="
python benchmarks/bench_event_engine_smoke.py --check

echo "== benchmark smoke: sparse/MoE sweep drift check =="
python benchmarks/bench_sparse_sweep.py --check

echo "== benchmark smoke: telemetry overhead bar (off free, on < 5%) =="
python benchmarks/bench_telemetry_overhead.py --check

echo "== benchmark smoke: adaptive refresh replay (identical plans, no request-path colds) =="
python benchmarks/bench_adaptive_refresh.py --check

echo "== benchmark smoke: joint graph planner check (joint beats greedy, solvers exact) =="
python benchmarks/bench_graph_planner.py --check

echo "== docs: markdown link check + executable-doc snippet smoke =="
python scripts/check_docs.py

echo "== docs: docstring coverage gate (planner + serve >= 90%) =="
python scripts/check_docstrings.py --threshold 90 src/repro/planner src/repro/serve

echo "CI passed."
