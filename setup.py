"""Setup shim.

The project is configured in ``pyproject.toml``; this file exists so that the
package can be installed in editable mode on machines where the ``wheel``
package (needed for PEP 660 editable wheels) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
