"""Setup shim.

The project is configured in ``pyproject.toml`` (``package_dir={"": "src"}``
via ``[tool.setuptools]``); ``pip install -e .`` is the normal install path.
This file exists so that the package can still be installed in editable mode
on offline machines where the ``wheel`` package (needed to build PEP 660
editable wheels) is unavailable:

    python setup.py develop
"""

from setuptools import setup

setup()
