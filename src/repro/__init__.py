"""repro — a universal one-sided algorithm for distributed matrix multiplication.

Reproduction of Brock & Golin, "Slicing Is All You Need: Towards A Universal
One-Sided Algorithm for Distributed Matrix Multiplication" (SC 2025), as a
pure-Python library: a simulated PGAS runtime with one-sided communication,
the distributed-matrix data structure with arbitrary partitionings and
replication factors, the slicing-based universal algorithm with direct and
IR-lowered execution, classical baselines (SUMMA, Cannon, 1.5D/2.5D, a
COSMA-style selector), a DTensor-like SPMD comparator, and the benchmark
harness that regenerates the paper's figures.

Quickstart::

    import numpy as np
    from repro import Runtime, DistributedMatrix, ColumnBlock, universal_matmul
    from repro.topology import pvc_system

    rt = Runtime(machine=pvc_system(12))
    a = DistributedMatrix.from_dense(rt, np.random.rand(512, 256).astype(np.float32),
                                     ColumnBlock(), name="A")
    b = DistributedMatrix.from_dense(rt, np.random.rand(256, 384).astype(np.float32),
                                     ColumnBlock(), name="B")
    c = DistributedMatrix.create(rt, (512, 384), ColumnBlock(), name="C")
    result = universal_matmul(a, b, c)
    np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-4)
"""

from repro._version import __version__
from repro.runtime import Runtime
from repro.topology import MachineSpec, get_system, h100_system, pvc_system
from repro.dist import (
    Block2D,
    BlockCyclic,
    ColumnBlock,
    CustomTiles,
    DistributedMatrix,
    RowBlock,
    redistribute,
)
from repro.core import (
    CostModel,
    ExecutionConfig,
    ExecutionMode,
    ExecutionResult,
    LoweringStrategy,
    Stationary,
    plan_ops,
    universal_matmul,
)
from repro.sim import EventEngine, EventKind, InMemoryTraceRecorder

__all__ = [
    "__version__",
    "Runtime",
    "MachineSpec",
    "get_system",
    "h100_system",
    "pvc_system",
    "Block2D",
    "BlockCyclic",
    "ColumnBlock",
    "CustomTiles",
    "DistributedMatrix",
    "RowBlock",
    "redistribute",
    "CostModel",
    "ExecutionConfig",
    "ExecutionMode",
    "ExecutionResult",
    "LoweringStrategy",
    "Stationary",
    "plan_ops",
    "universal_matmul",
    "EventEngine",
    "EventKind",
    "InMemoryTraceRecorder",
]
