"""Classical distributed matrix-multiplication baselines.

The paper positions the universal algorithm against the existing zoo of
algorithms — 1D, 2D (Cannon, SUMMA), 1.5D, and 2.5D variants — and compares
experimentally against PyTorch DTensor and COSMA.  This package implements
those classical algorithms over the same machine model so that benchmarks can
place the universal algorithm in context (experiment E9 in DESIGN.md) and so
the COSMA-style selector is available as a baseline for Figure 3.

Every algorithm provides

* ``simulate(m, n, k, machine)`` — analytic execution-time model at any scale,
* ``simulate_events(m, n, k, machine)`` — the same schedule emitted as typed
  events through the unified :class:`repro.sim.EventEngine` (the closed form
  above is retained as a cross-check on the trace),
* ``run(a, b)`` — a real (NumPy) execution of the algorithm's communication
  schedule at small scale, used by the correctness tests.
"""

from repro.baselines.base import BaselineAlgorithm, BaselinePhase, BaselineResult
from repro.baselines.one_d import OneDRing
from repro.baselines.summa import Summa
from repro.baselines.cannon import Cannon
from repro.baselines.algorithms_15d import OneAndHalfD
from repro.baselines.algorithms_25d import TwoAndHalfD
from repro.baselines.cosma import CosmaLike, CosmaDecomposition, select_cosma_decomposition

__all__ = [
    "BaselineAlgorithm",
    "BaselinePhase",
    "BaselineResult",
    "OneDRing",
    "Summa",
    "Cannon",
    "OneAndHalfD",
    "TwoAndHalfD",
    "CosmaLike",
    "CosmaDecomposition",
    "select_cosma_decomposition",
]
