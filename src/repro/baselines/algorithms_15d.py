"""1.5D algorithm: 1-D partitioning with replication (Koanantakool et al. style).

The ``p`` processes are organised as ``c`` replica groups of ``p/c`` members.
A and C are partitioned into ``p/c`` row blocks and replicated across groups;
B is partitioned into ``p/c`` row panels along the inner dimension within each
group.  Group ``g`` is responsible for ``1/c`` of the inner dimension: it runs
``p/(c*c)`` ring-rotation steps of the 1-D algorithm over its share, producing
a partial C, and the partial C row blocks are finally all-reduced across the
``c`` groups.  At ``c = 1`` this degenerates to the plain 1-D ring algorithm;
at larger ``c`` it trades replicated memory for fewer, larger shifts — the
"sliding scale" of replication discussed in the paper's Section 2.1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineAlgorithm, BaselinePhase, BaselineResult
from repro.collectives.models import allreduce_time
from repro.core.cost_model import CostModel
from repro.topology.machines import MachineSpec
from repro.util.indexing import block_bounds
from repro.util.validation import ReplicationError, check_matmul_shapes


class OneAndHalfD(BaselineAlgorithm):
    """1.5D replicated 1-D algorithm with replication factor ``c``."""

    name = "1.5d"

    def __init__(self, replication: int = 2, overlap: bool = True) -> None:
        if replication < 1:
            raise ReplicationError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self.overlap = overlap

    def _group_size(self, num_devices: int) -> int:
        if num_devices % self.replication != 0:
            raise ReplicationError(
                f"replication {self.replication} does not divide {num_devices} devices"
            )
        return num_devices // self.replication

    def _terms(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int) -> dict:
        """Per-step model terms shared by the closed form and the event trace."""
        p = machine.num_devices
        c = self.replication
        group = self._group_size(p)
        cost_model = CostModel(machine)

        m_local = -(-m // group)
        k_share = -(-k // c)           # inner-dimension share of one group
        k_panel = -(-k_share // group)  # panel rotated within the group
        steps = max(1, group // max(1, c))

        gemm_step = cost_model.gemm_time(m_local, n, k_share // max(1, steps) or k_panel,
                                         itemsize)
        shift_bytes = k_panel * n * itemsize
        bandwidth = machine.topology.min_remote_bandwidth()
        latency = machine.topology.latency(0, 1) if p > 1 else 0.0
        shift_step = latency + shift_bytes / bandwidth if group > 1 else 0.0

        reduce_bytes = m_local * n * itemsize
        group_ranks = list(range(0, p, group))[:c] if c > 1 else [0]
        reduce_total = allreduce_time(machine, group_ranks, reduce_bytes) if c > 1 else 0.0
        return dict(p=p, c=c, group=group, steps=steps, gemm_step=gemm_step,
                    shift_step=shift_step, shift_bytes=shift_bytes,
                    reduce_bytes=reduce_bytes, reduce_total=reduce_total)

    # ------------------------------------------------------------------ #
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        t = self._terms(m, n, k, machine, itemsize)
        c, steps = t["c"], t["steps"]
        gemm_step, shift_step = t["gemm_step"], t["shift_step"]

        per_step = self._combine(gemm_step, shift_step)
        ring_total = per_step * max(0, steps - 1) + gemm_step
        total = ring_total + t["reduce_total"]
        return self._result(
            machine, m, n, k,
            compute_time=gemm_step * steps,
            communication_time=shift_step * max(0, steps - 1) + t["reduce_total"],
            total_time=total,
            communication_bytes=(t["shift_bytes"] * max(0, steps - 1)
                                 + (c - 1) * t["reduce_bytes"]) * t["p"],
            replication=c,
            group_size=t["group"],
            steps=steps,
        )

    def phases(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int = 4) -> list:
        """Ring rotations over the group's inner share, then the replica all-reduce."""
        t = self._terms(m, n, k, machine, itemsize)
        phases = []
        if t["steps"] > 1:
            phases.append(BaselinePhase(label="ring-step", compute=t["gemm_step"],
                                        comm=t["shift_step"], overlap=self.overlap,
                                        repeat=t["steps"] - 1))
        phases.append(BaselinePhase(label="final-multiply", compute=t["gemm_step"]))
        if t["reduce_total"] > 0.0:
            phases.append(BaselinePhase(label="replica-allreduce",
                                        comm=t["reduce_total"], collective=True))
        return phases

    # ------------------------------------------------------------------ #
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        m, n, k = check_matmul_shapes(a.shape, b.shape)
        p = num_procs or 4
        c = min(self.replication, p)
        while p % c != 0:
            c -= 1
        group = p // c
        group = min(group, m)

        k_shares = [block_bounds(k, c, g) for g in range(c)]
        row_bounds = [block_bounds(m, group, r) for r in range(group)]

        partials = []
        for g in range(c):
            k_slice = k_shares[g].as_slice()
            partial_blocks = []
            for r in range(group):
                rows = row_bounds[r].as_slice()
                partial_blocks.append(a[rows, k_slice] @ b[k_slice, :])
            partials.append(np.concatenate(partial_blocks, axis=0))
        # All-reduce across replica groups.
        return np.sum(partials, axis=0)
