"""2.5D algorithm (Solomonik & Demmel): 2D grids replicated across ``c`` layers.

The ``p`` processes form ``c`` layers, each a ``sqrt(p/c) x sqrt(p/c)`` grid
holding a full copy of A and B (C is computed as partial sums).  Layer ``l``
executes ``1/c`` of the SUMMA panel updates, and the partial C blocks are then
reduced across layers.  With ``c = 1`` this is plain SUMMA/2D; with
``c = p^(1/3)`` it reaches the 2.5D communication lower bound.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.base import BaselineAlgorithm, BaselinePhase, BaselineResult
from repro.collectives.models import allreduce_time, broadcast_time
from repro.core.cost_model import CostModel
from repro.topology.machines import MachineSpec
from repro.util.indexing import block_bounds
from repro.util.validation import ReplicationError, check_matmul_shapes


class TwoAndHalfD(BaselineAlgorithm):
    """2.5D SUMMA with ``c`` replicated layers."""

    name = "2.5d"

    def __init__(self, replication: int = 2, overlap: bool = True) -> None:
        if replication < 1:
            raise ReplicationError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self.overlap = overlap

    def _layer_side(self, num_devices: int) -> int:
        if num_devices % self.replication != 0:
            raise ReplicationError(
                f"replication {self.replication} does not divide {num_devices} devices"
            )
        per_layer = num_devices // self.replication
        return max(1, int(math.isqrt(per_layer)))

    def _terms(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int) -> dict:
        """Per-step model terms shared by the closed form and the event trace."""
        p = machine.num_devices
        c = self.replication
        side = self._layer_side(p)
        cost_model = CostModel(machine)

        m_local = -(-m // side)
        n_local = -(-n // side)
        panel = max(1, -(-k // (side * c)))
        steps_per_layer = max(1, -(-k // panel) // c)

        row_group = list(range(side))
        a_panel_bytes = m_local * panel * itemsize
        b_panel_bytes = panel * n_local * itemsize
        comm_step = max(
            broadcast_time(machine, row_group, a_panel_bytes),
            broadcast_time(machine, row_group, b_panel_bytes),
        )
        gemm_step = cost_model.gemm_time(m_local, n_local, panel, itemsize)

        reduce_bytes = m_local * n_local * itemsize
        layer_peers = list(range(0, p, side * side))[:c] if c > 1 else [0]
        reduce_total = allreduce_time(machine, layer_peers, reduce_bytes) if c > 1 else 0.0
        return dict(p=p, c=c, side=side, steps_per_layer=steps_per_layer,
                    a_panel_bytes=a_panel_bytes, b_panel_bytes=b_panel_bytes,
                    comm_step=comm_step, gemm_step=gemm_step,
                    reduce_bytes=reduce_bytes, reduce_total=reduce_total)

    # ------------------------------------------------------------------ #
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        t = self._terms(m, n, k, machine, itemsize)
        c, side, steps_per_layer = t["c"], t["side"], t["steps_per_layer"]
        per_step = self._combine(t["gemm_step"], t["comm_step"])
        layer_total = per_step * steps_per_layer

        total = layer_total + t["reduce_total"]
        # Ring all-reduce across the c layers moves ~2 (c-1)/c of the block per rank.
        reduce_traffic_per_rank = 2.0 * (c - 1) / c * t["reduce_bytes"] if c > 1 else 0.0
        return self._result(
            machine, m, n, k,
            compute_time=t["gemm_step"] * steps_per_layer,
            communication_time=t["comm_step"] * steps_per_layer + t["reduce_total"],
            total_time=total,
            communication_bytes=int(
                (t["a_panel_bytes"] + t["b_panel_bytes"]) * steps_per_layer * t["p"]
                + reduce_traffic_per_rank * t["p"]
            ),
            replication=c,
            layer_grid=f"{side}x{side}",
            steps_per_layer=steps_per_layer,
            devices_used=side * side * c,
        )

    def num_active_devices(self, m: int, n: int, k: int, machine: MachineSpec,
                           itemsize: int = 4) -> int:
        side = self._layer_side(machine.num_devices)
        return side * side * self.replication

    def phases(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int = 4) -> list:
        """Each layer's share of SUMMA panel updates, then the layer all-reduce."""
        t = self._terms(m, n, k, machine, itemsize)
        phases = [BaselinePhase(label="panel-update", compute=t["gemm_step"],
                                comm=t["comm_step"], overlap=self.overlap,
                                repeat=t["steps_per_layer"], collective=True)]
        if t["reduce_total"] > 0.0:
            phases.append(BaselinePhase(label="layer-allreduce",
                                        comm=t["reduce_total"], collective=True))
        return phases

    # ------------------------------------------------------------------ #
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        m, n, k = check_matmul_shapes(a.shape, b.shape)
        p = num_procs or 8
        c = min(self.replication, p)
        while p % c != 0:
            c -= 1
        side = max(1, int(math.isqrt(p // c)))
        side = max(1, min(side, m, n))

        row_bounds = [block_bounds(m, side, i) for i in range(side)]
        col_bounds = [block_bounds(n, side, j) for j in range(side)]
        k_layers = [block_bounds(k, c, layer) for layer in range(c)]

        partial_layers = []
        for layer in range(c):
            k_slice = k_layers[layer].as_slice()
            blocks = [
                [
                    a[row_bounds[i].as_slice(), k_slice] @ b[k_slice, col_bounds[j].as_slice()]
                    for j in range(side)
                ]
                for i in range(side)
            ]
            partial_layers.append(np.block(blocks))
        return np.sum(partial_layers, axis=0)
