"""Shared interface and result type for the baseline algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.cost_model import CostModel
from repro.topology.machines import MachineSpec


@dataclass
class BaselineResult:
    """Outcome of simulating one baseline algorithm on one problem."""

    name: str
    simulated_time: float
    percent_of_peak: float
    compute_time: float
    communication_time: float
    communication_bytes: int
    metadata: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {
            "algorithm": self.name,
            "simulated_time_s": self.simulated_time,
            "percent_of_peak": self.percent_of_peak,
            "compute_time_s": self.compute_time,
            "communication_time_s": self.communication_time,
            "communication_bytes": self.communication_bytes,
            **{f"meta_{key}": value for key, value in self.metadata.items()},
        }


class BaselineAlgorithm(abc.ABC):
    """A classical distributed matmul algorithm with a time model and a reference run."""

    name: str = "baseline"

    #: Whether communication and computation are overlapped in the time model.
    overlap: bool = True

    @abc.abstractmethod
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        """Modelled execution time for an ``m x k @ k x n`` multiply on ``machine``."""

    @abc.abstractmethod
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        """Execute the algorithm's schedule on real (small) matrices and return C."""

    # ------------------------------------------------------------------ #
    def _combine(self, compute: float, communication: float) -> float:
        """Combine per-phase compute/comm according to the overlap policy."""
        if self.overlap:
            return max(compute, communication)
        return compute + communication

    def _result(
        self,
        machine: MachineSpec,
        m: int,
        n: int,
        k: int,
        compute_time: float,
        communication_time: float,
        total_time: float,
        communication_bytes: int,
        **metadata: object,
    ) -> BaselineResult:
        cost_model = CostModel(machine)
        flops = 2.0 * m * n * k
        return BaselineResult(
            name=self.name,
            simulated_time=total_time,
            percent_of_peak=cost_model.percent_of_peak(flops, total_time),
            compute_time=compute_time,
            communication_time=communication_time,
            communication_bytes=communication_bytes,
            metadata=dict(metadata),
        )
