"""Shared interface and result type for the baseline algorithms.

Every baseline retains its closed-form time model (the numbers quoted in the
paper's comparisons) *and* can emit the same schedule as typed events through
the unified :class:`~repro.sim.engine.EventEngine` — so baseline-vs-universal
comparisons price through one engine, and the closed form doubles as a
cross-check on the event trace (they must agree to ~1e-9).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.cost_model import CostModel
from repro.sim.engine import EventEngine
from repro.sim.events import ScheduledEvent
from repro.topology.machines import MachineSpec


@dataclass
class BaselineResult:
    """Outcome of simulating one baseline algorithm on one problem."""

    name: str
    simulated_time: float
    percent_of_peak: float
    compute_time: float
    communication_time: float
    communication_bytes: int
    metadata: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {
            "algorithm": self.name,
            "simulated_time_s": self.simulated_time,
            "percent_of_peak": self.percent_of_peak,
            "compute_time_s": self.compute_time,
            "communication_time_s": self.communication_time,
            "communication_bytes": self.communication_bytes,
            **{f"meta_{key}": value for key, value in self.metadata.items()},
        }


@dataclass(frozen=True)
class BaselinePhase:
    """One (possibly repeated) step of a baseline's bulk-synchronous schedule.

    ``overlap=True`` runs the phase's communication and computation
    concurrently (the phase takes their max); ``overlap=False`` serialises
    communication before computation.  ``collective=True`` marks the
    communication as a modelled collective (broadcast/all-reduce) rather than
    a point-to-point shift.
    """

    label: str
    compute: float = 0.0
    comm: float = 0.0
    overlap: bool = True
    repeat: int = 1
    collective: bool = False


class BaselineAlgorithm(abc.ABC):
    """A classical distributed matmul algorithm with a time model and a reference run."""

    name: str = "baseline"

    #: Whether communication and computation are overlapped in the time model.
    overlap: bool = True

    @abc.abstractmethod
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        """Modelled execution time for an ``m x k @ k x n`` multiply on ``machine``."""

    @abc.abstractmethod
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        """Execute the algorithm's schedule on real (small) matrices and return C."""

    @abc.abstractmethod
    def phases(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int = 4) -> List[BaselinePhase]:
        """The algorithm's schedule as a list of bulk-synchronous phases.

        This is the same step structure the closed-form model in
        :meth:`simulate` sums up, exposed so :meth:`simulate_events` can emit
        it through the unified event engine.
        """

    def num_active_devices(self, m: int, n: int, k: int, machine: MachineSpec,
                           itemsize: int = 4) -> int:
        """How many devices the algorithm's schedule actually occupies.

        Algorithms with grid constraints (Cannon's square grids, COSMA's
        factorisations, 2.5D's layer grids) may leave devices idle;
        overridden there so event traces show those devices as idle instead
        of busy.
        """
        return machine.num_devices

    # ------------------------------------------------------------------ #
    def simulate_events(
        self,
        m: int,
        n: int,
        k: int,
        machine: MachineSpec,
        itemsize: int = 4,
        engine: Optional[EventEngine] = None,
    ) -> EventEngine:
        """Emit the algorithm's schedule as typed events on every participating device.

        Every participating device (see :meth:`num_active_devices`) executes
        the same bulk-synchronous phase sequence, so the engine's makespan
        reproduces the closed-form :meth:`simulate` time (the property suite
        asserts agreement).  Returns the engine for trace inspection /
        makespan queries.
        """
        engine = engine or EventEngine(machine.num_devices)
        phase_list = self.phases(m, n, k, machine, itemsize)
        for device in range(self.num_active_devices(m, n, k, machine, itemsize)):
            barrier: Optional[ScheduledEvent] = None
            for phase in phase_list:
                label = f"{self.name}:{phase.label}"
                for _ in range(phase.repeat):
                    barrier = self._emit_phase(engine, device, phase, label, barrier)
        return engine

    def _emit_phase(
        self,
        engine: EventEngine,
        device: int,
        phase: BaselinePhase,
        label: str,
        barrier: Optional[ScheduledEvent],
    ) -> Optional[ScheduledEvent]:
        """Emit one repetition of a phase; returns the new chain barrier."""

        def comm_event(deps) -> ScheduledEvent:
            if phase.collective:
                return engine.collective(device, phase.comm, deps=deps, label=label)
            return engine.fetch(device, phase.comm, deps=deps, label=label)

        if not phase.overlap:
            # Serial: communication completes before the local update starts.
            tail = barrier
            if phase.comm > 0.0:
                tail = comm_event((tail,))
            if phase.compute > 0.0:
                tail = engine.gemm(device, phase.compute, deps=(tail,), label=label)
            return tail

        concurrent: List[Optional[ScheduledEvent]] = []
        if phase.comm > 0.0:
            concurrent.append(comm_event((barrier,)))
        if phase.compute > 0.0:
            concurrent.append(engine.gemm(device, phase.compute, deps=(barrier,),
                                          label=label))
        if not concurrent:
            return barrier
        if len(concurrent) == 1:
            return concurrent[0]
        return engine.sync(device, deps=concurrent + [barrier], label=f"{label}:sync")

    # ------------------------------------------------------------------ #
    def _combine(self, compute: float, communication: float) -> float:
        """Combine per-phase compute/comm according to the overlap policy."""
        if self.overlap:
            return max(compute, communication)
        return compute + communication

    def _result(
        self,
        machine: MachineSpec,
        m: int,
        n: int,
        k: int,
        compute_time: float,
        communication_time: float,
        total_time: float,
        communication_bytes: int,
        **metadata: object,
    ) -> BaselineResult:
        cost_model = CostModel(machine)
        flops = 2.0 * m * n * k
        return BaselineResult(
            name=self.name,
            simulated_time=total_time,
            percent_of_peak=cost_model.percent_of_peak(flops, total_time),
            compute_time=compute_time,
            communication_time=communication_time,
            communication_bytes=communication_bytes,
            metadata=dict(metadata),
        )
