"""Cannon's algorithm on a square process grid.

A, B, and C are partitioned into ``q x q`` blocks (``q = sqrt(p)``).  After an
initial skew (row ``i`` of A rotated left by ``i``, column ``j`` of B rotated
up by ``j``), the algorithm performs ``q`` steps of local multiply followed by
a single-position rotation of A blocks leftward and B blocks upward.  Each
step moves exactly one A block and one B block per process, making Cannon's
communication perfectly balanced — at the cost of requiring square grids and
aligned operands, which is exactly the kind of precondition the universal
algorithm removes.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.base import BaselineAlgorithm, BaselinePhase, BaselineResult
from repro.core.cost_model import CostModel
from repro.topology.machines import MachineSpec
from repro.util.indexing import block_bounds
from repro.util.validation import check_matmul_shapes


def _square_side(num_devices: int) -> int:
    side = int(math.isqrt(num_devices))
    return max(side, 1)


class Cannon(BaselineAlgorithm):
    """Cannon's algorithm (square grids only; extra devices stay idle)."""

    name = "cannon"

    def __init__(self, overlap: bool = True, strict: bool = False) -> None:
        self.overlap = overlap
        #: With ``strict=True`` a non-square device count raises instead of
        #: silently using the largest square subset.
        self.strict = strict

    def _side(self, num_devices: int) -> int:
        side = _square_side(num_devices)
        if self.strict and side * side != num_devices:
            raise ValueError(
                f"Cannon's algorithm needs a square process count, got {num_devices}"
            )
        return side

    def _terms(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int) -> dict:
        """Per-step model terms shared by the closed form and the event trace."""
        side = self._side(machine.num_devices)
        cost_model = CostModel(machine)
        m_local = -(-m // side)
        n_local = -(-n // side)
        k_local = -(-k // side)

        gemm_step = cost_model.gemm_time(m_local, n_local, k_local, itemsize)
        a_block_bytes = m_local * k_local * itemsize
        b_block_bytes = k_local * n_local * itemsize
        bandwidth = machine.topology.min_remote_bandwidth()
        latency = machine.topology.latency(0, 1) if machine.num_devices > 1 else 0.0
        shift_step = (
            latency + (a_block_bytes + b_block_bytes) / bandwidth if side > 1 else 0.0
        )
        return dict(side=side, gemm_step=gemm_step, shift_step=shift_step,
                    a_block_bytes=a_block_bytes, b_block_bytes=b_block_bytes)

    # ------------------------------------------------------------------ #
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        t = self._terms(m, n, k, machine, itemsize)
        side, gemm_step, shift_step = t["side"], t["gemm_step"], t["shift_step"]
        used_devices = side * side
        skew = shift_step  # initial alignment, one rotation's worth

        per_step = self._combine(gemm_step, shift_step)
        total = skew + per_step * (side - 1) + gemm_step if side > 1 else gemm_step

        # Percent of peak is reported against the whole machine even though
        # only side*side devices participate, mirroring how a user would see it.
        result = self._result(
            machine, m, n, k,
            compute_time=gemm_step * side,
            communication_time=skew + shift_step * (side - 1),
            total_time=total,
            communication_bytes=(t["a_block_bytes"] + t["b_block_bytes"])
            * side * used_devices,
            grid=f"{side}x{side}",
            devices_used=used_devices,
        )
        result.metadata["idle_devices"] = machine.num_devices - used_devices
        return result

    def num_active_devices(self, m: int, n: int, k: int, machine: MachineSpec,
                           itemsize: int = 4) -> int:
        side = self._side(machine.num_devices)
        return side * side

    def phases(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int = 4) -> list:
        """Initial skew, ``side - 1`` multiply+rotate steps, one final multiply."""
        t = self._terms(m, n, k, machine, itemsize)
        side, gemm_step, shift_step = t["side"], t["gemm_step"], t["shift_step"]
        if side <= 1:
            return [BaselinePhase(label="multiply", compute=gemm_step)]
        return [
            BaselinePhase(label="skew", comm=shift_step),
            BaselinePhase(label="multiply-rotate", compute=gemm_step,
                          comm=shift_step, overlap=self.overlap, repeat=side - 1),
            BaselinePhase(label="final-multiply", compute=gemm_step),
        ]

    # ------------------------------------------------------------------ #
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        m, n, k = check_matmul_shapes(a.shape, b.shape)
        side = self._side(num_procs or 4)
        side = max(1, min(side, m, n, k))

        row_bounds = [block_bounds(m, side, i) for i in range(side)]
        col_bounds = [block_bounds(n, side, j) for j in range(side)]
        inner_bounds = [block_bounds(k, side, x) for x in range(side)]

        # Block views of the operands.
        a_blocks = [[a[row_bounds[i].as_slice(), inner_bounds[x].as_slice()]
                     for x in range(side)] for i in range(side)]
        b_blocks = [[b[inner_bounds[x].as_slice(), col_bounds[j].as_slice()]
                     for j in range(side)] for x in range(side)]
        c_blocks = [[np.zeros((row_bounds[i].extent, col_bounds[j].extent),
                              dtype=np.result_type(a, b))
                     for j in range(side)] for i in range(side)]

        # Initial skew: A row i rotated left by i, B column j rotated up by j.
        a_state = [[a_blocks[i][(x + i) % side] for x in range(side)] for i in range(side)]
        b_state = [[b_blocks[(x + j) % side][j] for j in range(side)] for x in range(side)]

        for _step in range(side):
            for i in range(side):
                for j in range(side):
                    c_blocks[i][j] += a_state[i][j] @ b_state[i][j]
            # Rotate A blocks left within each row, B blocks up within each column.
            a_state = [[a_state[i][(j + 1) % side] for j in range(side)] for i in range(side)]
            b_state = [[b_state[(i + 1) % side][j] for j in range(side)] for i in range(side)]

        return np.block(c_blocks)
