"""COSMA-style baseline: communication-optimal decomposition selection.

COSMA (Kwasniewski et al., SC'19) chooses, for a given problem size, process
count, and memory budget, a 3-D decomposition ``(pm, pn, pk)`` of the
iteration space that minimises communication volume — automatically scaling
between 2D (``pk = 1``, no replication) and 2.5D (``pk > 1``) regimes.  The
paper uses COSMA (with its NCCL backend, overlap disabled, unlimited memory)
as an additional baseline on the H100 system.

This module implements

* :func:`select_cosma_decomposition` — enumerate all factorisations of ``p``
  into ``pm * pn * pk``, discard those exceeding the memory budget, and keep
  the one with the smallest per-rank communication volume, and
* :class:`CosmaLike` — a baseline algorithm that executes/simulates the
  chosen decomposition (SUMMA-style within each of the ``pk`` layers followed
  by an all-reduce of the partial C across layers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineAlgorithm, BaselinePhase, BaselineResult
from repro.collectives.models import allreduce_time, broadcast_time
from repro.core.cost_model import CostModel
from repro.topology.machines import MachineSpec
from repro.util.indexing import block_bounds
from repro.util.validation import check_matmul_shapes


@dataclass(frozen=True)
class CosmaDecomposition:
    """A 3-D split of the iteration space over ``pm * pn * pk`` processes."""

    pm: int
    pn: int
    pk: int

    @property
    def processes(self) -> int:
        return self.pm * self.pn * self.pk

    def local_shapes(self, m: int, n: int, k: int) -> Tuple[Tuple[int, int], ...]:
        """Per-rank shapes of the A panel, B panel, and C block."""
        m_local = -(-m // self.pm)
        n_local = -(-n // self.pn)
        k_local = -(-k // self.pk)
        return ((m_local, k_local), (k_local, n_local), (m_local, n_local))

    def memory_elements(self, m: int, n: int, k: int) -> int:
        """Elements a single rank must hold (A + B panels plus its C block)."""
        (am, ak), (bk, bn), (cm, cn) = self.local_shapes(m, n, k)
        return am * ak + bk * bn + cm * cn

    def communication_elements(self, m: int, n: int, k: int) -> float:
        """Per-rank communication volume in elements (gather A, gather B, reduce C)."""
        (am, ak), (bk, bn), (cm, cn) = self.local_shapes(m, n, k)
        a_fetch = am * ak * (self.pn - 1) / self.pn
        b_fetch = bk * bn * (self.pm - 1) / self.pm
        c_reduce = 2.0 * cm * cn * (self.pk - 1) / self.pk
        return a_fetch + b_fetch + c_reduce


def _factor_triples(count: int) -> List[Tuple[int, int, int]]:
    triples = []
    for pm in range(1, count + 1):
        if count % pm:
            continue
        rest = count // pm
        for pn in range(1, rest + 1):
            if rest % pn:
                continue
            triples.append((pm, pn, rest // pn))
    return triples


def select_cosma_decomposition(
    m: int,
    n: int,
    k: int,
    num_devices: int,
    memory_budget_bytes: Optional[float] = None,
    itemsize: int = 4,
) -> CosmaDecomposition:
    """Pick the factorisation of ``num_devices`` minimising communication volume.

    ``memory_budget_bytes`` is the per-device limit; ``None`` reproduces the
    paper's "unlimited memory budget" setting.  Ties favour less replication
    (smaller ``pk``), then squarer 2-D grids.
    """
    best: Optional[CosmaDecomposition] = None
    best_key: Optional[Tuple[float, int, int]] = None
    for pm, pn, pk in _factor_triples(num_devices):
        decomposition = CosmaDecomposition(pm, pn, pk)
        if memory_budget_bytes is not None:
            footprint = decomposition.memory_elements(m, n, k) * itemsize
            if footprint > memory_budget_bytes:
                continue
        volume = decomposition.communication_elements(m, n, k)
        squareness = abs(pm - pn)
        key = (volume, pk, squareness)
        if best_key is None or key < best_key:
            best_key = key
            best = decomposition
    if best is None:
        raise ValueError(
            "no COSMA decomposition fits the memory budget "
            f"({memory_budget_bytes} bytes per device)"
        )
    return best


class CosmaLike(BaselineAlgorithm):
    """Execute the COSMA-selected decomposition (SUMMA within layers + C all-reduce)."""

    name = "cosma"

    def __init__(
        self,
        memory_budget_bytes: Optional[float] = None,
        overlap: bool = False,
    ) -> None:
        # The paper reports COSMA numbers with communication/computation
        # overlap turned *off* (they measured that to be faster), so the
        # default here is no overlap.
        self.memory_budget_bytes = memory_budget_bytes
        self.overlap = overlap

    def _terms(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int) -> dict:
        """Per-step model terms shared by the closed form and the event trace.

        Memoizes the last problem so one ``simulate_events`` call (which needs
        the terms for both the device count and the phases) runs the
        decomposition search once.
        """
        key = (m, n, k, itemsize, machine)
        cached = getattr(self, "_terms_memo", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        decomposition = select_cosma_decomposition(
            m, n, k, machine.num_devices, self.memory_budget_bytes, itemsize
        )
        pm, pn, pk = decomposition.pm, decomposition.pn, decomposition.pk
        cost_model = CostModel(machine)
        (am, ak), (bk, bn), (cm, cn) = decomposition.local_shapes(m, n, k)

        panel = max(1, -(-ak // max(pm, pn)))
        steps = -(-ak // panel)
        row_group = list(range(pn)) if pn > 1 else [0]
        col_group = list(range(pm)) if pm > 1 else [0]
        comm_step = (
            broadcast_time(machine, row_group, am * panel * itemsize)
            + broadcast_time(machine, col_group, panel * bn * itemsize)
        )
        gemm_step = cost_model.gemm_time(am, bn, panel, itemsize)

        layer_peers = list(range(pk)) if pk > 1 else [0]
        reduce_total = (
            allreduce_time(machine, layer_peers, cm * cn * itemsize) if pk > 1 else 0.0
        )
        terms = dict(decomposition=decomposition, steps=steps, comm_step=comm_step,
                     gemm_step=gemm_step, reduce_total=reduce_total)
        self._terms_memo = (key, terms)
        return terms

    # ------------------------------------------------------------------ #
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        t = self._terms(m, n, k, machine, itemsize)
        decomposition, steps = t["decomposition"], t["steps"]
        per_step = self._combine(t["gemm_step"], t["comm_step"])
        layer_total = per_step * steps

        total = layer_total + t["reduce_total"]
        comm_bytes = int(
            decomposition.communication_elements(m, n, k) * itemsize * machine.num_devices
        )
        return self._result(
            machine, m, n, k,
            compute_time=t["gemm_step"] * steps,
            communication_time=t["comm_step"] * steps + t["reduce_total"],
            total_time=total,
            communication_bytes=comm_bytes,
            decomposition=f"{decomposition.pm}x{decomposition.pn}x{decomposition.pk}",
            steps=steps,
        )

    def num_active_devices(self, m: int, n: int, k: int, machine: MachineSpec,
                           itemsize: int = 4) -> int:
        return self._terms(m, n, k, machine, itemsize)["decomposition"].processes

    def phases(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int = 4) -> list:
        """SUMMA panel updates within each layer, then the partial-C all-reduce."""
        t = self._terms(m, n, k, machine, itemsize)
        phases = [BaselinePhase(label="panel-update", compute=t["gemm_step"],
                                comm=t["comm_step"], overlap=self.overlap,
                                repeat=t["steps"], collective=True)]
        if t["reduce_total"] > 0.0:
            phases.append(BaselinePhase(label="partial-allreduce",
                                        comm=t["reduce_total"], collective=True))
        return phases

    # ------------------------------------------------------------------ #
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        m, n, k = check_matmul_shapes(a.shape, b.shape)
        p = num_procs or 8
        decomposition = select_cosma_decomposition(
            m, n, k, p, self.memory_budget_bytes, a.dtype.itemsize
        )
        pm = min(decomposition.pm, m)
        pn = min(decomposition.pn, n)
        pk = min(decomposition.pk, k)

        row_bounds = [block_bounds(m, pm, i) for i in range(pm)]
        col_bounds = [block_bounds(n, pn, j) for j in range(pn)]
        k_bounds = [block_bounds(k, pk, layer) for layer in range(pk)]

        partials = []
        for layer in range(pk):
            k_slice = k_bounds[layer].as_slice()
            blocks = [
                [
                    a[row_bounds[i].as_slice(), k_slice] @ b[k_slice, col_bounds[j].as_slice()]
                    for j in range(pn)
                ]
                for i in range(pm)
            ]
            partials.append(np.block(blocks))
        return np.sum(partials, axis=0)
