"""The classical 1-D ring algorithm (Fox/Otto/Hey-style row algorithm).

A and C are partitioned into ``p`` row blocks; B is partitioned into ``p``
row blocks along the inner dimension.  The algorithm runs ``p`` steps: in
step ``s`` each rank multiplies its A column slice ``(r + s) mod p`` with the
B panel currently resident, accumulates into its C rows, and passes the B
panel to its ring neighbour.  Communication per rank is ``(p-1)/p`` of B.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineAlgorithm, BaselinePhase, BaselineResult
from repro.core.cost_model import CostModel
from repro.topology.machines import MachineSpec
from repro.util.indexing import block_bounds
from repro.util.validation import check_matmul_shapes, check_positive_int


class OneDRing(BaselineAlgorithm):
    """1-D block-row algorithm with a rotating B panel."""

    name = "1d_ring"

    def __init__(self, overlap: bool = True) -> None:
        self.overlap = overlap

    def _terms(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int) -> dict:
        """Per-step model terms shared by the closed form and the event trace."""
        p = machine.num_devices
        cost_model = CostModel(machine)
        m_local = -(-m // p)
        k_panel = -(-k // p)

        gemm_step = cost_model.gemm_time(m_local, n, k_panel, itemsize)
        shift_bytes = k_panel * n * itemsize
        # Ring neighbours: use the slowest remote link as the conservative choice.
        bandwidth = machine.topology.min_remote_bandwidth()
        latency = max(machine.topology.latency(0, dst) for dst in range(p) if dst != 0) \
            if p > 1 else 0.0
        shift_step = latency + shift_bytes / bandwidth if p > 1 else 0.0
        return dict(p=p, gemm_step=gemm_step, shift_step=shift_step,
                    shift_bytes=shift_bytes)

    # ------------------------------------------------------------------ #
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        t = self._terms(m, n, k, machine, itemsize)
        p, gemm_step, shift_step = t["p"], t["gemm_step"], t["shift_step"]
        per_step = self._combine(gemm_step, shift_step)
        # The final step needs no shift.
        total = per_step * (p - 1) + gemm_step if p > 1 else gemm_step
        compute = gemm_step * p
        communication = shift_step * (p - 1)
        return self._result(
            machine, m, n, k,
            compute_time=compute,
            communication_time=communication,
            total_time=total,
            communication_bytes=t["shift_bytes"] * (p - 1) * p,
            steps=p,
        )

    def phases(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int = 4) -> list:
        """``p - 1`` multiply+shift steps and one final multiply (no shift)."""
        t = self._terms(m, n, k, machine, itemsize)
        p, gemm_step, shift_step = t["p"], t["gemm_step"], t["shift_step"]
        if p <= 1:
            return [BaselinePhase(label="multiply", compute=gemm_step)]
        return [
            BaselinePhase(label="multiply-shift", compute=gemm_step,
                          comm=shift_step, overlap=self.overlap, repeat=p - 1),
            BaselinePhase(label="final-multiply", compute=gemm_step),
        ]

    # ------------------------------------------------------------------ #
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        m, n, k = check_matmul_shapes(a.shape, b.shape)
        p = check_positive_int(num_procs or 4, "num_procs")
        p = min(p, m, k)

        a_rows = [block_bounds(m, p, r) for r in range(p)]
        k_panels = [block_bounds(k, p, r) for r in range(p)]
        # Per-rank state: local A rows, currently resident B panel (starts as own panel).
        local_a = [a[rows.as_slice(), :] for rows in a_rows]
        resident_b = [b[k_panels[r].as_slice(), :].copy() for r in range(p)]
        resident_panel = list(range(p))
        local_c = [np.zeros((a_rows[r].extent, n), dtype=np.result_type(a, b)) for r in range(p)]

        for _step in range(p):
            # Multiply the resident panel, then rotate it to the next rank.
            for rank in range(p):
                panel = resident_panel[rank]
                k_slice = k_panels[panel].as_slice()
                local_c[rank] += local_a[rank][:, k_slice] @ resident_b[rank]
            resident_b = [resident_b[(rank + 1) % p] for rank in range(p)]
            resident_panel = [resident_panel[(rank + 1) % p] for rank in range(p)]

        return np.concatenate(local_c, axis=0)
