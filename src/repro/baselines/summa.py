"""SUMMA: the Scalable Universal Matrix Multiplication Algorithm (van de Geijn & Watts).

A, B, and C live on an aligned ``pr x pc`` process grid; the inner dimension
is processed in panels.  In every step the owners of the current A panel
broadcast it along their grid row and the owners of the current B panel
broadcast it along their grid column; every process then performs a local
rank-``kb`` update of its stationary C block.  Communication per process is
``(n_steps) x`` (A panel within a row + B panel within a column).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineAlgorithm, BaselinePhase, BaselineResult
from repro.collectives.models import broadcast_time
from repro.core.cost_model import CostModel
from repro.dist.process_grid import near_square_factors
from repro.topology.machines import MachineSpec
from repro.util.indexing import block_bounds
from repro.util.validation import check_matmul_shapes


class Summa(BaselineAlgorithm):
    """Stationary-C SUMMA on a (near-)square process grid."""

    name = "summa"

    def __init__(
        self,
        grid: Optional[Tuple[int, int]] = None,
        panel_width: Optional[int] = None,
        overlap: bool = True,
    ) -> None:
        self.grid = grid
        self.panel_width = panel_width
        self.overlap = overlap

    def _grid(self, num_devices: int) -> Tuple[int, int]:
        if self.grid is not None:
            rows, cols = self.grid
            if rows * cols != num_devices:
                raise ValueError(
                    f"grid {rows}x{cols} does not match {num_devices} devices"
                )
            return rows, cols
        return near_square_factors(num_devices)

    def _terms(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int) -> dict:
        """Per-step model terms shared by the closed form and the event trace."""
        pr, pc = self._grid(machine.num_devices)
        cost_model = CostModel(machine)
        m_local = -(-m // pr)
        n_local = -(-n // pc)
        panel = self.panel_width or max(1, -(-k // max(pr, pc)))
        steps = -(-k // panel)

        row_group = list(range(pc))   # representative grid row
        col_group = list(range(pr))   # representative grid column
        a_panel_bytes = m_local * panel * itemsize
        b_panel_bytes = panel * n_local * itemsize
        comm_step = max(
            broadcast_time(machine, row_group, a_panel_bytes),
            broadcast_time(machine, col_group, b_panel_bytes),
        )
        gemm_step = cost_model.gemm_time(m_local, n_local, panel, itemsize)
        return dict(pr=pr, pc=pc, panel=panel, steps=steps,
                    a_panel_bytes=a_panel_bytes, b_panel_bytes=b_panel_bytes,
                    comm_step=comm_step, gemm_step=gemm_step)

    # ------------------------------------------------------------------ #
    def simulate(self, m: int, n: int, k: int, machine: MachineSpec,
                 itemsize: int = 4) -> BaselineResult:
        t = self._terms(m, n, k, machine, itemsize)
        pr, pc, steps = t["pr"], t["pc"], t["steps"]
        per_step = self._combine(t["gemm_step"], t["comm_step"])
        total = per_step * steps
        return self._result(
            machine, m, n, k,
            compute_time=t["gemm_step"] * steps,
            communication_time=t["comm_step"] * steps,
            total_time=total,
            communication_bytes=(t["a_panel_bytes"] * (pc - 1)
                                 + t["b_panel_bytes"] * (pr - 1))
            * steps * machine.num_devices // max(pr, pc),
            grid=f"{pr}x{pc}",
            steps=steps,
            panel_width=t["panel"],
        )

    def phases(self, m: int, n: int, k: int, machine: MachineSpec,
               itemsize: int = 4) -> list:
        """``steps`` identical panel updates: broadcast the panels, rank-kb update."""
        t = self._terms(m, n, k, machine, itemsize)
        return [BaselinePhase(label="panel-update", compute=t["gemm_step"],
                              comm=t["comm_step"], overlap=self.overlap,
                              repeat=t["steps"], collective=True)]

    # ------------------------------------------------------------------ #
    def run(self, a: np.ndarray, b: np.ndarray, num_procs: Optional[int] = None) -> np.ndarray:
        m, n, k = check_matmul_shapes(a.shape, b.shape)
        p = num_procs or 4
        pr, pc = self._grid(p)
        pr, pc = min(pr, m), min(pc, n)
        panel = self.panel_width or max(1, -(-k // max(pr, pc)))

        row_bounds = [block_bounds(m, pr, i) for i in range(pr)]
        col_bounds = [block_bounds(n, pc, j) for j in range(pc)]
        # Block-distributed operands: A over (pr, pc) with k split into pc pieces,
        # B over (pr, pc) with k split into pr pieces — the classical aligned layout.
        a_col_bounds = [block_bounds(k, pc, j) for j in range(pc)]
        b_row_bounds = [block_bounds(k, pr, i) for i in range(pr)]

        c_blocks = [
            [np.zeros((row_bounds[i].extent, col_bounds[j].extent),
                      dtype=np.result_type(a, b)) for j in range(pc)]
            for i in range(pr)
        ]

        for start in range(0, k, panel):
            stop = min(start + panel, k)
            # Owners of this k-panel broadcast slices along rows/columns; in the
            # reference run we simply slice the global operands, which is what
            # every process holds after the broadcast.
            a_panel = a[:, start:stop]
            b_panel = b[start:stop, :]
            for i in range(pr):
                for j in range(pc):
                    c_blocks[i][j] += (
                        a_panel[row_bounds[i].as_slice(), :]
                        @ b_panel[:, col_bounds[j].as_slice()]
                    )

        return np.block(c_blocks)
