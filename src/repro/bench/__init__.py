"""Benchmark harness: workloads, partitioning schemes, sweeps, and reporting.

This package turns the library into the paper's evaluation: it defines the
GPT-MLP problem sizes (Section 5.2.1), the partitioning families plotted in
Figures 2-3, the replication-factor sweep that produces the numbers above
each bar, and the DTensor / COSMA comparator series.  The scripts under
``benchmarks/`` are thin wrappers that call into this package and print the
same rows/series the paper reports.
"""

from repro.bench.workloads import (
    MLP_HIDDEN,
    MLP_RATIO,
    BATCH_SIZES,
    Workload,
    attention_workload,
    block_sparse_workload,
    mlp1_workload,
    mlp2_workload,
    moe_workload,
    rectangular_series,
    square_workload,
    tall_skinny_workload,
)
from repro.bench.schemes import (
    PartitioningScheme,
    ua_schemes,
    scheme_by_name,
)
from repro.bench.sweep import (
    SweepPoint,
    run_ua_point,
    run_ua_sweep,
    best_per_scheme,
    run_dtensor_series,
    run_cosma_series,
    run_baseline_series,
)
from repro.bench.report import format_table, series_from_points, print_figure
from repro.bench.selector import PartitioningRecommendation, recommend_partitioning

__all__ = [
    "MLP_HIDDEN",
    "MLP_RATIO",
    "BATCH_SIZES",
    "Workload",
    "attention_workload",
    "block_sparse_workload",
    "mlp1_workload",
    "mlp2_workload",
    "moe_workload",
    "rectangular_series",
    "square_workload",
    "tall_skinny_workload",
    "PartitioningScheme",
    "ua_schemes",
    "scheme_by_name",
    "SweepPoint",
    "run_ua_point",
    "run_ua_sweep",
    "best_per_scheme",
    "run_dtensor_series",
    "run_cosma_series",
    "run_baseline_series",
    "format_table",
    "series_from_points",
    "print_figure",
    "PartitioningRecommendation",
    "recommend_partitioning",
]
