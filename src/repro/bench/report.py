"""Plain-text reporting of sweep results in the shape of the paper's figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bench.sweep import SweepPoint


def format_table(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as an aligned text table (one row per point)."""
    rows = [point.row() for point in points]
    if not rows:
        return "(no results)"
    columns = ["series", "batch", "percent_of_peak", "simulated_time_ms",
               "stationary", "replication"]
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def series_from_points(points: Iterable[SweepPoint]) -> Dict[str, List[Tuple[int, float]]]:
    """Group points into figure series: ``{series: [(batch, percent_of_peak), ...]}``."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for point in points:
        series.setdefault(point.series, []).append((point.batch, point.percent_of_peak))
    for values in series.values():
        values.sort(key=lambda pair: pair[0])
    return series


def print_figure(title: str, points: Sequence[SweepPoint]) -> str:
    """Produce the text rendition of one figure panel (and return it).

    The output lists, per series, percent-of-peak at each batch size, plus the
    replication/stationary annotations the paper prints above the bars.
    """
    lines = [title, "=" * len(title)]
    series = series_from_points(points)
    annotations: Dict[str, Dict[int, str]] = {}
    for point in points:
        annotations.setdefault(point.series, {})[point.batch] = (
            f"c={point.replication_label}"
            + (f",S-{point.stationary}" if point.stationary else "")
        )
    batches = sorted({batch for values in series.values() for batch, _ in values})
    header = "series".ljust(22) + "".join(f"{batch:>18}" for batch in batches)
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(series):
        cells = []
        values = dict(series[name])
        for batch in batches:
            if batch in values:
                annotation = annotations.get(name, {}).get(batch, "")
                cells.append(f"{values[batch]:6.1f}% {annotation}".rjust(18))
            else:
                cells.append(" " * 18)
        lines.append(name.ljust(22) + "".join(cells))
    text = "\n".join(lines)
    print(text)
    return text
