"""The partitioning families ("UA - ...") plotted in the paper's figures.

Each scheme fixes how A, B, and C are partitioned; the replication factors and
the data-movement strategy are swept separately by the harness (the paper
reports the best-performing combination and annotates the replication factor
above each bar).

=============  ==================  ==================  ==================
scheme          A partition         B partition         C partition
=============  ==================  ==================  ==================
column          column blocks (k)   column blocks (n)   column blocks (n)
row             row blocks (m)      row blocks (k)      row blocks (m)
block           2D blocks (aspect)  2D blocks (aspect)  2D blocks (aspect)
inner           row blocks (m)      column blocks (n)   column blocks (n)
outer           column blocks (k)   row blocks (k)      2D blocks
traditional     aligned 2D blocks   aligned 2D blocks   aligned 2D blocks
=============  ==================  ==================  ==================

``column`` and ``inner`` only move the A matrix (B/C tiles are co-located),
which is why they dominate MLP-1; ``outer`` only accumulates C, which is why
it dominates MLP-2 on the bandwidth-starved PVC system; ``block`` moves two
matrices; ``traditional`` is the classical aligned ScaLAPACK layout included
to show the universal algorithm covers it as a special case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.dist.partition import Block2D, ColumnBlock, Partition, RowBlock
from repro.bench.workloads import Workload


def aspect_grid(shape: Tuple[int, int], num_procs: int) -> Tuple[int, int]:
    """Factor ``num_procs`` into a grid whose aspect ratio best matches ``shape``.

    Used by the ``block`` scheme so that, e.g., a short-and-fat matrix gets a
    short-and-fat process grid, keeping tiles as square as possible.
    """
    rows, cols = int(shape[0]), int(shape[1])
    target = rows / cols
    best: Tuple[int, int] = (1, num_procs)
    best_error = float("inf")
    for grid_rows in range(1, num_procs + 1):
        if num_procs % grid_rows:
            continue
        grid_cols = num_procs // grid_rows
        error = abs((grid_rows / grid_cols) - target)
        if error < best_error:
            best_error = error
            best = (grid_rows, grid_cols)
    return best


#: Signature of the per-matrix partition factories: (matrix shape, procs per replica).
PartitionFactory = Callable[[Tuple[int, int], int], Partition]


@dataclass(frozen=True)
class PartitioningScheme:
    """A named (A, B, C) partition combination."""

    name: str
    label: str
    a_factory: PartitionFactory
    b_factory: PartitionFactory
    c_factory: PartitionFactory
    description: str = ""

    def partitions(self, workload: Workload, procs_per_replica_a: int,
                   procs_per_replica_b: int, procs_per_replica_c: int
                   ) -> Tuple[Partition, Partition, Partition]:
        a_shape, b_shape, c_shape = workload.shapes
        return (
            self.a_factory(a_shape, procs_per_replica_a),
            self.b_factory(b_shape, procs_per_replica_b),
            self.c_factory(c_shape, procs_per_replica_c),
        )


def _column(_shape: Tuple[int, int], _procs: int) -> Partition:
    return ColumnBlock()


def _row(_shape: Tuple[int, int], _procs: int) -> Partition:
    return RowBlock()


def _aspect_block(shape: Tuple[int, int], procs: int) -> Partition:
    rows, cols = aspect_grid(shape, procs)
    return Block2D(grid_rows=rows, grid_cols=cols)


def _square_block(_shape: Tuple[int, int], _procs: int) -> Partition:
    return Block2D()


def ua_schemes() -> List[PartitioningScheme]:
    """The six universal-algorithm partitioning families of Figures 2-3."""
    return [
        PartitioningScheme(
            name="column",
            label="UA - Column",
            a_factory=_column, b_factory=_column, c_factory=_column,
            description="all matrices column-block distributed; only A moves",
        ),
        PartitioningScheme(
            name="row",
            label="UA - Row",
            a_factory=_row, b_factory=_row, c_factory=_row,
            description="all matrices row-block distributed; B moves",
        ),
        PartitioningScheme(
            name="block",
            label="UA - Block",
            a_factory=_aspect_block, b_factory=_aspect_block, c_factory=_aspect_block,
            description="2D blocks with aspect-matched process grids; A and C move",
        ),
        PartitioningScheme(
            name="inner",
            label="UA - Inner Prod.",
            a_factory=_row, b_factory=_column, c_factory=_column,
            description="row panels of A times column panels of B; only A moves",
        ),
        PartitioningScheme(
            name="outer",
            label="UA - Outer Prod.",
            a_factory=_column, b_factory=_row, c_factory=_square_block,
            description="k-split outer product; C is accumulated remotely",
        ),
        PartitioningScheme(
            name="traditional",
            label="UA - Traditional",
            a_factory=_square_block, b_factory=_square_block, c_factory=_square_block,
            description="classical aligned 2D blocks on one near-square grid",
        ),
    ]


def scheme_by_name(name: str) -> PartitioningScheme:
    for scheme in ua_schemes():
        if scheme.name == name.lower():
            return scheme
    raise KeyError(f"unknown partitioning scheme {name!r}; "
                   f"available: {[s.name for s in ua_schemes()]}")
