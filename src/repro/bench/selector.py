"""Automatic partitioning/replication selection (the paper's future-work hook).

The paper's conclusion notes that it "does not address the issue of how to
select an optimal partitioning for a particular problem" and points to
COSMA-style techniques as the natural companion.  Because the universal
algorithm makes *every* combination executable, selection reduces to a search
over the design space with the cost model — which is exactly what the sweep
driver already does.  This module packages that search as a small planner:

* enumerate the partitioning families, replication factors, and data-movement
  strategies that fit a per-device memory budget,
* score each candidate with the simulate-only execution model, and
* return a :class:`PartitioningRecommendation` that can be applied directly
  (it knows how to build the distributed matrices).

The search itself now lives in :mod:`repro.planner.search`, which adds
cost-bound pruning (provably the same answer, strictly fewer simulations);
:func:`recommend_partitioning` is kept as the stable entry point and
delegates there.  Callers who want memoization and serving statistics on top
should use :class:`repro.planner.PlannerService` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bench.schemes import PartitioningScheme
from repro.bench.workloads import Workload
from repro.dist.matrix import DistributedMatrix
from repro.runtime.runtime import Runtime
from repro.topology.machines import MachineSpec


@dataclass(frozen=True)
class PartitioningRecommendation:
    """One evaluated configuration of the design space."""

    scheme: PartitioningScheme
    replication: Tuple[int, int, int]
    stationary: str
    percent_of_peak: float
    simulated_time: float
    memory_per_device: int

    def plan_key(self) -> Tuple[str, Tuple[int, int, int], str, float]:
        """Identity of the *plan* this recommendation picks.

        Two recommendations with equal keys choose the same partitioning at
        the same simulated cost — the comparison the serving example and the
        serving drift benchmark both rely on, kept in one place so their
        notions of "identical plan" cannot diverge.
        """
        return (self.scheme.name, self.replication, self.stationary,
                self.simulated_time)

    def describe(self) -> str:
        rep_a, rep_b, rep_c = self.replication
        return (
            f"{self.scheme.label}: replication A/B/C = {rep_a}/{rep_b}/{rep_c}, "
            f"Stationary {self.stationary}, "
            f"{self.percent_of_peak:.1f}% of peak, "
            f"{self.memory_per_device / 1e9:.2f} GB per device"
        )

    def build_matrices(
        self, runtime: Runtime, workload: Workload, dtype="float32",
        materialize: bool = True,
    ) -> Tuple[DistributedMatrix, DistributedMatrix, DistributedMatrix]:
        """Instantiate A, B, C under this recommendation on the given runtime."""
        rep_a, rep_b, rep_c = self.replication
        p = runtime.num_ranks
        part_a, part_b, part_c = self.scheme.partitions(
            workload, p // rep_a, p // rep_b, p // rep_c
        )
        a_shape, b_shape, c_shape = workload.shapes
        a = DistributedMatrix.create(runtime, a_shape, part_a, replication=rep_a,
                                     dtype=dtype, name="A", materialize=materialize)
        b = DistributedMatrix.create(runtime, b_shape, part_b, replication=rep_b,
                                     dtype=dtype, name="B", materialize=materialize)
        c = DistributedMatrix.create(runtime, c_shape, part_c, replication=rep_c,
                                     dtype=dtype, name="C", materialize=materialize)
        return a, b, c


def recommend_partitioning(
    machine: MachineSpec,
    workload: Workload,
    memory_budget_bytes: Optional[float] = None,
    schemes: Optional[Sequence[PartitioningScheme]] = None,
    replication_factors: Optional[Sequence[int]] = None,
    stationary_options: Sequence[str] = ("A", "B", "C"),
    top_k: int = 1,
    itemsize: int = 4,
) -> List[PartitioningRecommendation]:
    """Search the partitioning design space and return the best configuration(s).

    ``memory_budget_bytes`` (per device) defaults to the machine's memory
    capacity; configurations that would not fit are skipped, which is how
    replication trades memory for communication exactly as in the 1.5D/2.5D
    literature the paper builds on.

    Delegates to the pruned search in :mod:`repro.planner.search`, which
    returns exactly the ranking the original exhaustive sweep produced.
    """
    # Imported lazily: repro.planner sits above repro.bench in the layer
    # stack, so a module-level import here would be circular.
    from repro.planner.search import search_partitionings

    recommendations, _ = search_partitionings(
        machine,
        workload,
        memory_budget_bytes=memory_budget_bytes,
        schemes=schemes,
        replication_factors=replication_factors,
        stationary_options=stationary_options,
        top_k=top_k,
        itemsize=itemsize,
    )
    return recommendations
