"""Sweep drivers: run the universal algorithm and the comparators over the
partitioning x replication x data-movement space and keep the best points.

This is the reproduction of the paper's experimental methodology: "For our
algorithm, we exhaustively test all combinations of row block, column block,
and rectangular 2D block with all valid replication factors ... For each
partitioning strategy, we report the replication factor that achieved the
highest performance as well as the data movement strategy that achieved the
highest performance."
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import BaselineAlgorithm, CosmaLike
from repro.bench.schemes import PartitioningScheme, ua_schemes
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.core.matmul import universal_matmul
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dtensor.device_mesh import DeviceMesh
from repro.dtensor.dispatch import simulate_dtensor_matmul
from repro.dtensor.placement import Shard
from repro.runtime.runtime import Runtime
from repro.topology.machines import MachineSpec


@dataclass
class SweepPoint:
    """One (series, batch) result — a single bar of the paper's figures."""

    series: str
    workload: str
    batch: int
    percent_of_peak: float
    simulated_time: float
    stationary: Optional[str] = None
    replication: Tuple[int, int, int] = (1, 1, 1)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def replication_label(self) -> str:
        """Format like the paper's annotations: "c" or "c_AB-c_C" when mixed."""
        rep_a, rep_b, rep_c = self.replication
        if rep_a == rep_b == rep_c:
            return str(rep_c)
        return f"{max(rep_a, rep_b)}-{rep_c}"

    def row(self) -> Dict[str, object]:
        return {
            "series": self.series,
            "workload": self.workload,
            "batch": self.batch,
            "percent_of_peak": round(self.percent_of_peak, 2),
            "simulated_time_ms": round(self.simulated_time * 1.0e3, 4),
            "stationary": self.stationary or "-",
            "replication": self.replication_label,
            **self.extra,
        }


def valid_replication_factors(num_devices: int,
                              limit: Optional[Sequence[int]] = None) -> List[int]:
    """Divisors of the device count (optionally intersected with ``limit``)."""
    factors = [c for c in range(1, num_devices + 1) if num_devices % c == 0]
    if limit is not None:
        factors = [c for c in factors if c in set(limit)]
    return factors


def run_ua_point(
    machine: MachineSpec,
    workload: Workload,
    scheme: PartitioningScheme,
    replication: Tuple[int, int, int] = (1, 1, 1),
    stationary: Optional[str] = None,
    config: Optional[ExecutionConfig] = None,
) -> SweepPoint:
    """Simulate the universal algorithm for one fully specified configuration."""
    config = config or ExecutionConfig(simulate_only=True)
    runtime = Runtime(machine=machine)
    rep_a, rep_b, rep_c = replication
    p = machine.num_devices
    part_a, part_b, part_c = scheme.partitions(
        workload, p // rep_a, p // rep_b, p // rep_c
    )
    a_shape, b_shape, c_shape = workload.shapes
    a = DistributedMatrix.create(runtime, a_shape, part_a, replication=rep_a,
                                 name="A", materialize=not config.simulate_only)
    b = DistributedMatrix.create(runtime, b_shape, part_b, replication=rep_b,
                                 name="B", materialize=not config.simulate_only)
    c = DistributedMatrix.create(runtime, c_shape, part_c, replication=rep_c,
                                 name="C", materialize=not config.simulate_only)
    result = universal_matmul(a, b, c, stationary=stationary, config=config,
                              structure=workload.structure)
    extra = {
        "remote_get_bytes": result.remote_get_bytes,
        "remote_accumulate_bytes": result.remote_accumulate_bytes,
        "total_ops": result.total_ops,
    }
    if not workload.structure.is_dense:
        extra["structure"] = workload.structure.signature_token()
    return SweepPoint(
        series=scheme.label,
        workload=workload.name,
        batch=workload.m,
        percent_of_peak=result.percent_of_peak,
        simulated_time=result.simulated_time,
        stationary=result.stationary.value,
        replication=replication,
        extra=extra,
    )


def _run_ua_point_task(task: Tuple) -> SweepPoint:
    """Module-level adapter so sweep configurations pickle into worker processes."""
    machine, workload, scheme, replication, stationary, config = task
    return run_ua_point(machine, workload, scheme, replication=replication,
                        stationary=stationary, config=config)


def run_ua_sweep(
    machine: MachineSpec,
    workloads: Sequence[Workload],
    schemes: Optional[Sequence[PartitioningScheme]] = None,
    replication_factors: Optional[Sequence[int]] = None,
    mixed_output_replication: bool = False,
    stationary_options: Sequence[str] = ("A", "B", "C"),
    config: Optional[ExecutionConfig] = None,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Run every (workload, scheme, replication, stationary) combination.

    ``mixed_output_replication=True`` additionally sweeps the C replication
    factor independently of A/B (the paper's MLP-2 configurations annotate
    "rep_AB-rep_C" pairs); otherwise one factor is applied to all matrices.

    ``jobs`` fans the configurations over a process pool (each point's
    simulation is side-effect-free through the event engine, so points are
    embarrassingly parallel).  The default (``None``/``0``/``1``) runs
    serially; results are returned in enumeration order either way.
    """
    schemes = list(schemes) if schemes is not None else ua_schemes()
    factors = valid_replication_factors(machine.num_devices, replication_factors)
    tasks: List[Tuple] = []
    for workload in workloads:
        for scheme in schemes:
            for factor in factors:
                c_factors = factors if mixed_output_replication else [factor]
                for c_factor in c_factors:
                    for stationary in stationary_options:
                        tasks.append((machine, workload, scheme,
                                      (factor, factor, c_factor), stationary, config))
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return [_run_ua_point_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(_run_ua_point_task, tasks, chunksize=4))


def best_per_scheme(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Keep the best-performing configuration per (series, batch) — one bar each."""
    best: Dict[Tuple[str, int], SweepPoint] = {}
    for point in points:
        key = (point.series, point.batch)
        if key not in best or point.percent_of_peak > best[key].percent_of_peak:
            best[key] = point
    return sorted(best.values(), key=lambda p: (p.series, p.batch))


# ---------------------------------------------------------------------- #
# comparator series
# ---------------------------------------------------------------------- #
def run_dtensor_series(
    machine: MachineSpec,
    workloads: Sequence[Workload],
    shardings: Sequence[str] = ("row", "column"),
) -> List[SweepPoint]:
    """The "DT - Row" / "DT - Column" series: both operands 1-D sharded, no replication."""
    mesh = DeviceMesh(machine)
    points: List[SweepPoint] = []
    for workload in workloads:
        for sharding in shardings:
            dim = 0 if sharding == "row" else 1
            outcome = simulate_dtensor_matmul(
                mesh, workload.m, workload.n, workload.k, Shard(dim), Shard(dim)
            )
            points.append(
                SweepPoint(
                    series=f"DT - {sharding.capitalize()}",
                    workload=workload.name,
                    batch=workload.m,
                    percent_of_peak=float(outcome["percent_of_peak"]),
                    simulated_time=float(outcome["simulated_time_s"]),
                    stationary=None,
                    replication=(1, 1, 1),
                    extra={"rule": outcome["rule"],
                           "communication_bytes": outcome["communication_bytes"]},
                )
            )
    return points


def run_cosma_series(
    machine: MachineSpec,
    workloads: Sequence[Workload],
    memory_budget_bytes: Optional[float] = None,
) -> List[SweepPoint]:
    """The "COSMA-NCCL" series (paper: unlimited memory budget, overlap off)."""
    algorithm = CosmaLike(memory_budget_bytes=memory_budget_bytes)
    points: List[SweepPoint] = []
    for workload in workloads:
        result = algorithm.simulate(workload.m, workload.n, workload.k, machine)
        points.append(
            SweepPoint(
                series="COSMA-NCCL",
                workload=workload.name,
                batch=workload.m,
                percent_of_peak=result.percent_of_peak,
                simulated_time=result.simulated_time,
                stationary=None,
                replication=(1, 1, 1),
                extra=dict(result.metadata),
            )
        )
    return points


def run_baseline_series(
    machine: MachineSpec,
    workloads: Sequence[Workload],
    algorithms: Sequence[BaselineAlgorithm],
) -> List[SweepPoint]:
    """Series for the classical algorithms (SUMMA, Cannon, 1D, 1.5D, 2.5D)."""
    points: List[SweepPoint] = []
    for workload in workloads:
        for algorithm in algorithms:
            result = algorithm.simulate(workload.m, workload.n, workload.k, machine)
            points.append(
                SweepPoint(
                    series=algorithm.name,
                    workload=workload.name,
                    batch=workload.m,
                    percent_of_peak=result.percent_of_peak,
                    simulated_time=result.simulated_time,
                    stationary=None,
                    replication=(1, 1, 1),
                    extra=dict(result.metadata),
                )
            )
    return points
