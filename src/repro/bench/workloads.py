"""Workload definitions: the matrix shapes the paper evaluates.

Section 5.2.1: the MLP block of a GPT-like transformer applies two linear
layers.  With hidden dimension ``h`` and expansion ratio ``r`` (the paper uses
``h = 12K`` and ``r = 4``):

* MLP-1:  ``m = batch size``, ``n = r*h = 48K``, ``k = h = 12K``
* MLP-2:  ``m = batch size``, ``n = h = 12K``, ``k = r*h = 48K``

Batch sizes swept: 1024, 2048, 4096, 8192.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.structure import (
    DENSE,
    BlockSparse,
    MoERagged,
    WorkloadStructure,
    structure_from_dict,
)
from repro.util.indexing import ceil_div
from repro.util.validation import check_positive_int

#: Schema version of :meth:`Workload.to_dict` payloads.  Version 2 added the
#: ``structure`` field (block-sparse / MoE-ragged workloads); version-1
#: payloads carry no structure and deserialize as dense.
WORKLOAD_SCHEMA_VERSION = 2

#: The paper's hidden dimension ("H=12K").
MLP_HIDDEN = 12 * 1024
#: The paper's MLP expansion ratio ("r is most commonly 4").
MLP_RATIO = 4
#: Batch sizes on the x-axis of Figures 2 and 3.
BATCH_SIZES: Tuple[int, ...] = (1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class Workload:
    """One matrix-multiplication problem ``C[m,n] = A[m,k] @ B[k,n]``.

    ``m``/``n``/``k`` are the *envelope* dimensions; ``structure`` describes
    which parts of the envelope are live (dense by default, block-sparse
    weights, or an MoE-ragged batch).  The envelope drives partitioning and
    worst-case layout while the structure drives flops, traffic, and storage.
    """

    name: str
    m: int
    n: int
    k: int
    structure: WorkloadStructure = field(default=DENSE)

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.k, "k")
        self.structure.validate(self.m, self.n, self.k)

    @property
    def flops(self) -> float:
        """Flops of the dense envelope (the structure-agnostic ceiling)."""
        return 2.0 * self.m * self.n * self.k

    @property
    def effective_flops(self) -> float:
        """Flops actually performed under the workload's structure."""
        return self.structure.effective_flops(self.m, self.n, self.k)

    @property
    def shapes(self) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
        """(A shape, B shape, C shape)."""
        return ((self.m, self.k), (self.k, self.n), (self.m, self.n))

    def scaled(self, factor: float) -> "Workload":
        """Uniformly scaled copy (used by tests to shrink problems)."""
        if not self.structure.is_dense:
            raise ValueError(
                "scaled() only supports dense workloads: block masks and "
                "expert splits do not survive uniform dimension scaling"
            )
        return Workload(
            name=f"{self.name}_x{factor:g}",
            m=max(1, int(self.m * factor)),
            n=max(1, int(self.n * factor)),
            k=max(1, int(self.k * factor)),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by the planner's persistent store)."""
        return {
            "schema": WORKLOAD_SCHEMA_VERSION,
            "name": self.name,
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "structure": self.structure.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Workload":
        """Inverse of :meth:`to_dict` (schema-1 payloads deserialize as dense)."""
        return cls(
            name=str(payload["name"]),
            m=int(payload["m"]),  # type: ignore[arg-type]
            n=int(payload["n"]),  # type: ignore[arg-type]
            k=int(payload["k"]),  # type: ignore[arg-type]
            structure=structure_from_dict(payload.get("structure")),  # type: ignore[arg-type]
        )


def mlp1_workload(batch: int, hidden: int = MLP_HIDDEN, ratio: int = MLP_RATIO) -> Workload:
    """The first MLP multiply: expand the hidden dimension (m=batch, n=r*h, k=h)."""
    return Workload(name=f"mlp1_b{batch}", m=batch, n=ratio * hidden, k=hidden)


def mlp2_workload(batch: int, hidden: int = MLP_HIDDEN, ratio: int = MLP_RATIO) -> Workload:
    """The second MLP multiply: contract back to the hidden size (m=batch, n=h, k=r*h)."""
    return Workload(name=f"mlp2_b{batch}", m=batch, n=hidden, k=ratio * hidden)


def square_workload(size: int) -> Workload:
    """A square problem, used by the classical-baseline comparison (E9)."""
    return Workload(name=f"square_{size}", m=size, n=size, k=size)


def attention_workload(seq: int, head_dim: int = 128) -> Workload:
    """The QK^T score matmul of one attention head: ``S[s,s] = Q[s,d] @ K^T[d,s]``.

    Unlike the paper's MLP shapes this has a *tiny* inner dimension and a
    large square output, which stresses the outer-product end of the design
    space (C is by far the largest matrix and accumulation dominates).
    """
    return Workload(name=f"attn_s{seq}_d{head_dim}", m=seq, n=seq, k=head_dim)


def tall_skinny_workload(rows: int, inner: int = 256, cols: int = 256) -> Workload:
    """A tall-and-skinny problem: very tall A against a small square B.

    Typical of embedding projections and least-squares panels; only the m
    dimension offers parallelism, so row-style partitionings should win.
    """
    return Workload(name=f"tallskinny_{rows}x{inner}x{cols}", m=rows, n=cols, k=inner)


def rectangular_series(base: int = 4096,
                       aspects: Sequence[int] = (1, 2, 4, 8)) -> List[Workload]:
    """Constant-flops problems of increasing rectangularity.

    For aspect ``a`` the shape is ``m = base, n = base*a, k = base/a`` so every
    member performs the same ``2*base**3`` flops while the best partitioning
    family shifts as the problem elongates — a good planner stress series.
    """
    workloads = []
    for aspect in aspects:
        check_positive_int(aspect, "aspect")
        workloads.append(
            Workload(name=f"rect_{base}_a{aspect}", m=base, n=base * aspect,
                     k=max(1, base // aspect))
        )
    return workloads


def block_sparse_workload(
    m: int,
    n: int,
    k: int,
    density: float,
    block_k: int = 64,
    block_n: int = 64,
    seed: int = 0,
    name: Optional[str] = None,
) -> Workload:
    """A GEMM whose ``B`` operand is block-sparse at the given block density.

    The mask is drawn deterministically from ``seed`` with exactly
    ``ceil(density * blocks)`` live blocks, so benchmark grids and property
    tests are reproducible.  ``density=1.0`` yields an all-live mask — the
    structured pricing path, but bit-identical times to the dense envelope.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    k_blocks = ceil_div(k, block_k)
    n_blocks = ceil_div(n, block_n)
    total = k_blocks * n_blocks
    live = max(1, min(total, math.ceil(total * density)))
    rng = random.Random(seed)
    chosen = set(rng.sample(range(total), live))
    mask = tuple(
        tuple((row * n_blocks + col) in chosen for col in range(n_blocks))
        for row in range(k_blocks)
    )
    structure = BlockSparse(block_k=block_k, block_n=block_n, mask=mask)
    label = name or f"bsparse_{m}x{n}x{k}_d{density:g}_s{seed}"
    return Workload(name=label, m=m, n=n, k=k, structure=structure)


def moe_workload(
    num_experts: int,
    capacity: int,
    n: int,
    k: int,
    expert_tokens: Optional[Sequence[int]] = None,
    utilization: float = 0.5,
    seed: int = 0,
    name: Optional[str] = None,
) -> Workload:
    """An MoE-ragged batch: ``num_experts`` groups padded to ``capacity`` rows.

    Pass ``expert_tokens`` for an explicit routing outcome; otherwise a
    deterministic ragged split is drawn from ``seed`` targeting the given
    mean ``utilization`` (every expert in ``[0, capacity]``, at least one
    token overall).  The envelope is ``m = num_experts * capacity``.
    """
    check_positive_int(num_experts, "num_experts")
    check_positive_int(capacity, "capacity")
    if expert_tokens is None:
        if not 0.0 < utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        rng = random.Random(seed)
        mean = utilization * capacity
        tokens = [
            min(capacity, max(0, int(round(rng.uniform(0.0, 2.0 * mean)))))
            for _ in range(num_experts)
        ]
        if sum(tokens) == 0:
            tokens[0] = max(1, int(round(mean)) or 1)
        expert_tokens = tokens
    structure = MoERagged(expert_tokens=tuple(int(t) for t in expert_tokens),
                          capacity=capacity)
    label = name or (f"moe_e{num_experts}_c{capacity}_{n}x{k}"
                     f"_t{structure.total_tokens}_s{seed}")
    return Workload(name=label, m=num_experts * capacity, n=n, k=k,
                    structure=structure)


def mlp1_series(batches: Tuple[int, ...] = BATCH_SIZES, hidden: int = MLP_HIDDEN,
                ratio: int = MLP_RATIO) -> List[Workload]:
    return [mlp1_workload(batch, hidden, ratio) for batch in batches]


def mlp2_series(batches: Tuple[int, ...] = BATCH_SIZES, hidden: int = MLP_HIDDEN,
                ratio: int = MLP_RATIO) -> List[Workload]:
    return [mlp2_workload(batch, hidden, ratio) for batch in batches]
