"""Workload definitions: the matrix shapes the paper evaluates.

Section 5.2.1: the MLP block of a GPT-like transformer applies two linear
layers.  With hidden dimension ``h`` and expansion ratio ``r`` (the paper uses
``h = 12K`` and ``r = 4``):

* MLP-1:  ``m = batch size``, ``n = r*h = 48K``, ``k = h = 12K``
* MLP-2:  ``m = batch size``, ``n = h = 12K``, ``k = r*h = 48K``

Batch sizes swept: 1024, 2048, 4096, 8192.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.util.validation import check_positive_int

#: The paper's hidden dimension ("H=12K").
MLP_HIDDEN = 12 * 1024
#: The paper's MLP expansion ratio ("r is most commonly 4").
MLP_RATIO = 4
#: Batch sizes on the x-axis of Figures 2 and 3.
BATCH_SIZES: Tuple[int, ...] = (1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class Workload:
    """One matrix-multiplication problem ``C[m,n] = A[m,k] @ B[k,n]``."""

    name: str
    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.k, "k")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    @property
    def shapes(self) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
        """(A shape, B shape, C shape)."""
        return ((self.m, self.k), (self.k, self.n), (self.m, self.n))

    def scaled(self, factor: float) -> "Workload":
        """Uniformly scaled copy (used by tests to shrink problems)."""
        return Workload(
            name=f"{self.name}_x{factor:g}",
            m=max(1, int(self.m * factor)),
            n=max(1, int(self.n * factor)),
            k=max(1, int(self.k * factor)),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by the planner's persistent store)."""
        return {"name": self.name, "m": self.m, "n": self.n, "k": self.k}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Workload":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            m=int(payload["m"]),  # type: ignore[arg-type]
            n=int(payload["n"]),  # type: ignore[arg-type]
            k=int(payload["k"]),  # type: ignore[arg-type]
        )


def mlp1_workload(batch: int, hidden: int = MLP_HIDDEN, ratio: int = MLP_RATIO) -> Workload:
    """The first MLP multiply: expand the hidden dimension (m=batch, n=r*h, k=h)."""
    return Workload(name=f"mlp1_b{batch}", m=batch, n=ratio * hidden, k=hidden)


def mlp2_workload(batch: int, hidden: int = MLP_HIDDEN, ratio: int = MLP_RATIO) -> Workload:
    """The second MLP multiply: contract back to the hidden size (m=batch, n=h, k=r*h)."""
    return Workload(name=f"mlp2_b{batch}", m=batch, n=hidden, k=ratio * hidden)


def square_workload(size: int) -> Workload:
    """A square problem, used by the classical-baseline comparison (E9)."""
    return Workload(name=f"square_{size}", m=size, n=size, k=size)


def attention_workload(seq: int, head_dim: int = 128) -> Workload:
    """The QK^T score matmul of one attention head: ``S[s,s] = Q[s,d] @ K^T[d,s]``.

    Unlike the paper's MLP shapes this has a *tiny* inner dimension and a
    large square output, which stresses the outer-product end of the design
    space (C is by far the largest matrix and accumulation dominates).
    """
    return Workload(name=f"attn_s{seq}_d{head_dim}", m=seq, n=seq, k=head_dim)


def tall_skinny_workload(rows: int, inner: int = 256, cols: int = 256) -> Workload:
    """A tall-and-skinny problem: very tall A against a small square B.

    Typical of embedding projections and least-squares panels; only the m
    dimension offers parallelism, so row-style partitionings should win.
    """
    return Workload(name=f"tallskinny_{rows}x{inner}x{cols}", m=rows, n=cols, k=inner)


def rectangular_series(base: int = 4096,
                       aspects: Sequence[int] = (1, 2, 4, 8)) -> List[Workload]:
    """Constant-flops problems of increasing rectangularity.

    For aspect ``a`` the shape is ``m = base, n = base*a, k = base/a`` so every
    member performs the same ``2*base**3`` flops while the best partitioning
    family shifts as the problem elongates — a good planner stress series.
    """
    workloads = []
    for aspect in aspects:
        check_positive_int(aspect, "aspect")
        workloads.append(
            Workload(name=f"rect_{base}_a{aspect}", m=base, n=base * aspect,
                     k=max(1, base // aspect))
        )
    return workloads


def mlp1_series(batches: Tuple[int, ...] = BATCH_SIZES, hidden: int = MLP_HIDDEN,
                ratio: int = MLP_RATIO) -> List[Workload]:
    return [mlp1_workload(batch, hidden, ratio) for batch in batches]


def mlp2_series(batches: Tuple[int, ...] = BATCH_SIZES, hidden: int = MLP_HIDDEN,
                ratio: int = MLP_RATIO) -> List[Workload]:
    return [mlp2_workload(batch, hidden, ratio) for batch in batches]
