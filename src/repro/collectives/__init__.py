"""Collective communication: analytic time models and one-sided implementations.

The universal algorithm itself needs only one-sided primitives, but its
comparators do not: PyTorch DTensor dispatches to collective-based matmul
rules (all-gather / all-reduce / reduce-scatter), and the classical baselines
(SUMMA, Cannon, 2.5D, COSMA) are formulated with broadcasts and reductions.
This package provides

* :mod:`repro.collectives.models` — ring-algorithm time models priced on the
  same machine model as everything else, and
* :mod:`repro.collectives.ops` — actual data-movement implementations built
  from the runtime's one-sided primitives, used by the correctness tests of
  the baselines and the DTensor-like comparator.
"""

from repro.collectives.models import (
    CollectiveModel,
    allgather_time,
    allreduce_time,
    alltoall_time,
    broadcast_time,
    reduce_scatter_time,
)
from repro.collectives.ops import (
    allgather,
    allreduce,
    broadcast,
    reduce_scatter,
)

__all__ = [
    "CollectiveModel",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "broadcast_time",
    "reduce_scatter_time",
    "allgather",
    "allreduce",
    "broadcast",
    "reduce_scatter",
]
