"""Analytic time models for collective operations.

Ring-algorithm cost formulas are used throughout, matching what NCCL and
oneCCL implement for large messages on fully connected intra-node fabrics:

* broadcast (pipelined ring): ``(g-1) * latency + nbytes / bandwidth``
* all-gather / reduce-scatter: ``(g-1) * latency + (g-1)/g * total_bytes / bandwidth``
* all-reduce: reduce-scatter followed by all-gather, i.e. twice the above.

``bandwidth`` is the slowest link between any two members of the group (the
ring's bottleneck), and latency is charged once per ring step.  These models
are intentionally simple — they are the comparator's cost, not the paper's
contribution — but they use exactly the same machine description as the
one-sided algorithm so the comparison is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.topology.machines import MachineSpec


def _group_bandwidth_latency(machine: MachineSpec, ranks: Sequence[int]) -> tuple[float, float]:
    """Bottleneck bandwidth and typical latency among a group of ranks."""
    ranks = list(ranks)
    if len(ranks) <= 1:
        return machine.memory_bandwidth, 0.0
    topology = machine.topology
    bandwidth = min(
        topology.bandwidth(src, dst)
        for src in ranks
        for dst in ranks
        if src != dst
    )
    latency = max(
        topology.latency(src, dst)
        for src in ranks
        for dst in ranks
        if src != dst
    )
    return bandwidth, latency


def broadcast_time(machine: MachineSpec, ranks: Sequence[int], nbytes: int) -> float:
    """Pipelined ring broadcast of ``nbytes`` from one member to the rest."""
    group = len(list(ranks))
    if group <= 1 or nbytes <= 0:
        return 0.0
    bandwidth, latency = _group_bandwidth_latency(machine, ranks)
    return (group - 1) * latency + nbytes / bandwidth


def allgather_time(machine: MachineSpec, ranks: Sequence[int], total_bytes: int) -> float:
    """Ring all-gather where the *concatenated* result is ``total_bytes``."""
    group = len(list(ranks))
    if group <= 1 or total_bytes <= 0:
        return 0.0
    bandwidth, latency = _group_bandwidth_latency(machine, ranks)
    return (group - 1) * latency + (group - 1) / group * total_bytes / bandwidth


def reduce_scatter_time(machine: MachineSpec, ranks: Sequence[int], total_bytes: int) -> float:
    """Ring reduce-scatter over a buffer of ``total_bytes`` per member."""
    return allgather_time(machine, ranks, total_bytes)


def allreduce_time(machine: MachineSpec, ranks: Sequence[int], nbytes: int) -> float:
    """Ring all-reduce (reduce-scatter + all-gather) of ``nbytes`` per member."""
    group = len(list(ranks))
    if group <= 1 or nbytes <= 0:
        return 0.0
    bandwidth, latency = _group_bandwidth_latency(machine, ranks)
    return 2 * ((group - 1) * latency + (group - 1) / group * nbytes / bandwidth)


def alltoall_time(machine: MachineSpec, ranks: Sequence[int], nbytes_per_pair: float) -> float:
    """Pairwise-exchange all-to-all with ``nbytes_per_pair`` between each pair."""
    group = len(list(ranks))
    if group <= 1 or nbytes_per_pair <= 0:
        return 0.0
    bandwidth, latency = _group_bandwidth_latency(machine, ranks)
    return (group - 1) * (latency + nbytes_per_pair / bandwidth)


@dataclass(frozen=True)
class CollectiveModel:
    """Object-oriented facade bound to one machine (convenient for comparators)."""

    machine: MachineSpec

    def broadcast(self, ranks: Sequence[int], nbytes: int) -> float:
        return broadcast_time(self.machine, ranks, nbytes)

    def allgather(self, ranks: Sequence[int], total_bytes: int) -> float:
        return allgather_time(self.machine, ranks, total_bytes)

    def reduce_scatter(self, ranks: Sequence[int], total_bytes: int) -> float:
        return reduce_scatter_time(self.machine, ranks, total_bytes)

    def allreduce(self, ranks: Sequence[int], nbytes: int) -> float:
        return allreduce_time(self.machine, ranks, nbytes)

    def alltoall(self, ranks: Sequence[int], nbytes_per_pair: float) -> float:
        return alltoall_time(self.machine, ranks, nbytes_per_pair)
