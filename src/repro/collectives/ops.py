"""Collective operations implemented with the runtime's one-sided primitives.

These are *functional* implementations used by the baseline algorithms and
the DTensor-like comparator in correctness tests; their time is estimated by
:mod:`repro.collectives.models`, not by the byte-counting traffic of these
routines (which intentionally use the simplest correct data movement).

All functions operate on plain NumPy arrays held per rank, expressed as a
dict ``{rank: array}``, which keeps them independent from the distributed
matrix layer and easy to reason about in tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.runtime.runtime import Runtime


def broadcast(
    runtime: Runtime,
    buffers: Dict[int, np.ndarray],
    ranks: Sequence[int],
    root: int,
) -> Dict[int, np.ndarray]:
    """Broadcast the root's buffer to every rank in the group (one-sided puts)."""
    ranks = list(ranks)
    if root not in ranks:
        raise ValueError(f"root {root} is not a member of the group {ranks}")
    source = np.asarray(buffers[root])
    handle = runtime.allocate(source.shape, dtype=source.dtype, label="bcast")
    runtime.put(handle, root, source, initiator=root)
    out: Dict[int, np.ndarray] = {}
    for rank in ranks:
        if rank == root:
            out[rank] = source.copy()
        else:
            out[rank] = runtime.get(handle, root, initiator=rank)
    runtime.free(handle)
    return out


def allgather(
    runtime: Runtime,
    buffers: Dict[int, np.ndarray],
    ranks: Sequence[int],
    axis: int = 0,
) -> Dict[int, np.ndarray]:
    """Concatenate every member's buffer along ``axis`` on every member."""
    ranks = list(ranks)
    handles = {}
    for rank in ranks:
        array = np.asarray(buffers[rank])
        handle = runtime.allocate_on([rank], array.shape, dtype=array.dtype,
                                     label=f"allgather:{rank}")
        runtime.put(handle, rank, array, initiator=rank)
        handles[rank] = handle
    out: Dict[int, np.ndarray] = {}
    for rank in ranks:
        pieces = []
        for source in ranks:
            if source == rank:
                pieces.append(np.asarray(buffers[source]))
            else:
                pieces.append(runtime.get(handles[source], source, initiator=rank))
        out[rank] = np.concatenate(pieces, axis=axis)
    for handle in handles.values():
        runtime.free(handle)
    return out


def allreduce(
    runtime: Runtime,
    buffers: Dict[int, np.ndarray],
    ranks: Sequence[int],
) -> Dict[int, np.ndarray]:
    """Sum every member's buffer; every member receives the total."""
    ranks = list(ranks)
    root = ranks[0]
    shape = np.asarray(buffers[root]).shape
    dtype = np.asarray(buffers[root]).dtype
    handle = runtime.allocate(shape, dtype=dtype, label="allreduce", fill=0.0)
    for rank in ranks:
        runtime.accumulate(handle, root, np.asarray(buffers[rank]), initiator=rank)
    out: Dict[int, np.ndarray] = {}
    for rank in ranks:
        out[rank] = runtime.get(handle, root, initiator=rank)
    runtime.free(handle)
    return out


def reduce_scatter(
    runtime: Runtime,
    buffers: Dict[int, np.ndarray],
    ranks: Sequence[int],
    axis: int = 0,
) -> Dict[int, np.ndarray]:
    """Sum every member's buffer and scatter equal chunks along ``axis``."""
    ranks = list(ranks)
    reduced = allreduce(runtime, buffers, ranks)
    out: Dict[int, np.ndarray] = {}
    for position, rank in enumerate(ranks):
        chunks = np.array_split(reduced[rank], len(ranks), axis=axis)
        out[rank] = np.ascontiguousarray(chunks[position])
    return out
