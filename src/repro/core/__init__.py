"""The universal one-sided distributed matrix multiplication algorithm.

This package is the paper's primary contribution: op generation by slicing
(Algorithms 1-2 plus the Stationary-A variant), the direct execution engine
with the Section 4.2 optimisations, the computation-graph/IR lowering path of
Section 4.3, the cost model, and the :func:`universal_matmul` entry point.
"""

from repro.core.config import ExecutionConfig, ExecutionMode, LoweringStrategy
from repro.core.cost_model import CostModel, GemmShapeModel
from repro.core.structure import (
    DENSE,
    BlockSparse,
    Dense,
    MoERagged,
    WorkloadStructure,
    structure_from_dict,
)
from repro.core.ops import LocalMatmulOp, OperandRef
from repro.core.result import ExecutionResult, RankStats
from repro.core.stationary import (
    Stationary,
    choose_stationary_by_cost,
    choose_stationary_by_size,
    estimate_all_strategies,
    parse_stationary,
)
from repro.core.slicing import (
    apply_iteration_offset,
    check_coverage,
    generate_all_ops,
    generate_local_ops,
    generate_stationary_a_ops,
    generate_stationary_b_ops,
    generate_stationary_c_ops,
)
from repro.core.graph import ComputationGraph, DataNode
from repro.core.ir import IRCommOp, IRComputeOp, IRProgram, IRStep
from repro.core.lowering import lower_all_ranks, lower_to_ir
from repro.core.direct import DirectExecutor
from repro.core.schedule_sim import IRExecutor, estimate_program_time
from repro.core.matmul import plan_ops, universal_matmul

__all__ = [
    "ExecutionConfig",
    "ExecutionMode",
    "LoweringStrategy",
    "CostModel",
    "GemmShapeModel",
    "DENSE",
    "BlockSparse",
    "Dense",
    "MoERagged",
    "WorkloadStructure",
    "structure_from_dict",
    "LocalMatmulOp",
    "OperandRef",
    "ExecutionResult",
    "RankStats",
    "Stationary",
    "choose_stationary_by_cost",
    "choose_stationary_by_size",
    "estimate_all_strategies",
    "parse_stationary",
    "apply_iteration_offset",
    "check_coverage",
    "generate_all_ops",
    "generate_local_ops",
    "generate_stationary_a_ops",
    "generate_stationary_b_ops",
    "generate_stationary_c_ops",
    "ComputationGraph",
    "DataNode",
    "IRCommOp",
    "IRComputeOp",
    "IRProgram",
    "IRStep",
    "lower_all_ranks",
    "lower_to_ir",
    "DirectExecutor",
    "IRExecutor",
    "estimate_program_time",
    "plan_ops",
    "universal_matmul",
]
