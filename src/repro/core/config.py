"""Execution configuration for the universal algorithm.

These knobs correspond to the optimisations described in Section 4.2 of the
paper (iteration offset, prefetching, bounded asynchrony, memory pool) plus
the choice between direct execution and lowering to the optimized IR
(Section 4.3).  Defaults follow the paper's settings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class ExecutionMode(enum.Enum):
    """How the generated op list is executed."""

    #: Execute ops in order with prefetch + async overlap (paper §4.2).
    DIRECT = "direct"
    #: Build the computation graph and lower to an explicit IR schedule (paper §4.3).
    IR = "ir"


class LoweringStrategy(enum.Enum):
    """How the IR schedule is chosen when ``ExecutionMode.IR`` is used."""

    #: Fill each IR op greedily up to the concurrency limits.
    GREEDY = "greedy"
    #: Greedy, but pick which compute/comm to schedule using the cost model.
    COST_GREEDY = "cost_greedy"
    #: Exhaustively search over schedules with the cost model (small problems only).
    EXHAUSTIVE = "exhaustive"


@dataclass(frozen=True)
class ExecutionConfig:
    """Tunable parameters of the execution engines."""

    mode: ExecutionMode = ExecutionMode.DIRECT
    lowering: LoweringStrategy = LoweringStrategy.GREEDY

    #: Apply the iteration offset (sum of stationary-tile indices) to the op
    #: order so that processes in the same row/column do not fetch the same
    #: remote tile simultaneously (paper §4.2, first optimisation).
    iteration_offset: bool = True

    #: Number of upcoming tiles fetched ahead with ``get_tile_async``
    #: (paper §4.2, second optimisation; the paper prefetches the next two).
    prefetch_depth: int = 2

    #: Allow GEMMs and accumulates from different iterations to run
    #: concurrently (paper §4.2, third optimisation).
    async_execution: bool = True

    #: Upper bounds on in-flight asynchronous work (higher = more overlap,
    #: more temporary memory).
    max_concurrent_gemms: int = 4
    max_concurrent_accumulates: int = 4

    #: Reuse temporary tile buffers through the per-rank memory pool
    #: (paper §4.2, fourth optimisation).
    use_memory_pool: bool = True

    #: Reuse a remote tile already fetched earlier in the same op list rather
    #: than fetching it again (a rank owning several stationary tiles may
    #: need the same remote operand tile more than once).
    cache_remote_tiles: bool = True

    #: Maximum number of schedules examined by the exhaustive-search lowering
    #: before it falls back to the cost-greedy result.
    exhaustive_search_limit: int = 20000

    #: Verify invariants (op coverage, bound consistency) while generating
    #: ops.  Costs a little time; invaluable when developing new partitionings.
    validate_ops: bool = False

    #: Skip all real data movement and arithmetic and only build the modelled
    #: timeline.  This is what lets the benchmark harness sweep paper-scale
    #: problems (tens of GB of operands) on a laptop: the modelled time
    #: depends only on the op lists and the machine model, never on values.
    #: Requires the operands to have been created with ``materialize=False``
    #: or simply leaves their contents untouched.
    simulate_only: bool = False

    def __post_init__(self) -> None:
        if self.prefetch_depth < 0:
            raise ValueError(f"prefetch_depth must be >= 0, got {self.prefetch_depth}")
        if self.max_concurrent_gemms < 1:
            raise ValueError("max_concurrent_gemms must be >= 1")
        if self.max_concurrent_accumulates < 1:
            raise ValueError("max_concurrent_accumulates must be >= 1")
        if self.exhaustive_search_limit < 1:
            raise ValueError("exhaustive_search_limit must be >= 1")

    def evolve(self, **changes) -> "ExecutionConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @staticmethod
    def synchronous() -> "ExecutionConfig":
        """A configuration with every overlap optimisation disabled (ablation baseline)."""
        return ExecutionConfig(
            iteration_offset=False,
            prefetch_depth=0,
            async_execution=False,
            max_concurrent_gemms=1,
            max_concurrent_accumulates=1,
            use_memory_pool=False,
            cache_remote_tiles=False,
        )
