"""Cost model: roofline compute estimates plus bandwidth-based communication.

Section 4.3 of the paper: "The computation cost we estimate using a simple
Roofline model based on the matrix tile size as well as our GPU's arithmetic
peak and memory bandwidth peak.  Communication cost we can estimate by taking
the number of bytes that must be fetched in each communication operation and
dividing it by the bandwidth available between the process and remote tile."

The same model serves three purposes in this library:

1. choosing a data-movement strategy (Stationary A/B/C),
2. driving the cost-model-based IR lowerings, and
3. pricing every event in the execution simulators so that benchmarks can
   report percent-of-peak numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.structure import ROLE_A, ROLE_B, WorkloadStructure, resolve_structure
from repro.topology.machines import MachineSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ExecutionConfig
    from repro.core.ops import LocalMatmulOp
    from repro.dist.matrix import DistributedMatrix

#: Version of the pricing rules below.  Bump whenever a formula, calibration
#: constant, or engine discipline changes in a way that can move simulated
#: times: the persistent plan store invalidates entries stamped with a
#: different fingerprint, so stale plans are never served after a model change.
COST_MODEL_VERSION = 1


@dataclass(frozen=True)
class GemmShapeModel:
    """Shape-dependent efficiency of a local GEMM.

    GPUs lose efficiency when any GEMM dimension is small (underfilled
    compute tiles, low occupancy).  The paper leans on this effect twice: the
    column-block partitioning beats inner-product despite equal communication
    because its local GEMMs are better shaped, and replication helps the
    outer-product partitioning because it enlarges per-replica tiles.  We
    model the effect with a saturating factor per dimension:
    ``dim / (dim + half_size)`` so tiny dimensions are heavily penalised and
    large dimensions approach 1.  The half sizes are calibrated so that a
    dimension of a few hundred elements already runs near full efficiency,
    which is roughly where vendor GEMM libraries saturate for FP32.
    """

    m_half: float = 64.0
    n_half: float = 64.0
    k_half: float = 64.0

    def efficiency(self, m: int, n: int, k: int) -> float:
        if m <= 0 or n <= 0 or k <= 0:
            return 1.0
        factor_m = m / (m + self.m_half)
        factor_n = n / (n + self.n_half)
        factor_k = k / (k + self.k_half)
        return factor_m * factor_n * factor_k


class CostModel:
    """Prices compute, communication, and accumulation on a given machine."""

    def __init__(self, machine: MachineSpec, shape_model: GemmShapeModel | None = None) -> None:
        self.machine = machine
        self.topology = machine.topology
        self.shape_model = shape_model or GemmShapeModel()

    def fingerprint(self) -> str:
        """Stable digest of the pricing rules (version + calibration constants).

        Deliberately excludes the machine: plan-cache keys already carry the
        machine fingerprint, while this digest answers a different question —
        "were these cached times produced by the same cost model build?" —
        which is what the persistent plan store checks on load.
        """
        blob = "|".join(
            repr(part)
            for part in (
                COST_MODEL_VERSION,
                self.shape_model.m_half,
                self.shape_model.n_half,
                self.shape_model.k_half,
            )
        )
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]

    # ------------------------------------------------------------------ #
    # compute
    # ------------------------------------------------------------------ #
    def gemm_time(self, m: int, n: int, k: int, itemsize: int = 4) -> float:
        """Roofline estimate of one local GEMM of shape (m x k) @ (k x n)."""
        if m <= 0 or n <= 0 or k <= 0:
            return 0.0
        flops = 2.0 * m * n * k
        bytes_touched = float(itemsize) * (m * k + k * n + 2 * m * n)
        efficiency = self.machine.gemm_efficiency * self.shape_model.efficiency(m, n, k)
        compute_time = flops / (self.machine.flops_peak * max(efficiency, 1.0e-3))
        memory_time = bytes_touched / self.machine.memory_bandwidth
        return max(compute_time, memory_time) + self.machine.kernel_launch_overhead

    def local_accumulate_time(self, nbytes: int) -> float:
        """Time to add a temporary result into a locally owned tile (memory bound)."""
        if nbytes <= 0:
            return 0.0
        # read partial + read/write destination
        return 3.0 * nbytes / self.machine.memory_bandwidth + self.machine.kernel_launch_overhead

    # ------------------------------------------------------------------ #
    # communication
    # ------------------------------------------------------------------ #
    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Time for a one-sided get/put of ``nbytes`` from ``src`` to ``dst``."""
        if nbytes <= 0 or src == dst:
            return 0.0
        return self.topology.transfer_time(src, dst, nbytes)

    def device_link_time(self, nbytes: int, accumulate: bool = False) -> float:
        """Occupancy of a device's aggregate ingress/egress capacity for ``nbytes``.

        The paper's Table 2 quotes per-device unidirectional link bandwidth;
        all traffic entering or leaving one device shares it, which is what
        makes many-to-one fan-in (remote accumulates into one C owner) and
        one-to-many fan-out (everyone fetching the same tile) serialise.
        """
        if nbytes <= 0:
            return 0.0
        time = nbytes / self.machine.device_link_bandwidth
        if accumulate:
            time /= max(self.machine.accumulate_efficiency, 1.0e-6)
        return time

    def accumulate_time(self, src: int, dst: int, nbytes: int) -> float:
        """Time for a one-sided remote accumulate.

        Remote accumulates run as a kernel on the initiating device (hence the
        launch overhead) and reach only ``accumulate_efficiency`` of the copy
        bandwidth (the paper measures ~80% on PVC).
        """
        if nbytes <= 0 or src == dst:
            return 0.0
        latency = self.topology.latency(src, dst)
        payload = self.topology.transfer_time(src, dst, nbytes) - latency
        return (
            self.machine.kernel_launch_overhead
            + latency
            + payload / max(self.machine.accumulate_efficiency, 1.0e-6)
        )

    # ------------------------------------------------------------------ #
    # op-level helpers
    # ------------------------------------------------------------------ #
    def op_compute_time(self, op: "LocalMatmulOp") -> float:
        return self.gemm_time(op.m, op.n, op.k, op.itemsize)

    def structured_op_compute_time(
        self,
        op: "LocalMatmulOp",
        structure: Optional[WorkloadStructure],
        fractions: Optional[Tuple[float, float, float, float]] = None,
    ) -> float:
        """Roofline time of one op's *live* GEMM under a workload structure.

        Dense structures fall through to :meth:`op_compute_time` untouched
        (bit-exact with the historical pricing).  Otherwise flops and bytes
        are scaled by the live fractions of the op's global cuboid, and the
        shape-efficiency term is evaluated at the live effective dimensions —
        a ragged expert batch really runs a skinnier, less efficient GEMM.
        Every scale factor is in ``[0, 1]``, so a structured op never prices
        above its dense envelope (the dominance the planner's bounds and the
        property harness rely on).

        ``fractions`` is the op's ``structure.op_fractions(...)`` tuple when
        the caller already computed it (the executor and the occupancy bound
        both need the C fraction too) — passing it avoids a second scan of
        the mask/raggedness geometry.
        """
        if structure is None or structure.is_dense:
            return self.op_compute_time(op)
        if fractions is None:
            fractions = structure.op_fractions(op.m_bound, op.k_bound, op.n_bound)
        flops_frac, a_frac, b_frac, c_frac = fractions
        if flops_frac <= 0.0:
            return 0.0
        m, n, k = op.m, op.n, op.k
        flops = 2.0 * m * n * k * flops_frac
        bytes_touched = float(op.itemsize) * (
            a_frac * (m * k) + b_frac * (k * n) + 2.0 * c_frac * (m * n)
        )
        m_eff, n_eff, k_eff = structure.gemm_dims(op.m_bound, op.k_bound,
                                                  op.n_bound, flops_frac)
        efficiency = self.machine.gemm_efficiency * self.shape_model.efficiency(
            m_eff, n_eff, k_eff
        )
        compute_time = flops / (self.machine.flops_peak * max(efficiency, 1.0e-3))
        memory_time = bytes_touched / self.machine.memory_bandwidth
        return max(compute_time, memory_time) + self.machine.kernel_launch_overhead

    def op_fetch_time(self, op: "LocalMatmulOp") -> float:
        """Time to fetch the (whole) remote tiles the op depends on."""
        total = 0.0
        if op.a_is_remote:
            total += self.transfer_time(op.a.owner, op.rank, op.a_bytes)
        if op.b_is_remote:
            total += self.transfer_time(op.b.owner, op.rank, op.b_bytes)
        return total

    def op_accumulate_time(self, op: "LocalMatmulOp") -> float:
        if op.c_is_remote:
            return self.accumulate_time(op.rank, op.c.owner, op.c_bytes)
        return self.local_accumulate_time(op.c_bytes)

    # ------------------------------------------------------------------ #
    # schedule-level estimates
    # ------------------------------------------------------------------ #
    def estimate_op_list(self, ops: Sequence["LocalMatmulOp"]) -> float:
        """Optimistic overlap-aware estimate of one rank's execution time.

        Communication and computation overlap perfectly in the limit, so the
        rank needs at least ``max(total_compute, total_fetch)``; remote
        accumulates ride on a separate engine and add the same way; a small
        serial term accounts for the pipeline fill of the first fetch.
        """
        if not ops:
            return 0.0
        compute = sum(self.op_compute_time(op) for op in ops)
        fetch = sum(self.op_fetch_time(op) for op in ops)
        accumulate = sum(
            self.accumulate_time(op.rank, op.c.owner, op.c_bytes)
            for op in ops
            if op.c_is_remote
        )
        local_accumulate = sum(
            self.local_accumulate_time(op.c_bytes) for op in ops if not op.c_is_remote
        )
        pipeline_fill = self.op_fetch_time(ops[0])
        return max(compute + local_accumulate, fetch, accumulate) + pipeline_fill

    def estimate_op_lists(self, per_rank_ops: Mapping[int, Sequence["LocalMatmulOp"]]) -> float:
        """Estimated makespan: the slowest rank's estimate."""
        if not per_rank_ops:
            return 0.0
        return max(self.estimate_op_list(ops) for ops in per_rank_ops.values())

    # ------------------------------------------------------------------ #
    # admissible lower bounds (planner pruning)
    # ------------------------------------------------------------------ #
    def direct_lower_bound(
        self,
        a: "DistributedMatrix",
        b: "DistributedMatrix",
        c: "DistributedMatrix",
        per_rank_ops: Mapping[int, Sequence["LocalMatmulOp"]],
        cache_remote_tiles: bool = True,
        structure: Optional[WorkloadStructure] = None,
    ) -> float:
        """A lower bound on the direct executor's makespan for these op lists.

        Unlike :meth:`estimate_op_lists` (a prediction that may over- or
        undershoot), this is *admissible*: it never exceeds the simulated
        makespan, so the planner can prune a candidate whose bound already
        beats the incumbent without risking a wrong answer.  The argument is
        engine occupancy: the direct executor reserves, per device,

        * every GEMM and local accumulate on the compute engine,
        * every remote-tile fetch on the reader's copy engine (deduplicated
          when ``cache_remote_tiles`` is on, exactly as the executor does),
        * every remote accumulate on the initiator's accumulate engine,
        * the shared ingress (accumulate fan-in) and egress (fetch fan-out)
          occupancies on the destination/source device,

        and engine reservations never overlap, so each device finishes no
        earlier than any single engine's summed occupancy.  The makespan is
        the slowest device, hence the max-of-max below.

        ``structure`` scales every term exactly as the executor's event
        stream does (live tile bytes, live accumulate bytes, live GEMM
        work), so the bound stays admissible on block-sparse and MoE-ragged
        workloads; pass the same *filtered* op lists the executor runs.
        """
        structure = resolve_structure(structure)
        num_devices = self.machine.num_devices
        compute = [0.0] * num_devices
        copy = [0.0] * num_devices
        accumulate = [0.0] * num_devices
        ingress = [0.0] * num_devices
        egress = [0.0] * num_devices
        tile_bytes: Dict[tuple, float] = {}

        def full_tile_bytes(label: str, matrix, tile_idx) -> float:
            key = (label, tile_idx)
            if key not in tile_bytes:
                bounds = matrix.tile_bounds(tile_idx)
                nbytes = bounds.size * matrix.dtype.itemsize
                if structure is not None:
                    nbytes *= structure.live_fraction(label, bounds.rows, bounds.cols)
                tile_bytes[key] = nbytes
            return tile_bytes[key]

        for rank, ops in per_rank_ops.items():
            fetched: set = set()
            for op in ops:
                if structure is None:
                    fractions = None
                    c_bytes = op.c_bytes
                else:
                    fractions = structure.op_fractions(op.m_bound, op.k_bound,
                                                       op.n_bound)
                    c_bytes = op.c_bytes * fractions[3]
                compute[rank] += self.structured_op_compute_time(op, structure,
                                                                 fractions)
                if op.c_is_remote:
                    accumulate[rank] += self.accumulate_time(rank, op.c.owner, c_bytes)
                    ingress[op.c.owner] += self.device_link_time(c_bytes, accumulate=True)
                else:
                    compute[rank] += self.local_accumulate_time(c_bytes)
                for label, matrix, ref in ((ROLE_A, a, op.a), (ROLE_B, b, op.b)):
                    if ref.owner == rank:
                        continue
                    cache_key = (label, ref.replica, ref.index)
                    if cache_remote_tiles and cache_key in fetched:
                        continue
                    fetched.add(cache_key)
                    nbytes = full_tile_bytes(label, matrix, ref.index)
                    copy[rank] += self.transfer_time(ref.owner, rank, nbytes)
                    egress[ref.owner] += self.device_link_time(nbytes)

        per_device = (
            max(compute[d], copy[d], accumulate[d], ingress[d], egress[d])
            for d in range(num_devices)
        )
        return max(per_device, default=0.0)

    def critical_path_lower_bound(
        self,
        a: "DistributedMatrix",
        b: "DistributedMatrix",
        c: "DistributedMatrix",
        per_rank_ops: Mapping[int, Sequence["LocalMatmulOp"]],
        config: Optional["ExecutionConfig"] = None,
        structure: Optional[WorkloadStructure] = None,
    ) -> float:
        """A critical-path lower bound on the direct executor's makespan.

        Replays the executor's exact event stream — same ops, same order,
        same per-rank fetch/gemm/accumulate dependency chains and engine
        queues — on a *relaxed* engine with every cross-device floor (egress
        slots, ingress slots, link occupancy) removed.  Every constraint the
        relaxed engine enforces is also enforced by the contended engine on
        the identical emission sequence, so by induction every relaxed event
        starts (and ends) no later than its contended counterpart and the
        relaxed makespan is admissible.

        Unlike :meth:`direct_lower_bound`, which sees each engine's summed
        occupancy in isolation, the relaxed schedule sees cross-engine
        dependency chains — a rank that must *fetch before it can GEMM before
        it can accumulate* pays the chain even when no single engine is
        saturated — which makes this bound strictly tighter on
        communication-bound problems.  The per-engine occupancy bound is
        still taken as a floor (it can win when contention terms the relaxed
        engine drops, e.g. many-to-one ingress fan-in, dominate).

        ``per_rank_ops`` must be in *execution* order: apply the iteration
        offset before calling when the config enables it, exactly as
        :func:`repro.core.matmul.universal_matmul` does.
        """
        from repro.core.config import ExecutionConfig
        from repro.core.direct import DirectExecutor
        from repro.sim.engine import EventEngine

        config = config or ExecutionConfig(simulate_only=True)
        if not config.simulate_only:
            config = config.evolve(simulate_only=True)
        engine = EventEngine(self.machine.num_devices, contention=False)
        executor = DirectExecutor(a, b, c, self, config=config, engine=engine,
                                  structure=structure)
        executor.execute({rank: list(ops) for rank, ops in per_rank_ops.items()})
        occupancy = self.direct_lower_bound(
            a, b, c, per_rank_ops, cache_remote_tiles=config.cache_remote_tiles,
            structure=structure,
        )
        return max(engine.makespan(), occupancy)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def percent_of_peak(self, total_flops: float, elapsed: float) -> float:
        """Achieved fraction of the machine's aggregate FP32 peak, as a percentage."""
        if elapsed <= 0.0:
            return 0.0
        achieved = total_flops / elapsed
        return 100.0 * achieved / self.machine.total_peak()
