"""Direct execution of the generated op lists (paper Section 4.2).

The direct executor walks each rank's op list in order and, for every op,

1. obtains local copies of the A and B tiles (a view when local, a one-sided
   ``get_tile`` otherwise, prefetched ``prefetch_depth`` iterations ahead),
2. runs the local GEMM on the relevant slices,
3. accumulates the result into the C tile — in place when local, with a
   one-sided ``accumulate_tile`` when remote.

Two things happen at once here: the *data* path really moves NumPy buffers
through the PGAS runtime (so results are bit-exact checkable against
``A @ B``), and the *time* path emits typed fetch/gemm/accumulate events to
the :class:`~repro.sim.engine.EventEngine`, which owns every engine timeline
and all link contention.  The interleaved, step-by-step walk over ranks makes
contention for shared links emerge naturally, which is exactly the effect the
paper's iteration offset exists to mitigate.

This class is a *front-end*: it decides what happens and in which order, but
never charges time itself.  Handing it a relaxed engine
(``EventEngine(contention=False)``) therefore replays the identical event
stream without cross-device floors — the relaxation behind the planner's
critical-path lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.core.ops import LocalMatmulOp
from repro.core.result import RankStats
from repro.core.structure import WorkloadStructure, resolve_structure
from repro.dist.matrix import DistributedMatrix
from repro.runtime.clock import ACCUMULATE, COMPUTE, COPY
from repro.sim.engine import EventEngine
from repro.sim.events import ScheduledEvent
from repro.util.logging import get_logger

logger = get_logger("core.direct")

_MATRIX_A = "A"
_MATRIX_B = "B"


@dataclass
class _FetchedTile:
    """A tile held locally for the duration of (at least) one op."""

    data: np.ndarray
    ready_time: float
    event: Optional[ScheduledEvent] = None
    from_pool: bool = False


@dataclass
class _RankState:
    """Mutable per-rank execution state used by the interleaved walk."""

    rank: int
    ops: List[LocalMatmulOp]
    next_prefetch: int = 0
    fetched: Dict[Tuple[str, int], _FetchedTile] = field(default_factory=dict)
    cache: Dict[Tuple[str, int, Tuple[int, int]], _FetchedTile] = field(default_factory=dict)
    gemm_events: List[ScheduledEvent] = field(default_factory=list)
    accumulate_events: List[ScheduledEvent] = field(default_factory=list)
    stats: RankStats = None  # type: ignore[assignment]


class DirectExecutor:
    """Executes per-rank op lists with the paper's direct-execution optimisations."""

    def __init__(
        self,
        a: DistributedMatrix,
        b: DistributedMatrix,
        c: DistributedMatrix,
        cost_model: CostModel,
        config: Optional[ExecutionConfig] = None,
        engine: Optional[EventEngine] = None,
        structure: Optional[WorkloadStructure] = None,
    ) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.runtime = a.runtime
        self.cost_model = cost_model
        self.config = config or ExecutionConfig()
        self.engine = engine or EventEngine(self.runtime.num_ranks)
        self.clock = self.engine.clock
        # Normalized to None for dense so the hot path stays the historical
        # arithmetic (bit-exact with the committed snapshots); non-dense
        # structures scale every emitted event by its live fraction.
        self.structure = resolve_structure(structure)
        if self.structure is not None and not self.config.simulate_only:
            raise ValueError(
                "structured workloads are time-model only: masked blocks and "
                "padding rows carry no real data, so the executor cannot "
                "materialize them — use ExecutionConfig(simulate_only=True)"
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, per_rank_ops: Dict[int, List[LocalMatmulOp]]) -> Tuple[float, Dict[int, RankStats]]:
        """Run all ranks' op lists; returns (compute makespan, per-rank stats).

        The ops must already be in execution order (iteration offset applied
        by the caller when enabled).
        """
        states: Dict[int, _RankState] = {}
        for rank in range(self.runtime.num_ranks):
            ops = list(per_rank_ops.get(rank, []))
            state = _RankState(rank=rank, ops=ops)
            state.stats = RankStats(rank=rank, num_ops=len(ops))
            states[rank] = state

        max_steps = max((len(state.ops) for state in states.values()), default=0)
        for step in range(max_steps):
            for rank in range(self.runtime.num_ranks):
                state = states[rank]
                if step < len(state.ops):
                    self._process_op(state, step)

        for state in states.values():
            device = self.clock.device(state.rank)
            state.stats.compute_time = device.busy_time(COMPUTE)
            state.stats.copy_time = device.busy_time(COPY)
            state.stats.accumulate_time = device.busy_time(ACCUMULATE)
            state.stats.finish_time = device.finish_time()
            self._release_all(state)

        makespan = self.engine.makespan()
        return makespan, {rank: state.stats for rank, state in states.items()}

    # ------------------------------------------------------------------ #
    # per-op processing
    # ------------------------------------------------------------------ #
    def _process_op(self, state: _RankState, index: int) -> None:
        config = self.config
        op = state.ops[index]

        # Issue prefetches for this op (if not yet issued) and the lookahead window.
        horizon = index + config.prefetch_depth
        issue_floor = state.gemm_events[index - 1].start if index > 0 else 0.0
        if not config.async_execution and index > 0:
            issue_floor = max(issue_floor, state.accumulate_events[index - 1].end)
        while state.next_prefetch <= min(horizon, len(state.ops) - 1):
            self._issue_fetches(state, state.next_prefetch, issue_floor)
            state.next_prefetch += 1
        if state.next_prefetch <= index:
            # prefetch_depth == 0 path: fetch exactly when needed.
            self._issue_fetches(state, index, issue_floor)
            state.next_prefetch = index + 1

        a_tile = state.fetched.pop((_MATRIX_A, index))
        b_tile = state.fetched.pop((_MATRIX_B, index))

        # ----- local GEMM ------------------------------------------------
        if config.simulate_only:
            product = None
        else:
            a_slice = a_tile.data[op.a.local.as_slices()]
            b_slice = b_tile.data[op.b.local.as_slices()]
            product = a_slice @ b_slice

        gemm_deps: List[Optional[ScheduledEvent]] = [a_tile.event, b_tile.event]
        if config.async_execution:
            window = config.max_concurrent_accumulates
            if index >= window:
                gemm_deps.append(state.accumulate_events[index - window])
            gemm_window = config.max_concurrent_gemms
            if index >= gemm_window:
                gemm_deps.append(state.gemm_events[index - gemm_window])
        elif index > 0:
            gemm_deps.append(state.accumulate_events[index - 1])

        if self.structure is None:
            fractions = None
            op_flops = op.flops
            c_bytes = op.c_bytes
        else:
            # One geometry scan per op: the same fractions price the GEMM,
            # the accumulate, and the stats.
            fractions = self.structure.op_fractions(op.m_bound, op.k_bound,
                                                    op.n_bound)
            op_flops = op.flops * fractions[0]
            c_bytes = op.c_bytes * fractions[3]
        gemm_duration = self.cost_model.structured_op_compute_time(
            op, self.structure, fractions
        )
        gemm_event = self.engine.gemm(state.rank, gemm_duration, deps=gemm_deps,
                                      label="gemm")
        state.gemm_events.append(gemm_event)
        state.stats.flops += op_flops

        # ----- accumulate into C -----------------------------------------
        if op.c_is_remote:
            if not config.simulate_only:
                self.c.accumulate_tile(
                    op.c.index,
                    product,
                    replica_idx=op.c.replica,
                    initiator=state.rank,
                    region=op.c.local,
                )
            duration = self.cost_model.accumulate_time(state.rank, op.c.owner, c_bytes)
            occupancy = self.cost_model.device_link_time(c_bytes, accumulate=True)
            # The accumulate cannot start before the producing GEMM finished,
            # before the initiator's own accumulate queue drains, and it must
            # find a free slot in the destination's shared ingress capacity
            # (many-to-one fan-in serialises there).  The engine owns all of
            # that — including the compute interference the paper observes.
            acc_event = self.engine.accumulate(
                state.rank,
                duration,
                dst=op.c.owner,
                occupancy=occupancy,
                interference=self.cost_model.machine.accumulate_compute_interference,
                deps=(gemm_event,),
                label="accumulate",
            )
            state.stats.remote_accumulate_bytes += c_bytes
        else:
            if not config.simulate_only:
                c_view = self.c.tile(op.c.index, op.c.replica, rank=state.rank)
                c_view[op.c.local.as_slices()] += product
            duration = self.cost_model.local_accumulate_time(c_bytes)
            acc_event = self.engine.local_accumulate(
                state.rank, duration, deps=(gemm_event,), label="local-accumulate"
            )
        state.accumulate_events.append(acc_event)

        self._maybe_release(state, a_tile)
        self._maybe_release(state, b_tile)

    # ------------------------------------------------------------------ #
    # tile fetching
    # ------------------------------------------------------------------ #
    def _issue_fetches(self, state: _RankState, index: int, earliest: float) -> None:
        op = state.ops[index]
        state.fetched[(_MATRIX_A, index)] = self._fetch_operand(
            state, self.a, _MATRIX_A, op.a.index, op.a.replica, op.a.owner, earliest
        )
        state.fetched[(_MATRIX_B, index)] = self._fetch_operand(
            state, self.b, _MATRIX_B, op.b.index, op.b.replica, op.b.owner, earliest
        )

    def _fetch_operand(
        self,
        state: _RankState,
        matrix: DistributedMatrix,
        matrix_key: str,
        tile_idx: Tuple[int, int],
        replica: int,
        owner: int,
        earliest: float,
    ) -> _FetchedTile:
        rank = state.rank
        simulate_only = self.config.simulate_only
        if owner == rank:
            view = None if simulate_only else matrix.tile(tile_idx, replica, rank=rank)
            return _FetchedTile(data=view, ready_time=0.0, from_pool=False)

        cache_key = (matrix_key, replica, tile_idx)
        if self.config.cache_remote_tiles and cache_key in state.cache:
            return state.cache[cache_key]

        bounds = matrix.tile_bounds(tile_idx)
        nbytes = bounds.size * matrix.dtype.itemsize
        if self.structure is not None:
            # Only live data crosses the wire: masked B blocks and padding
            # rows of A are never fetched (a fully masked tile costs 0).
            nbytes *= self.structure.live_fraction(matrix_key, bounds.rows, bounds.cols)
        duration = self.cost_model.transfer_time(owner, rank, nbytes)
        occupancy = self.cost_model.device_link_time(nbytes)
        # The fetch starts once the reader's own copy queue (its ingress
        # bandwidth, processed in program order) is free, and must find an
        # idle slot in the owner's shared egress capacity — one-to-many tile
        # fan-out serialises there.  Both disciplines live in the engine.
        event = self.engine.fetch(
            rank,
            duration,
            src=owner,
            occupancy=occupancy,
            min_start=earliest,
            label=f"get:{matrix_key}{tile_idx}",
        )
        ready = event.end
        state.stats.remote_get_bytes += nbytes

        if simulate_only:
            fetched = _FetchedTile(data=None, ready_time=ready, event=event,
                                   from_pool=False)
        elif self.config.use_memory_pool:
            pool = self.runtime.pool(rank)
            buffer = pool.acquire(matrix.tile_bounds(tile_idx).shape, matrix.dtype)
            data = matrix.get_tile(tile_idx, replica, initiator=rank, out=buffer)
            fetched = _FetchedTile(data=data, ready_time=ready, event=event,
                                   from_pool=True)
        else:
            data = matrix.get_tile(tile_idx, replica, initiator=rank)
            fetched = _FetchedTile(data=data, ready_time=ready, event=event,
                                   from_pool=False)

        if self.config.cache_remote_tiles:
            state.cache[cache_key] = fetched
        return fetched

    def _maybe_release(self, state: _RankState, tile: _FetchedTile) -> None:
        """Return a pooled buffer unless it is cached for reuse."""
        if not tile.from_pool:
            return
        if self.config.cache_remote_tiles and any(
            cached is tile for cached in state.cache.values()
        ):
            return
        self.runtime.pool(state.rank).release(tile.data)

    def _release_all(self, state: _RankState) -> None:
        if not self.config.use_memory_pool:
            state.cache.clear()
            return
        pool = self.runtime.pool(state.rank)
        for cached in state.cache.values():
            if cached.from_pool:
                pool.release(cached.data)
        state.cache.clear()
