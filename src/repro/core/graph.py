"""Computation graphs: per-rank dependency graphs and workload-level op DAGs.

Two graph granularities live here:

* :class:`ComputationGraph` — the paper's Section 4.3 bipartite graph for
  *one rank's* op list (compute nodes vs. tile data nodes), the first
  lowering step of the IR path;
* :class:`OpGraph` — a *workload-level* DAG of whole matmuls (an MLP block,
  an attention stack) whose edges say "this op's output C feeds that op's A
  (or B) operand".  This is the input the graph-level joint planner
  (:mod:`repro.planner.graph`) prices: per-op layout choices plus the
  reshard cost carried by every edge.

"First, we build a computation graph for each process representing the local
component matrix multiplications it must perform as well as the matrix tiles
these component operations are dependent upon.  The computation graph is a
bipartite graph with compute operations on one side and data on the other.
Each component operation has edges to the tiles it depends upon ... Data
dependency edges have labels representing whether the dependency is
satisfied."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.ops import LocalMatmulOp

#: A data node: (operand name, replica index, tile index).
DataKey = Tuple[str, int, Tuple[int, int]]


@dataclass(frozen=True, slots=True)
class DataNode:
    """One matrix tile a compute op depends on."""

    key: DataKey
    owner: int
    nbytes: int

    @property
    def matrix(self) -> str:
        return self.key[0]

    @property
    def tile_index(self) -> Tuple[int, int]:
        return self.key[2]


@dataclass
class ComputationGraph:
    """Bipartite dependency graph for one rank's op list."""

    rank: int
    ops: List[LocalMatmulOp]
    data_nodes: Dict[DataKey, DataNode] = field(default_factory=dict)
    #: op index -> data keys it depends on (only remote dependencies carry cost,
    #: but local ones are kept, marked satisfied, for completeness).
    dependencies: Dict[int, FrozenSet[DataKey]] = field(default_factory=dict)
    #: data keys whose dependency edges start in the satisfied state (local tiles).
    initially_satisfied: Set[DataKey] = field(default_factory=set)

    @classmethod
    def build(cls, rank: int, ops: Sequence[LocalMatmulOp]) -> "ComputationGraph":
        graph = cls(rank=rank, ops=list(ops))
        for index, op in enumerate(graph.ops):
            deps: List[DataKey] = []
            for name, operand, nbytes in (("A", op.a, op.a_bytes), ("B", op.b, op.b_bytes)):
                key: DataKey = (name, operand.replica, operand.index)
                deps.append(key)
                if key not in graph.data_nodes:
                    # The whole tile is fetched, so size the node by the tile,
                    # not by the (possibly smaller) slice this op uses.
                    graph.data_nodes[key] = DataNode(key=key, owner=operand.owner, nbytes=nbytes)
                if operand.owner == rank:
                    graph.initially_satisfied.add(key)
            graph.dependencies[index] = frozenset(deps)
        return graph

    # ------------------------------------------------------------------ #
    def remote_data_keys(self) -> List[DataKey]:
        """Data nodes that require communication before use."""
        return [key for key in self.data_nodes if key not in self.initially_satisfied]

    def ops_depending_on(self, key: DataKey) -> List[int]:
        """Op indices that need a particular data node."""
        return [index for index, deps in self.dependencies.items() if key in deps]

    def is_ready(self, op_index: int, satisfied: Set[DataKey]) -> bool:
        """True if all of an op's dependencies are in the satisfied state."""
        return self.dependencies[op_index] <= satisfied

    def unsatisfied_deps(self, op_index: int, satisfied: Set[DataKey]) -> List[DataKey]:
        return [key for key in self.dependencies[op_index] if key not in satisfied]

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def total_remote_bytes(self) -> int:
        return sum(
            node.nbytes
            for key, node in self.data_nodes.items()
            if key not in self.initially_satisfied
        )


# ---------------------------------------------------------------------- #
# workload-level op DAGs (graph planning input)
# ---------------------------------------------------------------------- #
#: Schema version of :meth:`OpGraph.to_dict` payloads.
OP_GRAPH_SCHEMA_VERSION = 1

#: The operand slots an edge may feed on its consumer.
EDGE_OPERANDS = ("A", "B")


@dataclass(frozen=True)
class GraphOp:
    """One whole matmul ``C[m,n] = A[m,k] @ B[k,n]`` inside an :class:`OpGraph`.

    Deliberately a plain shape record (not a harness ``Workload``): the core
    layer sits below the benchmark harness, so the graph carries only what
    every layer can agree on — a name and the envelope dimensions.
    """

    name: str
    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for label, value in (("m", self.m), ("n", self.n), ("k", self.k)):
            if int(value) < 1:
                raise ValueError(f"GraphOp {self.name!r}: {label} must be >= 1, "
                                 f"got {value}")

    @property
    def output_shape(self) -> Tuple[int, int]:
        """Shape of the C this op produces."""
        return (self.m, self.n)

    def operand_shape(self, operand: str) -> Tuple[int, int]:
        """Shape of the named input operand (``"A"`` is m-by-k, ``"B"`` k-by-n)."""
        if operand == "A":
            return (self.m, self.k)
        if operand == "B":
            return (self.k, self.n)
        raise ValueError(f"operand must be one of {EDGE_OPERANDS}, got {operand!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (used by the serving wire protocol)."""
        return {"name": self.name, "m": self.m, "n": self.n, "k": self.k}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphOp":
        """Inverse of :meth:`to_dict`."""
        return cls(name=str(payload["name"]), m=int(payload["m"]),  # type: ignore[arg-type]
                   n=int(payload["n"]), k=int(payload["k"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class GraphEdge:
    """One producer-consumer dependency: op ``src``'s C feeds op ``dst``'s operand."""

    src: int
    dst: int
    #: Which input slot of the consumer the produced matrix lands in.
    operand: str = "A"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (used by the serving wire protocol)."""
        return {"src": self.src, "dst": self.dst, "operand": self.operand}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphEdge":
        """Inverse of :meth:`to_dict`."""
        return cls(src=int(payload["src"]), dst=int(payload["dst"]),  # type: ignore[arg-type]
                   operand=str(payload.get("operand", "A")))


@dataclass(frozen=True)
class OpGraph:
    """A DAG of whole matmuls whose edges carry produced-C-to-consumed-operand flow.

    Validation enforces everything the joint planner relies on:

    * edge endpoints are in range, never self-loops, operands are A/B;
    * at most one edge feeds any (consumer, operand) slot;
    * the producer's output shape equals the consumer operand's shape
      (``C[src]`` is m-by-n; an ``A`` edge needs ``(m_dst, k_dst)`` equal to
      it, a ``B`` edge needs ``(k_dst, n_dst)``);
    * the graph is acyclic (a topological order exists).
    """

    name: str
    ops: Tuple[GraphOp, ...]
    edges: Tuple[GraphEdge, ...] = ()

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("OpGraph needs at least one op")
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(self, "edges", tuple(self.edges))
        slots: Set[Tuple[int, str]] = set()
        for edge in self.edges:
            if not (0 <= edge.src < len(self.ops)) or not (0 <= edge.dst < len(self.ops)):
                raise ValueError(f"edge {edge} references ops outside 0..{len(self.ops) - 1}")
            if edge.src == edge.dst:
                raise ValueError(f"edge {edge} is a self-loop")
            if edge.operand not in EDGE_OPERANDS:
                raise ValueError(f"edge {edge} operand must be one of {EDGE_OPERANDS}")
            slot = (edge.dst, edge.operand)
            if slot in slots:
                raise ValueError(f"operand {edge.operand} of op {edge.dst} is fed "
                                 f"by more than one edge")
            slots.add(slot)
            produced = self.ops[edge.src].output_shape
            consumed = self.ops[edge.dst].operand_shape(edge.operand)
            if produced != consumed:
                raise ValueError(
                    f"edge {edge.src}->{edge.dst}:{edge.operand}: op "
                    f"{self.ops[edge.src].name!r} produces {produced} but op "
                    f"{self.ops[edge.dst].name!r} consumes {consumed}")
        self.topological_order()  # raises on cycles

    # ------------------------------------------------------------------ #
    def predecessors(self, index: int) -> List[GraphEdge]:
        """Every edge whose consumer is op ``index``."""
        return [edge for edge in self.edges if edge.dst == index]

    def successors(self, index: int) -> List[GraphEdge]:
        """Every edge whose producer is op ``index``."""
        return [edge for edge in self.edges if edge.src == index]

    def topological_order(self) -> List[int]:
        """Deterministic topological order (Kahn's algorithm, smallest index first).

        Raises:
            ValueError: if the edge set contains a cycle.
        """
        indegree = [0] * len(self.ops)
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = sorted(i for i, d in enumerate(indegree) if d == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for edge in self.successors(node):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    # Insert keeping `ready` sorted so the order is canonical.
                    position = 0
                    while position < len(ready) and ready[position] < edge.dst:
                        position += 1
                    ready.insert(position, edge.dst)
        if len(order) != len(self.ops):
            raise ValueError(f"OpGraph {self.name!r} contains a cycle")
        return order

    @property
    def is_chain(self) -> bool:
        """True when the ops form one linear path (<=1 predecessor/successor each)."""
        if len(self.edges) != len(self.ops) - 1:
            return False
        in_count = [0] * len(self.ops)
        out_count = [0] * len(self.ops)
        for edge in self.edges:
            in_count[edge.dst] += 1
            out_count[edge.src] += 1
        return all(c <= 1 for c in in_count) and all(c <= 1 for c in out_count)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form of the whole graph (inverse of :meth:`from_dict`)."""
        return {
            "schema": OP_GRAPH_SCHEMA_VERSION,
            "name": self.name,
            "ops": [op.to_dict() for op in self.ops],
            "edges": [edge.to_dict() for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "OpGraph":
        """Rebuild a graph from :meth:`to_dict` output (re-validates everything)."""
        return cls(
            name=str(payload["name"]),
            ops=tuple(GraphOp.from_dict(item) for item in payload["ops"]),  # type: ignore[union-attr]
            edges=tuple(GraphEdge.from_dict(item) for item in payload.get("edges", [])),  # type: ignore[union-attr]
        )


def matmul_chain(name: str, ops: Sequence[GraphOp]) -> OpGraph:
    """Link ``ops`` into a linear chain where each C feeds the next op's A."""
    edges = tuple(GraphEdge(src=i, dst=i + 1, operand="A")
                  for i in range(len(ops) - 1))
    return OpGraph(name=name, ops=tuple(ops), edges=edges)


def mlp_chain(batch: int, hidden: int, ratio: int = 4, name: str = "mlp") -> OpGraph:
    """The transformer MLP block as a two-op chain: ``X @ W1 @ W2``.

    Op 1 expands the hidden dimension (``m=batch, n=ratio*hidden, k=hidden``),
    op 2 projects back down (``m=batch, n=hidden, k=ratio*hidden``); the first
    op's activation output is the second op's A operand.
    """
    return matmul_chain(name, (
        GraphOp(name=f"{name}1", m=batch, n=ratio * hidden, k=hidden),
        GraphOp(name=f"{name}2", m=batch, n=hidden, k=ratio * hidden),
    ))


def attention_chain(seq: int, head_dim: int, hidden: int,
                    name: str = "attn") -> OpGraph:
    """One attention head's QKV -> score -> value path as a three-op chain.

    ``Q = X @ Wq`` (seq-by-head_dim), ``S = Q @ K^T`` (seq-by-seq, K^T enters
    as the stationary B operand), ``O = S @ V`` (seq-by-head_dim): each op's
    output is the next op's A operand, which is the chain the planner prices.
    """
    return matmul_chain(name, (
        GraphOp(name=f"{name}_qkv", m=seq, n=head_dim, k=hidden),
        GraphOp(name=f"{name}_score", m=seq, n=seq, k=head_dim),
        GraphOp(name=f"{name}_value", m=seq, n=head_dim, k=seq),
    ))
