"""Per-rank computation graphs (paper Section 4.3, first lowering step).

"First, we build a computation graph for each process representing the local
component matrix multiplications it must perform as well as the matrix tiles
these component operations are dependent upon.  The computation graph is a
bipartite graph with compute operations on one side and data on the other.
Each component operation has edges to the tiles it depends upon ... Data
dependency edges have labels representing whether the dependency is
satisfied."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.ops import LocalMatmulOp

#: A data node: (operand name, replica index, tile index).
DataKey = Tuple[str, int, Tuple[int, int]]


@dataclass(frozen=True, slots=True)
class DataNode:
    """One matrix tile a compute op depends on."""

    key: DataKey
    owner: int
    nbytes: int

    @property
    def matrix(self) -> str:
        return self.key[0]

    @property
    def tile_index(self) -> Tuple[int, int]:
        return self.key[2]


@dataclass
class ComputationGraph:
    """Bipartite dependency graph for one rank's op list."""

    rank: int
    ops: List[LocalMatmulOp]
    data_nodes: Dict[DataKey, DataNode] = field(default_factory=dict)
    #: op index -> data keys it depends on (only remote dependencies carry cost,
    #: but local ones are kept, marked satisfied, for completeness).
    dependencies: Dict[int, FrozenSet[DataKey]] = field(default_factory=dict)
    #: data keys whose dependency edges start in the satisfied state (local tiles).
    initially_satisfied: Set[DataKey] = field(default_factory=set)

    @classmethod
    def build(cls, rank: int, ops: Sequence[LocalMatmulOp]) -> "ComputationGraph":
        graph = cls(rank=rank, ops=list(ops))
        for index, op in enumerate(graph.ops):
            deps: List[DataKey] = []
            for name, operand, nbytes in (("A", op.a, op.a_bytes), ("B", op.b, op.b_bytes)):
                key: DataKey = (name, operand.replica, operand.index)
                deps.append(key)
                if key not in graph.data_nodes:
                    # The whole tile is fetched, so size the node by the tile,
                    # not by the (possibly smaller) slice this op uses.
                    graph.data_nodes[key] = DataNode(key=key, owner=operand.owner, nbytes=nbytes)
                if operand.owner == rank:
                    graph.initially_satisfied.add(key)
            graph.dependencies[index] = frozenset(deps)
        return graph

    # ------------------------------------------------------------------ #
    def remote_data_keys(self) -> List[DataKey]:
        """Data nodes that require communication before use."""
        return [key for key in self.data_nodes if key not in self.initially_satisfied]

    def ops_depending_on(self, key: DataKey) -> List[int]:
        """Op indices that need a particular data node."""
        return [index for index, deps in self.dependencies.items() if key in deps]

    def is_ready(self, op_index: int, satisfied: Set[DataKey]) -> bool:
        """True if all of an op's dependencies are in the satisfied state."""
        return self.dependencies[op_index] <= satisfied

    def unsatisfied_deps(self, op_index: int, satisfied: Set[DataKey]) -> List[DataKey]:
        return [key for key in self.dependencies[op_index] if key not in satisfied]

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def total_remote_bytes(self) -> int:
        return sum(
            node.nbytes
            for key, node in self.data_nodes.items()
            if key not in self.initially_satisfied
        )
