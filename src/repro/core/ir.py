"""The optimized IR with explicit communication (paper Section 4.3).

An IR program is a sequence of :class:`IRStep` objects per rank.  Each step
bundles zero or more compute operations with zero or more communication
operations that execute concurrently; the step completes when the slower of
the two finishes, and communication performed in a step satisfies its data
dependencies for *subsequent* steps — exactly the structure described in the
paper ("The output IR ops consist of a list of zero or more compute
operations and zero or more communication operations ...").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.graph import DataKey


@dataclass(frozen=True, slots=True)
class IRCommOp:
    """One communication operation: fetch a (remote) tile into local memory."""

    data: DataKey
    owner: int
    nbytes: int


@dataclass(frozen=True, slots=True)
class IRComputeOp:
    """One compute operation: execute op ``op_index`` of the rank's op list."""

    op_index: int


@dataclass
class IRStep:
    """One output IR op: concurrent communication and computation."""

    computes: List[IRComputeOp] = field(default_factory=list)
    comms: List[IRCommOp] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.computes and not self.comms


@dataclass
class IRProgram:
    """The schedule for a single rank."""

    rank: int
    steps: List[IRStep] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def compute_indices(self) -> List[int]:
        """All scheduled op indices in execution order (used by validity checks)."""
        return [op.op_index for step in self.steps for op in step.computes]

    def comm_keys(self) -> List[DataKey]:
        return [comm.data for step in self.steps for comm in step.comms]

    def validate(self, num_ops: int) -> None:
        """Check that every op is scheduled exactly once and comms precede their use."""
        scheduled = self.compute_indices()
        if sorted(scheduled) != list(range(num_ops)):
            raise ValueError(
                f"IR program for rank {self.rank} schedules ops {sorted(scheduled)} "
                f"but the op list has {num_ops} ops"
            )
        if len(set(self.comm_keys())) != len(self.comm_keys()):
            raise ValueError(f"IR program for rank {self.rank} fetches a tile twice")
