"""Lowering op lists to the optimized IR (paper Section 4.3).

Three strategies are provided, matching the paper:

* **greedy** — in each output IR op, schedule any compute whose dependencies
  are satisfied (up to the compute limit), then any outstanding communication
  (up to the communication limit).
* **cost-greedy** — the same loop, but the cost model decides *which* compute
  and communication to pick: computes are ordered longest-first to keep the
  pipe full, communications by how much compute time they unlock per second
  of transfer.
* **exhaustive** — enumerate candidate op orderings, evaluate each complete
  schedule with the cost model, and keep the cheapest.  The search space is
  factorial, so it is only attempted when the number of orderings fits under
  ``exhaustive_search_limit``; otherwise it falls back to cost-greedy (the
  paper likewise only applies it to small problems).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import ExecutionConfig, LoweringStrategy
from repro.core.cost_model import CostModel
from repro.core.graph import ComputationGraph, DataKey
from repro.core.ir import IRCommOp, IRComputeOp, IRProgram, IRStep
from repro.core.ops import LocalMatmulOp
from repro.util.validation import SchedulingError


def lower_to_ir(
    graph: ComputationGraph,
    cost_model: CostModel,
    config: Optional[ExecutionConfig] = None,
    strategy: Optional[LoweringStrategy] = None,
) -> IRProgram:
    """Lower one rank's computation graph to an IR program."""
    config = config or ExecutionConfig()
    strategy = strategy or config.lowering
    if strategy is LoweringStrategy.GREEDY:
        return _greedy_lowering(graph, cost_model, config, use_cost_model=False)
    if strategy is LoweringStrategy.COST_GREEDY:
        return _greedy_lowering(graph, cost_model, config, use_cost_model=True)
    if strategy is LoweringStrategy.EXHAUSTIVE:
        return _exhaustive_lowering(graph, cost_model, config)
    raise SchedulingError(f"unknown lowering strategy {strategy!r}")


def lower_all_ranks(
    per_rank_ops: Dict[int, List[LocalMatmulOp]],
    cost_model: CostModel,
    config: Optional[ExecutionConfig] = None,
    strategy: Optional[LoweringStrategy] = None,
) -> Dict[int, IRProgram]:
    """Lower every rank's op list, returning ``{rank: IRProgram}``."""
    programs: Dict[int, IRProgram] = {}
    for rank, ops in per_rank_ops.items():
        graph = ComputationGraph.build(rank, ops)
        programs[rank] = lower_to_ir(graph, cost_model, config, strategy)
    return programs


# ---------------------------------------------------------------------- #
# greedy / cost-greedy
# ---------------------------------------------------------------------- #
def _greedy_lowering(
    graph: ComputationGraph,
    cost_model: CostModel,
    config: ExecutionConfig,
    use_cost_model: bool,
) -> IRProgram:
    program = IRProgram(rank=graph.rank)
    satisfied: Set[DataKey] = set(graph.initially_satisfied)
    in_flight: Set[DataKey] = set()
    pending: List[int] = list(range(graph.num_ops))
    comm_limit = max(1, config.prefetch_depth) * 2  # A and B per lookahead slot

    # Guard against infinite loops: every iteration must make progress.
    while pending or in_flight:
        # Communication issued in earlier steps is now satisfied.
        satisfied |= in_flight
        in_flight = set()

        ready = [index for index in pending if graph.is_ready(index, satisfied)]
        if use_cost_model:
            ready.sort(key=lambda index: cost_model.op_compute_time(graph.ops[index]),
                       reverse=True)
        computes = ready[: config.max_concurrent_gemms]

        # Candidate communications: unsatisfied deps of remaining pending ops,
        # in op order (greedy) or by unlocked-compute-per-transfer-second
        # (cost-greedy).
        remaining = [index for index in pending if index not in computes]
        candidates: List[DataKey] = []
        seen: Set[DataKey] = set()
        for index in remaining:
            for key in graph.unsatisfied_deps(index, satisfied):
                if key not in seen:
                    seen.add(key)
                    candidates.append(key)

        if use_cost_model and candidates:
            def priority(key: DataKey) -> float:
                node = graph.data_nodes[key]
                transfer = max(
                    cost_model.transfer_time(node.owner, graph.rank, node.nbytes), 1.0e-9
                )
                unlocked = sum(
                    cost_model.op_compute_time(graph.ops[i])
                    for i in graph.ops_depending_on(key)
                )
                return unlocked / transfer

            candidates.sort(key=priority, reverse=True)

        comms = [
            IRCommOp(data=key, owner=graph.data_nodes[key].owner,
                     nbytes=graph.data_nodes[key].nbytes)
            for key in candidates[:comm_limit]
        ]

        if not computes and not comms:
            raise SchedulingError(
                f"greedy lowering for rank {graph.rank} made no progress with "
                f"{len(pending)} ops pending"
            )

        program.steps.append(
            IRStep(computes=[IRComputeOp(op_index=i) for i in computes], comms=comms)
        )
        in_flight = {comm.data for comm in comms}
        pending = [index for index in pending if index not in computes]

    return program


# ---------------------------------------------------------------------- #
# exhaustive search
# ---------------------------------------------------------------------- #
def _schedule_from_order(
    graph: ComputationGraph, order: Sequence[int], config: ExecutionConfig
) -> IRProgram:
    """Build a pipelined schedule that executes ops in the given order.

    Step ``s`` computes op ``order[s]`` while fetching the data needed by the
    next op(s), which is the canonical software-pipelining shape the
    exhaustive search explores orderings of.
    """
    program = IRProgram(rank=graph.rank)
    satisfied: Set[DataKey] = set(graph.initially_satisfied)
    fetched: Set[DataKey] = set(graph.initially_satisfied)
    lookahead = max(1, config.prefetch_depth)

    # Pre-step: fetch whatever the first op needs.
    first_needs = [key for key in graph.dependencies[order[0]] if key not in fetched]
    if first_needs:
        program.steps.append(
            IRStep(
                comms=[
                    IRCommOp(key, graph.data_nodes[key].owner, graph.data_nodes[key].nbytes)
                    for key in first_needs
                ]
            )
        )
        fetched |= set(first_needs)
        satisfied |= set(first_needs)

    for position, op_index in enumerate(order):
        comms: List[IRCommOp] = []
        for ahead in range(1, lookahead + 1):
            if position + ahead < len(order):
                upcoming = order[position + ahead]
                for key in graph.dependencies[upcoming]:
                    if key not in fetched:
                        node = graph.data_nodes[key]
                        comms.append(IRCommOp(key, node.owner, node.nbytes))
                        fetched.add(key)
        program.steps.append(
            IRStep(computes=[IRComputeOp(op_index=op_index)], comms=comms)
        )
    return program


def _exhaustive_lowering(
    graph: ComputationGraph, cost_model: CostModel, config: ExecutionConfig
) -> IRProgram:
    from repro.core.schedule_sim import estimate_program_time

    num_ops = graph.num_ops
    if num_ops == 0:
        return IRProgram(rank=graph.rank)

    num_orderings = 1
    for value in range(2, num_ops + 1):
        num_orderings *= value
        if num_orderings > config.exhaustive_search_limit:
            break

    if num_orderings > config.exhaustive_search_limit:
        # Too large to enumerate: fall back to the cost-model greedy result,
        # which the paper found to be nearly optimal anyway.
        return _greedy_lowering(graph, cost_model, config, use_cost_model=True)

    best_program: Optional[IRProgram] = None
    best_cost = float("inf")
    for order in itertools.permutations(range(num_ops)):
        program = _schedule_from_order(graph, order, config)
        cost = estimate_program_time(program, graph, cost_model)
        if cost < best_cost:
            best_cost = cost
            best_program = program
    assert best_program is not None
    return best_program
