"""Top-level entry point: the universal one-sided distributed matrix multiply.

:func:`universal_matmul` ties the pieces together exactly as Section 4 of the
paper describes:

1. pick a data-movement strategy (Stationary A/B/C) — by the largest-matrix
   heuristic, by the cost model, or as dictated by the caller;
2. have every rank generate its local op list by slicing;
3. execute the op lists either directly (with iteration offset, prefetching,
   asynchronous GEMM/accumulate, and the memory pool) or by lowering to the
   optimized IR with one of the scheduling strategies;
4. if C is replicated, reduce the partial results across replicas.

The function returns an :class:`~repro.core.result.ExecutionResult` carrying
the modelled execution time, the percent-of-peak figure used throughout the
paper's evaluation, and communication statistics.  The *data* in C is
genuinely computed, so callers can (and the tests do) compare
``C.to_dense()`` against a NumPy reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.config import ExecutionConfig, ExecutionMode, LoweringStrategy
from repro.core.cost_model import CostModel
from repro.core.direct import DirectExecutor
from repro.core.lowering import lower_all_ranks
from repro.core.ops import LocalMatmulOp
from repro.core.result import ExecutionResult, RankStats
from repro.core.schedule_sim import IRExecutor
from repro.core.slicing import (
    apply_iteration_offset,
    check_coverage,
    generate_all_ops,
)
from repro.core.stationary import (
    Stationary,
    choose_stationary_by_cost,
    choose_stationary_by_size,
    parse_stationary,
)
from repro.core.structure import (
    ROLE_C,
    WorkloadStructure,
    prune_structured_ops,
    resolve_structure,
)
from repro.dist.matrix import DistributedMatrix
from repro.util.validation import ShapeError, check_matmul_shapes


def plan_ops(
    a: DistributedMatrix,
    b: DistributedMatrix,
    c: DistributedMatrix,
    stationary: Optional[Union[str, Stationary]] = None,
    cost_model: Optional[CostModel] = None,
) -> Dict[int, List[LocalMatmulOp]]:
    """Generate (but do not execute) the per-rank op lists for a multiply."""
    resolved = _resolve_stationary(a, b, c, stationary, cost_model)
    return generate_all_ops(a, b, c, resolved)


def _resolve_stationary(
    a: DistributedMatrix,
    b: DistributedMatrix,
    c: DistributedMatrix,
    stationary: Optional[Union[str, Stationary]],
    cost_model: Optional[CostModel],
) -> Stationary:
    if stationary is None or (isinstance(stationary, str) and stationary.lower() == "auto"):
        return choose_stationary_by_size(a, b, c)
    if isinstance(stationary, str) and stationary.lower() in ("cost", "auto-cost", "auto_cost"):
        model = cost_model or CostModel(a.runtime.machine)
        return choose_stationary_by_cost(a, b, c, model)
    return parse_stationary(stationary)


def model_reduce_time(c: DistributedMatrix, cost_model: CostModel, origin: int = 0,
                      structure: Optional[WorkloadStructure] = None) -> float:
    """Modelled time of ``reduce_replicas``: incoming accumulates serialise at each origin owner.

    Public because the planner's pruning bound needs the exact same replica
    reduction term that :func:`universal_matmul` adds to its makespan.
    ``structure`` scales each tile to its live bytes (padding rows of a
    ragged C are not reduced); dense structures change nothing.
    """
    if c.replication.num_replicas == 1:
        return 0.0
    structure = resolve_structure(structure)
    per_owner: Dict[int, float] = {}
    for tile_idx in c.grid.tiles():
        bounds = c.tile_bounds(tile_idx)
        nbytes = bounds.size * c.dtype.itemsize
        if structure is not None:
            nbytes *= structure.live_fraction(ROLE_C, bounds.rows, bounds.cols)
        dst_owner = c.owner_rank(tile_idx, origin)
        for replica in range(c.replication.num_replicas):
            if replica == origin:
                continue
            src_owner = c.owner_rank(tile_idx, replica)
            per_owner[dst_owner] = per_owner.get(dst_owner, 0.0) + cost_model.accumulate_time(
                src_owner, dst_owner, nbytes
            )
    return max(per_owner.values(), default=0.0)


def universal_matmul(
    a: DistributedMatrix,
    b: DistributedMatrix,
    c: DistributedMatrix,
    stationary: Optional[Union[str, Stationary]] = None,
    config: Optional[ExecutionConfig] = None,
    cost_model: Optional[CostModel] = None,
    reduce_origin: int = 0,
    structure: Optional[WorkloadStructure] = None,
) -> ExecutionResult:
    """Compute ``C += A @ B`` for distributed matrices with any partitionings.

    Parameters
    ----------
    a, b, c:
        Distributed operands.  ``c`` is accumulated into (callers wanting a
        plain product should zero it first); any combination of partitionings
        and replication factors is accepted.
    stationary:
        ``None``/"auto" (largest matrix stays put), "cost" (cost-model
        selection), or an explicit :class:`Stationary`/"A"/"B"/"C".
    config:
        Execution configuration (direct vs IR, prefetch depth, concurrency
        limits, ...).  Defaults to the paper's direct-execution settings.
    cost_model:
        Cost model used for timing; defaults to one built from the runtime's
        machine spec.
    reduce_origin:
        Replica that receives the reduced result when C is replicated.
    structure:
        Optional :class:`~repro.core.structure.WorkloadStructure` describing
        which parts of the envelope are live (block-sparse B, MoE-ragged m).
        Non-dense structures are time-model only: they require the direct
        execution mode with ``simulate_only=True``, fully masked ops are
        skipped, and every emitted event is scaled to its live work.

    Returns
    -------
    ExecutionResult
        Modelled time, percent of peak, and communication statistics.
    """
    if a.runtime is not b.runtime or a.runtime is not c.runtime:
        raise ShapeError("A, B, and C must live in the same runtime")
    m, n, k = check_matmul_shapes(a.shape, b.shape, c.shape)
    config = config or ExecutionConfig()
    cost_model = cost_model or CostModel(a.runtime.machine)
    structure = resolve_structure(structure)
    if structure is not None:
        structure.validate(m, n, k)
        if config.mode is not ExecutionMode.DIRECT:
            raise ValueError(
                "structured workloads are only supported under the direct "
                "execution mode (the IR lowering prices dense envelopes)"
            )
        if not config.simulate_only:
            raise ValueError(
                "structured workloads are time-model only: use "
                "ExecutionConfig(simulate_only=True)"
            )

    resolved = _resolve_stationary(a, b, c, stationary, cost_model)
    per_rank_ops = generate_all_ops(a, b, c, resolved)
    if config.validate_ops:
        # Coverage is an envelope invariant, so it is checked before the
        # structure drops the all-masked ops.
        check_coverage(a, b, c, per_rank_ops)
    if structure is not None:
        per_rank_ops = prune_structured_ops(per_rank_ops, structure)
    if config.iteration_offset:
        per_rank_ops = {
            rank: apply_iteration_offset(ops) for rank, ops in per_rank_ops.items()
        }

    if config.mode is ExecutionMode.DIRECT:
        executor = DirectExecutor(a, b, c, cost_model, config, structure=structure)
        makespan, per_rank_stats = executor.execute(per_rank_ops)
        lowering_name = None
    else:
        programs = lower_all_ranks(per_rank_ops, cost_model, config)
        executor = IRExecutor(a, b, c, cost_model, config)
        makespan, per_rank_stats = executor.execute(per_rank_ops, programs)
        lowering_name = config.lowering.value

    reduce_time = 0.0
    if c.replication.num_replicas > 1:
        if not config.simulate_only:
            c.reduce_replicas(origin_idx=reduce_origin)
        reduce_time = model_reduce_time(c, cost_model, reduce_origin,
                                        structure=structure)

    total_flops = 2 * m * n * k if structure is None else structure.effective_flops(m, n, k)
    simulated_time = makespan + reduce_time
    result = ExecutionResult(
        stationary=resolved,
        total_flops=total_flops,
        simulated_time=simulated_time,
        compute_makespan=makespan,
        reduce_time=reduce_time,
        percent_of_peak=cost_model.percent_of_peak(total_flops, simulated_time),
        total_ops=sum(len(ops) for ops in per_rank_ops.values()),
        remote_get_bytes=sum(s.remote_get_bytes for s in per_rank_stats.values()),
        remote_accumulate_bytes=sum(
            s.remote_accumulate_bytes for s in per_rank_stats.values()
        ),
        per_rank=per_rank_stats,
        mode=config.mode.value,
        lowering=lowering_name,
        metadata={
            "m": m,
            "n": n,
            "k": k,
            "replication": {
                "A": a.replication.factor,
                "B": b.replication.factor,
                "C": c.replication.factor,
            },
            "partitions": {
                "A": a.partition.name,
                "B": b.partition.name,
                "C": c.partition.name,
            },
        },
    )
    if structure is not None:
        result.metadata["structure"] = structure.to_dict()
    return result
