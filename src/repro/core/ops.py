"""Local matrix-multiply operations produced by the slicing op generator.

Each :class:`LocalMatmulOp` is one ``C_tile[c_slice] += A_tile[a_slice] @
B_tile[b_slice]`` update.  The op carries both the *global* m/k/n bounds it
covers (useful for reasoning about coverage and for the cost model) and the
*local* rectangles inside each tile (what the executor actually indexes),
mirroring lines 29–35 of the paper's Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.indexing import Interval, Rect

TileIndex = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class OperandRef:
    """One operand of a local multiply: which stored tile, and which part of it."""

    #: Tile coordinate within the operand's tile grid.
    index: TileIndex
    #: Replica the tile will be accessed from (the initiating rank's local replica).
    replica: int
    #: Rank that owns the tile in that replica.
    owner: int
    #: Sub-rectangle of the tile, in the tile's local coordinates.
    local: Rect

    @property
    def is_full_tile(self) -> bool:
        return self.local.rows.start == 0 and self.local.cols.start == 0


@dataclass(frozen=True, slots=True)
class LocalMatmulOp:
    """One local GEMM-and-accumulate generated for a particular rank."""

    #: Rank that will execute the op.
    rank: int
    a: OperandRef
    b: OperandRef
    c: OperandRef
    #: Global row range of C covered (also the row range of A used).
    m_bound: Interval
    #: Global inner-dimension range covered (columns of A / rows of B).
    k_bound: Interval
    #: Global column range of C covered (also the column range of B used).
    n_bound: Interval
    #: Index of the stationary tile this op belongs to (drives iteration offset).
    stationary_index: TileIndex
    #: Bytes per matrix element.
    itemsize: int = 4

    # ------------------------------------------------------------------ #
    @property
    def m(self) -> int:
        return self.m_bound.extent

    @property
    def k(self) -> int:
        return self.k_bound.extent

    @property
    def n(self) -> int:
        return self.n_bound.extent

    @property
    def flops(self) -> int:
        """Floating point operations performed by the local GEMM (2·m·n·k)."""
        return 2 * self.m * self.n * self.k

    @property
    def is_empty(self) -> bool:
        return self.m == 0 or self.n == 0 or self.k == 0

    # -- communication footprint ---------------------------------------- #
    @property
    def a_bytes(self) -> int:
        """Bytes of A read by this op (the used sub-rectangle)."""
        return self.m * self.k * self.itemsize

    @property
    def b_bytes(self) -> int:
        """Bytes of B read by this op."""
        return self.k * self.n * self.itemsize

    @property
    def c_bytes(self) -> int:
        """Bytes of C written/accumulated by this op."""
        return self.m * self.n * self.itemsize

    @property
    def a_is_remote(self) -> bool:
        return self.a.owner != self.rank

    @property
    def b_is_remote(self) -> bool:
        return self.b.owner != self.rank

    @property
    def c_is_remote(self) -> bool:
        return self.c.owner != self.rank

    @property
    def remote_fetch_bytes(self) -> int:
        """Bytes this op must fetch from remote ranks (A and B contributions)."""
        total = 0
        if self.a_is_remote:
            total += self.a_bytes
        if self.b_is_remote:
            total += self.b_bytes
        return total

    @property
    def remote_accumulate_bytes(self) -> int:
        """Bytes this op must accumulate to a remote C tile."""
        return self.c_bytes if self.c_is_remote else 0

    def describe(self) -> str:
        """Human-readable one-liner like the op listing in the paper's Figure 1."""
        return (
            f"C{self.c.index}[{self.c.local}] += "
            f"A{self.a.index}[{self.a.local}] * B{self.b.index}[{self.b.local}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalMatmulOp(rank={self.rank}, {self.describe()})"
