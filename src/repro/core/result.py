"""Result records returned by the execution engines and the top-level API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.stationary import Stationary


@dataclass
class RankStats:
    """Per-rank accounting from one distributed multiply."""

    rank: int
    num_ops: int = 0
    flops: int = 0
    remote_get_bytes: int = 0
    remote_accumulate_bytes: int = 0
    compute_time: float = 0.0
    copy_time: float = 0.0
    accumulate_time: float = 0.0
    finish_time: float = 0.0


@dataclass
class ExecutionResult:
    """Outcome of one distributed matrix multiplication.

    ``simulated_time`` is the modelled makespan (seconds on the machine
    model), including the replica reduction when C is replicated.
    ``percent_of_peak`` relates the problem's FLOPs to the machine's aggregate
    peak over that makespan — the metric plotted in the paper's Figures 2-3.
    """

    stationary: Stationary
    total_flops: int
    simulated_time: float
    compute_makespan: float
    reduce_time: float
    percent_of_peak: float
    total_ops: int
    remote_get_bytes: int
    remote_accumulate_bytes: int
    per_rank: Dict[int, RankStats] = field(default_factory=dict)
    mode: str = "direct"
    lowering: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def communication_bytes(self) -> int:
        """Total remote bytes moved (gets plus accumulates)."""
        return self.remote_get_bytes + self.remote_accumulate_bytes

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "stationary": self.stationary.value,
            "mode": self.mode,
            "lowering": self.lowering,
            "simulated_time_s": self.simulated_time,
            "percent_of_peak": self.percent_of_peak,
            "total_flops": self.total_flops,
            "total_ops": self.total_ops,
            "remote_get_bytes": self.remote_get_bytes,
            "remote_accumulate_bytes": self.remote_accumulate_bytes,
            "reduce_time_s": self.reduce_time,
        }
