"""Execution and time-estimation of IR programs.

Each IR step overlaps its communication with its computation: the step emits
one aggregate fetch event, one compute event, and one accumulate event, all
gated on the previous step's sync barrier, then joins them with a new sync —
so the step's duration is the maximum of the three.  The explicit per-step
synchronisation is the defining difference from the free-running direct
executor; both now price through the same
:class:`~repro.sim.engine.EventEngine`.

Two entry points:

* :func:`estimate_program_time` — pure cost-model estimate of one rank's
  program, used inside the exhaustive-search lowering.
* :class:`IRExecutor` — executes the programs of all ranks (real data
  movement + event emission), the IR-mode counterpart of
  :class:`repro.core.direct.DirectExecutor`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.core.graph import ComputationGraph, DataKey
from repro.core.ir import IRProgram
from repro.core.ops import LocalMatmulOp
from repro.core.result import RankStats
from repro.dist.matrix import DistributedMatrix
from repro.sim.engine import EventEngine
from repro.sim.events import ScheduledEvent
from repro.util.validation import SchedulingError


def estimate_program_time(
    program: IRProgram, graph: ComputationGraph, cost_model: CostModel
) -> float:
    """Cost-model estimate of one rank's IR program (no cross-rank contention)."""
    total = 0.0
    for step in program.steps:
        comm_time = sum(
            cost_model.transfer_time(comm.owner, graph.rank, comm.nbytes)
            for comm in step.comms
        )
        compute_time = 0.0
        accumulate_time = 0.0
        for compute in step.computes:
            op = graph.ops[compute.op_index]
            compute_time += cost_model.op_compute_time(op)
            if op.c_is_remote:
                accumulate_time += cost_model.accumulate_time(op.rank, op.c.owner, op.c_bytes)
            else:
                compute_time += cost_model.local_accumulate_time(op.c_bytes)
        total += max(comm_time, compute_time, accumulate_time)
    return total


class IRExecutor:
    """Executes lowered IR programs for every rank."""

    def __init__(
        self,
        a: DistributedMatrix,
        b: DistributedMatrix,
        c: DistributedMatrix,
        cost_model: CostModel,
        config: Optional[ExecutionConfig] = None,
        engine: Optional[EventEngine] = None,
    ) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.runtime = a.runtime
        self.cost_model = cost_model
        self.config = config or ExecutionConfig()
        self.engine = engine or EventEngine(self.runtime.num_ranks)

    # ------------------------------------------------------------------ #
    def execute(
        self,
        per_rank_ops: Dict[int, List[LocalMatmulOp]],
        programs: Dict[int, IRProgram],
    ) -> Tuple[float, Dict[int, RankStats]]:
        """Run every rank's program; returns (compute makespan, per-rank stats)."""
        makespan = 0.0
        stats: Dict[int, RankStats] = {}
        for rank in range(self.runtime.num_ranks):
            ops = per_rank_ops.get(rank, [])
            program = programs.get(rank, IRProgram(rank=rank))
            program.validate(len(ops))
            finish, rank_stats = self._execute_rank(rank, ops, program)
            stats[rank] = rank_stats
            makespan = max(makespan, finish)
        return makespan, stats

    # ------------------------------------------------------------------ #
    def _execute_rank(
        self, rank: int, ops: List[LocalMatmulOp], program: IRProgram
    ) -> Tuple[float, RankStats]:
        rank_stats = RankStats(rank=rank, num_ops=len(ops))
        local_tiles: Dict[DataKey, np.ndarray] = {}
        simulate_only = self.config.simulate_only

        matrices = {"A": self.a, "B": self.b}

        def resolve(key: DataKey) -> np.ndarray:
            name, replica, tile_idx = key
            matrix = matrices[name]
            if key in local_tiles:
                return local_tiles[key]
            owner = matrix.owner_rank(tile_idx, replica)
            if owner == rank:
                view = matrix.tile(tile_idx, replica, rank=rank)
                local_tiles[key] = view
                return view
            raise SchedulingError(
                f"rank {rank} needs tile {key} but it was never fetched by the IR program"
            )

        barrier: Optional[ScheduledEvent] = None
        for step_index, step in enumerate(program.steps):
            comm_time = 0.0
            for comm in step.comms:
                name, replica, tile_idx = comm.data
                matrix = matrices[name]
                if comm.data not in local_tiles:
                    if comm.owner == rank:
                        if not simulate_only:
                            local_tiles[comm.data] = matrix.tile(tile_idx, replica, rank=rank)
                    else:
                        if not simulate_only:
                            local_tiles[comm.data] = matrix.get_tile(
                                tile_idx, replica, initiator=rank
                            )
                        comm_time += self.cost_model.transfer_time(
                            comm.owner, rank, comm.nbytes
                        )
                        rank_stats.remote_get_bytes += comm.nbytes

            compute_time = 0.0
            accumulate_time = 0.0
            for compute in step.computes:
                op = ops[compute.op_index]
                if not simulate_only:
                    a_key: DataKey = ("A", op.a.replica, op.a.index)
                    b_key: DataKey = ("B", op.b.replica, op.b.index)
                    a_tile = resolve(a_key)
                    b_tile = resolve(b_key)
                    product = a_tile[op.a.local.as_slices()] @ b_tile[op.b.local.as_slices()]
                compute_time += self.cost_model.op_compute_time(op)
                rank_stats.flops += op.flops

                if op.c_is_remote:
                    if not simulate_only:
                        self.c.accumulate_tile(
                            op.c.index, product, replica_idx=op.c.replica,
                            initiator=rank, region=op.c.local,
                        )
                    accumulate_time += self.cost_model.accumulate_time(
                        rank, op.c.owner, op.c_bytes
                    )
                    rank_stats.remote_accumulate_bytes += op.c_bytes
                else:
                    if not simulate_only:
                        view = self.c.tile(op.c.index, op.c.replica, rank=rank)
                        view[op.c.local.as_slices()] += product
                    compute_time += self.cost_model.local_accumulate_time(op.c_bytes)

            rank_stats.compute_time += compute_time
            rank_stats.copy_time += comm_time
            rank_stats.accumulate_time += accumulate_time

            # One aggregate event per activity, all gated on the previous
            # step's barrier; the IR never models cross-rank contention, so
            # transfers are charged to the rank's own copy queue only.
            step_events: List[Optional[ScheduledEvent]] = []
            deps = (barrier,)
            if comm_time > 0.0:
                step_events.append(self.engine.fetch(
                    rank, comm_time, deps=deps, label=f"ir-comm:step{step_index}"
                ))
            if compute_time > 0.0:
                step_events.append(self.engine.gemm(
                    rank, compute_time, deps=deps, label=f"ir-compute:step{step_index}"
                ))
            if accumulate_time > 0.0:
                step_events.append(self.engine.accumulate(
                    rank, accumulate_time, deps=deps,
                    label=f"ir-accumulate:step{step_index}"
                ))
            if step_events:
                barrier = self.engine.sync(rank, deps=step_events + [barrier],
                                           label=f"ir-sync:step{step_index}")

        elapsed = barrier.end if barrier is not None else 0.0
        rank_stats.finish_time = elapsed
        return elapsed, rank_stats
