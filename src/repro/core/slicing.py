"""Op generation via slicing — the heart of the universal algorithm.

For a chosen data-movement strategy, each process enumerates the local matrix
multiplies that involve its stationary tiles by intersecting index ranges and
querying ``overlapping_tiles`` on the other two operands (paper Algorithms 1
and 2; the Stationary-A variant is analogous and spelled out here).

Replication is handled exactly as the paper describes: when the *stationary*
matrix is replicated with factor ``c``, each replica searches only its ``1/c``
share of the free dimension (the inner dimension ``k`` for Stationary C, the
``m`` dimension for Stationary B, the ``n`` dimension for Stationary A), so
that across replicas every elementary product is computed exactly once.  The
non-stationary operands are always read from — and accumulated into — the
executing rank's *local* replica, which is what lets replication of A, B, or
C "transparently" reduce communication without any algorithm changes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.ops import LocalMatmulOp, OperandRef
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.util.indexing import Interval, Rect
from repro.util.validation import ShapeError, check_matmul_shapes


def _operand_ref(matrix: DistributedMatrix, tile_idx, rank: int, region: Rect) -> OperandRef:
    """Build an :class:`OperandRef` for the given global region of one tile."""
    replica = matrix.replica_of_rank(rank)
    owner = matrix.owner_rank(tile_idx, replica)
    bounds = matrix.tile_bounds(tile_idx)
    return OperandRef(
        index=(int(tile_idx[0]), int(tile_idx[1])),
        replica=replica,
        owner=owner,
        local=region.localize(bounds),
    )


def _make_op(
    rank: int,
    a: DistributedMatrix,
    b: DistributedMatrix,
    c: DistributedMatrix,
    a_idx,
    b_idx,
    c_idx,
    m_bound: Interval,
    k_bound: Interval,
    n_bound: Interval,
    stationary_index,
) -> LocalMatmulOp:
    a_region = Rect(m_bound, k_bound)
    b_region = Rect(k_bound, n_bound)
    c_region = Rect(m_bound, n_bound)
    return LocalMatmulOp(
        rank=rank,
        a=_operand_ref(a, a_idx, rank, a_region),
        b=_operand_ref(b, b_idx, rank, b_region),
        c=_operand_ref(c, c_idx, rank, c_region),
        m_bound=m_bound,
        k_bound=k_bound,
        n_bound=n_bound,
        stationary_index=(int(stationary_index[0]), int(stationary_index[1])),
        itemsize=c.dtype.itemsize,
    )


def _problem_dims(a: DistributedMatrix, b: DistributedMatrix, c: DistributedMatrix):
    return check_matmul_shapes(a.shape, b.shape, c.shape)


def generate_stationary_c_ops(
    a: DistributedMatrix, b: DistributedMatrix, c: DistributedMatrix, rank: int
) -> List[LocalMatmulOp]:
    """Paper Algorithm 1: ops for the C tiles owned by ``rank``.

    For each owned C tile covering rows ``[om, om+tm)`` and columns
    ``[on, on+tn)``, every A tile overlapping ``A[om:om+tm, k_share]`` is
    multiplied with every B tile overlapping ``B[k_a, on:on+tn]``.
    """
    m, n, k = _problem_dims(a, b, c)
    del m, n
    replica = c.replica_of_rank(rank)
    k_share_start, k_share_stop = c.replication.work_share(replica, k)
    k_share = Interval(k_share_start, k_share_stop)

    ops: List[LocalMatmulOp] = []
    for c_idx in c.my_tiles(rank):
        c_bounds = c.tile_bounds(c_idx)
        a_tiles = a.overlapping_tiles(Rect(c_bounds.rows, k_share))
        for a_idx in a_tiles:
            a_bounds = a.tile_bounds(a_idx)
            m_bound = c_bounds.rows.intersect(a_bounds.rows)
            k_bound_a = a_bounds.cols.intersect(k_share)
            if not m_bound or not k_bound_a:
                continue
            b_tiles = b.overlapping_tiles(Rect(k_bound_a, c_bounds.cols))
            for b_idx in b_tiles:
                b_bounds = b.tile_bounds(b_idx)
                k_bound = k_bound_a.intersect(b_bounds.rows)
                n_bound = b_bounds.cols.intersect(c_bounds.cols)
                if not k_bound or not n_bound:
                    continue
                ops.append(
                    _make_op(rank, a, b, c, a_idx, b_idx, c_idx,
                             m_bound, k_bound, n_bound, c_idx)
                )
    return ops


def generate_stationary_b_ops(
    a: DistributedMatrix, b: DistributedMatrix, c: DistributedMatrix, rank: int
) -> List[LocalMatmulOp]:
    """Paper Algorithm 2: ops for the B tiles owned by ``rank``.

    For each owned B tile covering inner rows ``[ok, ok+tk)`` and columns
    ``[on, on+tn)``, every A tile overlapping ``A[m_share, ok:ok+tk]`` is
    multiplied against it, producing updates to the overlapping C tiles.
    """
    m, n, k = _problem_dims(a, b, c)
    del n, k
    replica = b.replica_of_rank(rank)
    m_share_start, m_share_stop = b.replication.work_share(replica, m)
    m_share = Interval(m_share_start, m_share_stop)

    ops: List[LocalMatmulOp] = []
    for b_idx in b.my_tiles(rank):
        b_bounds = b.tile_bounds(b_idx)
        a_tiles = a.overlapping_tiles(Rect(m_share, b_bounds.rows))
        for a_idx in a_tiles:
            a_bounds = a.tile_bounds(a_idx)
            m_bound_a = a_bounds.rows.intersect(m_share)
            k_bound = a_bounds.cols.intersect(b_bounds.rows)
            if not m_bound_a or not k_bound:
                continue
            c_tiles = c.overlapping_tiles(Rect(m_bound_a, b_bounds.cols))
            for c_idx in c_tiles:
                c_bounds = c.tile_bounds(c_idx)
                m_bound = m_bound_a.intersect(c_bounds.rows)
                n_bound = b_bounds.cols.intersect(c_bounds.cols)
                if not m_bound or not n_bound:
                    continue
                ops.append(
                    _make_op(rank, a, b, c, a_idx, b_idx, c_idx,
                             m_bound, k_bound, n_bound, b_idx)
                )
    return ops


def generate_stationary_a_ops(
    a: DistributedMatrix, b: DistributedMatrix, c: DistributedMatrix, rank: int
) -> List[LocalMatmulOp]:
    """Stationary-A variant (omitted in the paper "for brevity"; analogous to Algorithm 2).

    For each owned A tile covering rows ``[om, om+tm)`` and inner columns
    ``[ok, ok+tk)``, every B tile overlapping ``B[ok:ok+tk, n_share]`` is
    multiplied against it, producing updates to the overlapping C tiles.
    """
    m, n, k = _problem_dims(a, b, c)
    del m, k
    replica = a.replica_of_rank(rank)
    n_share_start, n_share_stop = a.replication.work_share(replica, n)
    n_share = Interval(n_share_start, n_share_stop)

    ops: List[LocalMatmulOp] = []
    for a_idx in a.my_tiles(rank):
        a_bounds = a.tile_bounds(a_idx)
        b_tiles = b.overlapping_tiles(Rect(a_bounds.cols, n_share))
        for b_idx in b_tiles:
            b_bounds = b.tile_bounds(b_idx)
            k_bound = a_bounds.cols.intersect(b_bounds.rows)
            n_bound_b = b_bounds.cols.intersect(n_share)
            if not k_bound or not n_bound_b:
                continue
            c_tiles = c.overlapping_tiles(Rect(a_bounds.rows, n_bound_b))
            for c_idx in c_tiles:
                c_bounds = c.tile_bounds(c_idx)
                m_bound = a_bounds.rows.intersect(c_bounds.rows)
                n_bound = n_bound_b.intersect(c_bounds.cols)
                if not m_bound or not n_bound:
                    continue
                ops.append(
                    _make_op(rank, a, b, c, a_idx, b_idx, c_idx,
                             m_bound, k_bound, n_bound, a_idx)
                )
    return ops


_GENERATORS = {
    Stationary.A: generate_stationary_a_ops,
    Stationary.B: generate_stationary_b_ops,
    Stationary.C: generate_stationary_c_ops,
}


def generate_local_ops(
    a: DistributedMatrix,
    b: DistributedMatrix,
    c: DistributedMatrix,
    stationary: Stationary,
    rank: int,
) -> List[LocalMatmulOp]:
    """Ops a single rank must execute under the given data-movement strategy."""
    generator = _GENERATORS[stationary]
    ops = generator(a, b, c, rank)
    return [op for op in ops if not op.is_empty]


def generate_all_ops(
    a: DistributedMatrix,
    b: DistributedMatrix,
    c: DistributedMatrix,
    stationary: Stationary,
) -> Dict[int, List[LocalMatmulOp]]:
    """Ops for every rank: ``{rank: [op, ...]}``."""
    return {
        rank: generate_local_ops(a, b, c, stationary, rank)
        for rank in range(a.runtime.num_ranks)
    }


def apply_iteration_offset(ops: Sequence[LocalMatmulOp]) -> List[LocalMatmulOp]:
    """Rotate each stationary tile's op group by the sum of its tile indices.

    Without this offset every process in a grid row or column starts by
    fetching the *same* remote tile at the same time, serialising on that
    tile's owner.  Rotating the execution order by ``i + j`` (as in prior
    one-sided work the paper cites) staggers the accesses (paper §4.2).
    """
    groups: Dict[tuple, List[LocalMatmulOp]] = {}
    order: List[tuple] = []
    for op in ops:
        key = op.stationary_index
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(op)

    result: List[LocalMatmulOp] = []
    for key in order:
        group = groups[key]
        offset = (key[0] + key[1]) % len(group) if group else 0
        result.extend(group[offset:])
        result.extend(group[:offset])
    return result


def check_coverage(
    a: DistributedMatrix,
    b: DistributedMatrix,
    c: DistributedMatrix,
    per_rank_ops: Dict[int, List[LocalMatmulOp]],
) -> None:
    """Verify that the generated ops tile the full m x n x k iteration space exactly once.

    This is the core correctness invariant of the slicing approach: every
    elementary product ``A[i, l] * B[l, j]`` must be contributed to ``C[i, j]``
    by exactly one op across all ranks (partial results in different C
    replicas are later combined by ``reduce_replicas``).  The check runs in
    O(total ops * log) using interval bookkeeping on the m/k/n bounds and is
    intended for tests and ``validate_ops`` mode, not production hot paths.
    """
    import numpy as np

    m, n, k = check_matmul_shapes(a.shape, b.shape, c.shape)
    # Use a coarse 3-D occupancy grid at tile-boundary granularity.
    m_cuts = sorted({0, m} | set(a.grid.row_splits) | set(c.grid.row_splits)
                    | {bound for ops in per_rank_ops.values() for op in ops
                       for bound in (op.m_bound.start, op.m_bound.stop)})
    k_cuts = sorted({0, k} | set(a.grid.col_splits) | set(b.grid.row_splits)
                    | {bound for ops in per_rank_ops.values() for op in ops
                       for bound in (op.k_bound.start, op.k_bound.stop)})
    n_cuts = sorted({0, n} | set(b.grid.col_splits) | set(c.grid.col_splits)
                    | {bound for ops in per_rank_ops.values() for op in ops
                       for bound in (op.n_bound.start, op.n_bound.stop)})

    counts = np.zeros((len(m_cuts) - 1, len(k_cuts) - 1, len(n_cuts) - 1), dtype=np.int64)

    def cell_range(cuts, interval: Interval):
        lo = cuts.index(interval.start)
        hi = cuts.index(interval.stop)
        return lo, hi

    for ops in per_rank_ops.values():
        for op in ops:
            m_lo, m_hi = cell_range(m_cuts, op.m_bound)
            k_lo, k_hi = cell_range(k_cuts, op.k_bound)
            n_lo, n_hi = cell_range(n_cuts, op.n_bound)
            counts[m_lo:m_hi, k_lo:k_hi, n_lo:n_hi] += 1

    if not np.all(counts == 1):
        uncovered = int(np.sum(counts == 0))
        duplicated = int(np.sum(counts > 1))
        raise ShapeError(
            "op generation does not cover the iteration space exactly once: "
            f"{uncovered} uncovered cells, {duplicated} multiply-covered cells"
        )
