"""Data-movement strategy selection (Stationary A, B, or C).

The paper's algorithm first picks which matrix stays in place; the other one
or two matrices are communicated.  "It is usually optimal for the largest
matrix to remain stationary, although the optimal choice is straightforward
to verify empirically or via a cost model."  Both the size heuristic and the
cost-model selection are provided here.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.cost_model import CostModel
    from repro.dist.matrix import DistributedMatrix


class Stationary(enum.Enum):
    """Which operand of ``C = A B`` remains in place."""

    A = "A"
    B = "B"
    C = "C"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Stationary {self.value}"


def parse_stationary(value) -> Stationary:
    """Accept a :class:`Stationary`, or a string like ``"A"`` / ``"stationary_c"``."""
    if isinstance(value, Stationary):
        return value
    if isinstance(value, str):
        key = value.strip().upper().replace("STATIONARY", "").replace("_", "").replace("-", "")
        if key in ("A", "B", "C"):
            return Stationary[key]
    raise ValueError(f"cannot interpret {value!r} as a stationary strategy")


def choose_stationary_by_size(
    a: "DistributedMatrix", b: "DistributedMatrix", c: "DistributedMatrix"
) -> Stationary:
    """Heuristic from the paper: keep the largest matrix stationary.

    Ties are broken in favour of C (avoiding remote accumulation), then B,
    matching the preference order implied by the paper's discussion of
    accumulate overhead.
    """
    sizes = {
        Stationary.C: c.shape[0] * c.shape[1],
        Stationary.B: b.shape[0] * b.shape[1],
        Stationary.A: a.shape[0] * a.shape[1],
    }
    # max() keeps the first key on ties thanks to the ordering above.
    return max(sizes, key=lambda strategy: sizes[strategy])


def choose_stationary_by_cost(
    a: "DistributedMatrix",
    b: "DistributedMatrix",
    c: "DistributedMatrix",
    cost_model: "CostModel",
) -> Stationary:
    """Pick the strategy whose modelled execution time is lowest.

    Generates the op list for every strategy and asks the cost model for its
    balance-aware estimate; this is the "straightforward to verify ... via a
    cost model" path of the paper, and is also exposed separately through
    :func:`estimate_all_strategies` for benchmarks that want the full table.
    """
    estimates = estimate_all_strategies(a, b, c, cost_model)
    return min(estimates, key=lambda strategy: estimates[strategy])


def estimate_all_strategies(
    a: "DistributedMatrix",
    b: "DistributedMatrix",
    c: "DistributedMatrix",
    cost_model: "CostModel",
) -> Dict[Stationary, float]:
    """Modelled execution time for each of the three data-movement strategies."""
    from repro.core.slicing import generate_all_ops

    estimates: Dict[Stationary, float] = {}
    for strategy in Stationary:
        per_rank_ops = generate_all_ops(a, b, c, strategy)
        estimates[strategy] = cost_model.estimate_op_lists(per_rank_ops)
    return estimates
