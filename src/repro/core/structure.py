"""Structured-sparsity descriptions of matmul workloads.

The planner's original cost surface assumed every workload was a dense GEMM:
all of ``A``, ``B``, and ``C`` carry useful data everywhere, so flops, tile
footprints, and traffic all scale with the envelope shape ``m x n x k``.
Block-sparse weights and MoE-style ragged batches break that assumption — the
dominant non-dense serving workloads do strictly *less* work than their dense
envelope, and where that work sits determines which partitioning wins.

A :class:`WorkloadStructure` describes which parts of the envelope are live:

* :class:`Dense` — everything is live (the historical behaviour, and the
  default on every :class:`~repro.bench.workloads.Workload`);
* :class:`BlockSparse` — ``B`` (the weights) is stored as a block grid over
  ``(k, n)`` with an explicit live/zero mask; masked blocks are neither
  stored, fetched, nor multiplied;
* :class:`MoERagged` — the ``m`` dimension is the concatenation of per-expert
  token groups padded to a uniform ``capacity`` (the dense envelope is
  ``num_experts * capacity`` rows); padding rows of ``A``/``C`` are skipped.

Every consumer asks the same three questions, all answered in *global*
coordinates of the envelope so ops and tiles can be priced uniformly:

* ``live_fraction(role, rows, cols)`` — what fraction of a rectangle of
  ``A``/``B``/``C`` is live (scales fetch and accumulate traffic);
* ``flops_fraction(m_bound, k_bound, n_bound)`` — what fraction of a
  cuboid's elementary products are computed (scales GEMM work);
* ``storage_bytes(role, rows, cols, itemsize)`` — how many bytes a matrix
  actually occupies (block formats store whole live blocks, ragged batches
  store live rows), used by the planner's memory-feasibility check.

Structure only changes the *time* model: structured execution is
simulate-only (the data path keeps its dense bit-exactness guarantees), and a
dense structure is gated to fall through to the exact pre-existing arithmetic
so committed benchmark snapshots reproduce with 0.0 drift.

The admissibility story carries over unchanged: every structured duration is
the dense duration scaled by a fraction in ``[0, 1]`` computed once and used
identically by the executor's event stream and by both planner lower bounds,
so "bound never exceeds simulated time" is preserved on sparse inputs.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.util.indexing import Interval, ceil_div

#: Operand roles, matching the labels used throughout the executors.
ROLE_A = "A"
ROLE_B = "B"
ROLE_C = "C"
_ROLES = (ROLE_A, ROLE_B, ROLE_C)


class WorkloadStructure:
    """Base class: a description of which parts of the envelope are live.

    Subclasses must be immutable and hashable (frozen dataclasses with tuple
    fields): structures are embedded in frozen :class:`Workload` and
    :class:`~repro.planner.signature.ProblemSignature` instances and used as
    cache-key components.
    """

    #: Stable kind tag used by serialization and signature tokens.
    kind: str = "abstract"

    # ------------------------------------------------------------------ #
    # live geometry
    # ------------------------------------------------------------------ #
    @property
    def is_dense(self) -> bool:
        return False

    def live_fraction(self, role: str, rows: Interval, cols: Interval) -> float:
        """Fraction of ``role``'s global rectangle that carries live data."""
        raise NotImplementedError

    def flops_fraction(self, m_bound: Interval, k_bound: Interval,
                       n_bound: Interval) -> float:
        """Fraction of the cuboid's elementary products actually computed."""
        raise NotImplementedError

    def op_fractions(self, m_bound: Interval, k_bound: Interval,
                     n_bound: Interval) -> Tuple[float, float, float, float]:
        """``(flops, a, b, c)`` live fractions of one op's cuboid, in one pass.

        This is the pricing hot path: the planner evaluates it per op per
        candidate per bound, so subclasses scan their mask/raggedness
        geometry exactly once and derive all four fractions from it.
        """
        return (
            self.flops_fraction(m_bound, k_bound, n_bound),
            self.live_fraction(ROLE_A, m_bound, k_bound),
            self.live_fraction(ROLE_B, k_bound, n_bound),
            self.live_fraction(ROLE_C, m_bound, n_bound),
        )

    def gemm_dims(self, m_bound: Interval, k_bound: Interval, n_bound: Interval,
                  flops_fraction: float) -> Tuple[float, float, float]:
        """Effective (m, n, k) of the op's live GEMM, for shape efficiency.

        Defaults to the envelope extents; structures that shrink a dimension
        (ragged rows) return the live extent so the shape model sees the
        smaller — less efficient — multiply that really runs.
        ``flops_fraction`` is the already-computed op fraction, so no
        structure needs a second geometry scan here.
        """
        del flops_fraction
        return (float(m_bound.extent), float(n_bound.extent), float(k_bound.extent))

    def effective_flops(self, m: int, n: int, k: int) -> float:
        """Total live flops of the whole problem (drives percent-of-peak)."""
        raise NotImplementedError

    def storage_bytes(self, role: str, rows: int, cols: int, itemsize: int) -> int:
        """Bytes one replica of ``role`` actually stores under this structure."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # envelope consistency / serialization / cache identity
    # ------------------------------------------------------------------ #
    def validate(self, m: int, n: int, k: int) -> None:
        """Raise ``ValueError`` unless this structure fits the envelope."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        raise NotImplementedError

    def signature_token(self) -> str:
        """Stable short string identifying this structure in cache keys."""
        raise NotImplementedError

    def bucket_envelope(self, m: int, n: int, k: int,
                        ratio: Optional[float]) -> Tuple[int, int, int, "WorkloadStructure"]:
        """Snap this structure (and the already-bucketed envelope) to its bucket corner.

        Returns ``(m, n, k, structure)`` for the bucket's canonical
        representative.  The corner must *dominate* every member of its
        bucket — at least as many live blocks/tokens, at least as large an
        envelope — so a plan computed (and memory-checked) for the corner
        stays feasible for every request that maps to the bucket.
        """
        raise NotImplementedError


def geometric_bucket(value: int, ratio: Optional[float]) -> int:
    """Snap a positive count to its geometric bucket's *upper corner*.

    Bucket ``i`` covers ``(ratio**(i-1/2), ratio**(i+1/2)]`` and the label is
    the largest value any member can have, so the corner never undercuts the
    value — which is what lets corner plans dominate their bucket members.
    The single rounding rule for every bucketed quantity: problem dimensions
    (:func:`repro.planner.signature.bucket_dim` delegates here), live block
    counts, expert capacities, and routed-token totals.  ``ratio <= 1`` (or
    ``None``) disables bucketing and returns the exact value.
    """
    if value < 1:
        raise ValueError(f"value must be positive, got {value}")
    if ratio is None or ratio <= 1.0:
        return int(value)
    index = round(math.log(value) / math.log(ratio))
    return max(int(value), int(math.ceil(ratio ** (index + 0.5))))


def _check_role(role: str) -> None:
    if role not in _ROLES:
        raise ValueError(f"unknown operand role {role!r}; expected one of {_ROLES}")


# ---------------------------------------------------------------------- #
# dense
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Dense(WorkloadStructure):
    """The historical default: every element of every operand is live."""

    kind = "dense"

    @property
    def is_dense(self) -> bool:
        return True

    def live_fraction(self, role: str, rows: Interval, cols: Interval) -> float:
        _check_role(role)
        return 1.0

    def flops_fraction(self, m_bound: Interval, k_bound: Interval,
                       n_bound: Interval) -> float:
        return 1.0

    def effective_flops(self, m: int, n: int, k: int) -> float:
        return 2.0 * m * n * k

    def storage_bytes(self, role: str, rows: int, cols: int, itemsize: int) -> int:
        _check_role(role)
        return rows * cols * itemsize

    def validate(self, m: int, n: int, k: int) -> None:
        return None

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind}

    def signature_token(self) -> str:
        return "dense"

    def bucket_envelope(self, m: int, n: int, k: int,
                        ratio: Optional[float]) -> Tuple[int, int, int, "WorkloadStructure"]:
        return m, n, k, self


#: The shared dense instance used as every Workload's default structure.
DENSE = Dense()


# ---------------------------------------------------------------------- #
# block-sparse weights
# ---------------------------------------------------------------------- #
def _interval_block_overlaps(bound: Interval, block: int, count: int):
    """Yield ``(index, overlap_extent)`` for grid blocks intersecting ``bound``."""
    if bound.extent <= 0:
        return
    first = bound.start // block
    last = min(count - 1, (bound.stop - 1) // block)
    for idx in range(first, last + 1):
        lo = max(bound.start, idx * block)
        hi = min(bound.stop, (idx + 1) * block)
        if hi > lo:
            yield idx, hi - lo


def even_spread_mask(k_blocks: int, n_blocks: int, live: int) -> Tuple[Tuple[bool, ...], ...]:
    """A deterministic mask with exactly ``live`` live blocks spread evenly.

    Used for bucket representatives: two requests whose masks share a live
    count bucket must canonicalize to the *same* mask, so cache identity
    cannot depend on the (arbitrary) original pattern.
    """
    total = k_blocks * n_blocks
    if not 1 <= live <= total:
        raise ValueError(f"live block count must be in [1, {total}], got {live}")
    chosen = {(index * total) // live for index in range(live)}
    flat = [cell in chosen for cell in range(total)]
    return tuple(
        tuple(flat[row * n_blocks:(row + 1) * n_blocks]) for row in range(k_blocks)
    )


@dataclass(frozen=True)
class BlockSparse(WorkloadStructure):
    """``B`` is block-sparse over a ``(k, n)`` block grid.

    ``mask[i][j]`` says whether block row ``i`` (inner-dimension range
    ``[i*block_k, (i+1)*block_k)``) and block column ``j`` (output-column
    range ``[j*block_n, (j+1)*block_n)``) holds a live block.  Masked blocks
    are not stored, never fetched, and contribute no flops; ``A`` and ``C``
    stay dense (activations and output), which keeps every structured
    duration at or below its dense counterpart.
    """

    kind = "block_sparse"

    block_k: int
    block_n: int
    #: ``mask[k_block][n_block]`` — True where the block is live.
    mask: Tuple[Tuple[bool, ...], ...]

    def __post_init__(self) -> None:
        if self.block_k < 1 or self.block_n < 1:
            raise ValueError("block sizes must be positive, got "
                             f"{self.block_k}x{self.block_n}")
        if not self.mask or not self.mask[0]:
            raise ValueError("mask must be a non-empty 2-D grid")
        width = len(self.mask[0])
        if any(len(row) != width for row in self.mask):
            raise ValueError("mask rows must all have the same length")
        if not any(any(row) for row in self.mask):
            raise ValueError("mask must have at least one live block")

    # -- derived geometry ------------------------------------------------ #
    @property
    def k_blocks(self) -> int:
        return len(self.mask)

    @property
    def n_blocks(self) -> int:
        return len(self.mask[0])

    @property
    def live_blocks(self) -> int:
        return sum(sum(1 for live in row if live) for row in self.mask)

    @property
    def density(self) -> float:
        """Live fraction of the block grid (the headline sparsity number)."""
        return self.live_blocks / (self.k_blocks * self.n_blocks)

    # -- structure API --------------------------------------------------- #
    def live_fraction(self, role: str, rows: Interval, cols: Interval) -> float:
        _check_role(role)
        if role != ROLE_B:
            return 1.0
        area = rows.extent * cols.extent
        if area <= 0:
            return 0.0
        live = 0
        for k_idx, k_extent in _interval_block_overlaps(rows, self.block_k, self.k_blocks):
            row_mask = self.mask[k_idx]
            for n_idx, n_extent in _interval_block_overlaps(cols, self.block_n, self.n_blocks):
                if row_mask[n_idx]:
                    live += k_extent * n_extent
        return live / area

    def flops_fraction(self, m_bound: Interval, k_bound: Interval,
                       n_bound: Interval) -> float:
        # A product A[i, l] * B[l, j] survives iff B's (l, j) block is live.
        return self.live_fraction(ROLE_B, k_bound, n_bound)

    def op_fractions(self, m_bound: Interval, k_bound: Interval,
                     n_bound: Interval) -> Tuple[float, float, float, float]:
        b_fraction = self.live_fraction(ROLE_B, k_bound, n_bound)
        return (b_fraction, 1.0, b_fraction, 1.0)

    def effective_flops(self, m: int, n: int, k: int) -> float:
        return 2.0 * m * self.live_fraction(ROLE_B, Interval(0, k), Interval(0, n)) * k * n

    def storage_bytes(self, role: str, rows: int, cols: int, itemsize: int) -> int:
        _check_role(role)
        if role != ROLE_B:
            return rows * cols * itemsize
        # Blocked sparse formats store whole live blocks (padding included):
        # counting full blocks keeps the bucket corner's footprint an upper
        # bound for every member mask, clipped or not.
        return min(rows * cols, self.live_blocks * self.block_k * self.block_n) * itemsize

    def validate(self, m: int, n: int, k: int) -> None:
        if self.k_blocks != ceil_div(k, self.block_k):
            raise ValueError(
                f"mask has {self.k_blocks} block rows but k={k} with "
                f"block_k={self.block_k} needs {ceil_div(k, self.block_k)}"
            )
        if self.n_blocks != ceil_div(n, self.block_n):
            raise ValueError(
                f"mask has {self.n_blocks} block columns but n={n} with "
                f"block_n={self.block_n} needs {ceil_div(n, self.block_n)}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "block_k": self.block_k,
            "block_n": self.block_n,
            "mask": ["".join("1" if live else "0" for live in row) for row in self.mask],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "BlockSparse":
        rows = payload["mask"]
        return cls(
            block_k=int(payload["block_k"]),  # type: ignore[arg-type]
            block_n=int(payload["block_n"]),  # type: ignore[arg-type]
            mask=tuple(tuple(ch == "1" for ch in str(row)) for row in rows),  # type: ignore[union-attr]
        )

    def signature_token(self) -> str:
        bits = "".join("1" if live else "0" for row in self.mask for live in row)
        digest = hashlib.sha1(bits.encode("ascii")).hexdigest()[:10]
        return (f"bs:{self.k_blocks}x{self.n_blocks}:{self.block_k}x{self.block_n}"
                f":l{self.live_blocks}:{digest}")

    def bucket_envelope(self, m: int, n: int, k: int,
                        ratio: Optional[float]) -> Tuple[int, int, int, "WorkloadStructure"]:
        if ratio is None or ratio <= 1.0:
            # Bucketing disabled: exact-match serving keeps the exact mask.
            return m, n, k, self
        # Keep the member's block sizes (they are format constants like 128),
        # re-derive the grid for the bucketed envelope, and snap the live
        # count to its bucket corner; the canonical even-spread mask makes
        # every member of the bucket map to the identical representative.
        k_blocks = ceil_div(k, self.block_k)
        n_blocks = ceil_div(n, self.block_n)
        live = min(k_blocks * n_blocks, geometric_bucket(self.live_blocks, ratio))
        corner = BlockSparse(block_k=self.block_k, block_n=self.block_n,
                             mask=even_spread_mask(k_blocks, n_blocks, live))
        return m, n, k, corner


# ---------------------------------------------------------------------- #
# MoE-ragged batches
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class MoERagged(WorkloadStructure):
    """The ``m`` dimension is a ragged batch of per-expert token groups.

    Expert ``e`` owns rows ``[e*capacity, (e+1)*capacity)`` of the envelope
    and fills only the first ``expert_tokens[e]`` of them; the rest is
    padding that is neither fetched, multiplied, nor accumulated.  ``B`` (the
    expert weights at a common shape) stays dense.  The envelope is
    ``m = num_experts * capacity`` — exactly the shape a capacity-factor MoE
    dispatch pads to — so the dense envelope is also the cost ceiling.
    """

    kind = "moe_ragged"

    #: Tokens routed to each expert (``0 <= tokens <= capacity``).
    expert_tokens: Tuple[int, ...]
    #: Padded rows per expert in the envelope.
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if not self.expert_tokens:
            raise ValueError("expert_tokens must name at least one expert")
        for expert, tokens in enumerate(self.expert_tokens):
            if not 0 <= tokens <= self.capacity:
                raise ValueError(
                    f"expert {expert} has {tokens} tokens, outside "
                    f"[0, capacity={self.capacity}]"
                )
        if self.total_tokens < 1:
            raise ValueError("at least one token must be routed to some expert")

    # -- derived geometry ------------------------------------------------ #
    @property
    def num_experts(self) -> int:
        return len(self.expert_tokens)

    @property
    def total_tokens(self) -> int:
        return sum(self.expert_tokens)

    @property
    def utilization(self) -> float:
        """Live fraction of the padded batch (the headline raggedness number)."""
        return self.total_tokens / (self.num_experts * self.capacity)

    def _live_rows(self, rows: Interval) -> int:
        if rows.extent <= 0:
            return 0
        live = 0
        first = rows.start // self.capacity
        last = min(self.num_experts - 1, (rows.stop - 1) // self.capacity)
        for expert in range(first, last + 1):
            lo = max(rows.start, expert * self.capacity)
            hi = min(rows.stop, expert * self.capacity + self.expert_tokens[expert])
            if hi > lo:
                live += hi - lo
        return live

    # -- structure API --------------------------------------------------- #
    def live_fraction(self, role: str, rows: Interval, cols: Interval) -> float:
        _check_role(role)
        if role == ROLE_B:
            return 1.0
        if rows.extent <= 0:
            return 0.0
        return self._live_rows(rows) / rows.extent

    def flops_fraction(self, m_bound: Interval, k_bound: Interval,
                       n_bound: Interval) -> float:
        # Only live token rows produce elementary products.
        return self.live_fraction(ROLE_A, m_bound, k_bound)

    def op_fractions(self, m_bound: Interval, k_bound: Interval,
                     n_bound: Interval) -> Tuple[float, float, float, float]:
        row_fraction = self.live_fraction(ROLE_A, m_bound, k_bound)
        return (row_fraction, row_fraction, 1.0, row_fraction)

    def gemm_dims(self, m_bound: Interval, k_bound: Interval, n_bound: Interval,
                  flops_fraction: float) -> Tuple[float, float, float]:
        # The live GEMM really runs with the smaller ragged m; surfacing it
        # to the shape model prices the efficiency loss of skinny expert
        # batches (still strictly below the dense envelope: flops shrink
        # linearly while the m efficiency factor shrinks sublinearly).
        return (flops_fraction * m_bound.extent, float(n_bound.extent),
                float(k_bound.extent))

    def effective_flops(self, m: int, n: int, k: int) -> float:
        return 2.0 * self.total_tokens * n * k

    def storage_bytes(self, role: str, rows: int, cols: int, itemsize: int) -> int:
        _check_role(role)
        if role == ROLE_B:
            return rows * cols * itemsize
        # A and C store live token rows only.
        return min(rows, self.total_tokens) * cols * itemsize

    def validate(self, m: int, n: int, k: int) -> None:
        envelope = self.num_experts * self.capacity
        if m != envelope:
            raise ValueError(
                f"MoE envelope mismatch: m={m} but {self.num_experts} experts "
                f"x capacity {self.capacity} = {envelope}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "expert_tokens": list(self.expert_tokens),
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MoERagged":
        return cls(
            expert_tokens=tuple(int(t) for t in payload["expert_tokens"]),  # type: ignore[union-attr]
            capacity=int(payload["capacity"]),  # type: ignore[arg-type]
        )

    def signature_token(self) -> str:
        blob = ",".join(str(t) for t in self.expert_tokens)
        digest = hashlib.sha1(blob.encode("ascii")).hexdigest()[:10]
        return f"moe:e{self.num_experts}:c{self.capacity}:t{self.total_tokens}:{digest}"

    def bucket_envelope(self, m: int, n: int, k: int,
                        ratio: Optional[float]) -> Tuple[int, int, int, "WorkloadStructure"]:
        # The envelope's m must stay expert-aligned, so bucket the capacity
        # (not m directly) and re-derive m; total routed tokens bucket to
        # their corner and are spread evenly — the balanced corner dominates
        # every ragged member (more tokens, larger capacity) so corner plans
        # stay memory-feasible for the whole bucket.  The balancing trades
        # skew fidelity for hit rate, exactly as shape bucketing trades
        # shape fidelity; services that need imbalance-exact plans disable
        # bucketing (ratio <= 1) and serve the exact ragged structure.
        del m
        if ratio is None or ratio <= 1.0:
            return self.num_experts * self.capacity, n, k, self
        experts = self.num_experts
        capacity = geometric_bucket(self.capacity, ratio)
        total = min(experts * capacity, geometric_bucket(self.total_tokens, ratio))
        base, extra = divmod(total, experts)
        tokens = tuple(base + 1 if expert < extra else base
                       for expert in range(experts))
        corner = MoERagged(expert_tokens=tokens, capacity=capacity)
        return experts * capacity, n, k, corner


# ---------------------------------------------------------------------- #
# serialization / helpers
# ---------------------------------------------------------------------- #
_STRUCTURE_KINDS = {
    Dense.kind: lambda payload: DENSE,
    BlockSparse.kind: BlockSparse.from_dict,
    MoERagged.kind: MoERagged.from_dict,
}


def structure_from_dict(payload: Optional[Mapping[str, object]]) -> WorkloadStructure:
    """Inverse of ``WorkloadStructure.to_dict`` (``None`` means dense)."""
    if payload is None:
        return DENSE
    kind = str(payload.get("kind", ""))
    try:
        factory = _STRUCTURE_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown workload structure kind {kind!r}; "
                         f"known: {sorted(_STRUCTURE_KINDS)}") from None
    return factory(payload)


def resolve_structure(structure: Optional[WorkloadStructure]) -> Optional[WorkloadStructure]:
    """Normalize to ``None`` for dense so hot paths can branch on identity."""
    if structure is None or structure.is_dense:
        return None
    return structure


def prune_structured_ops(per_rank_ops: Mapping[int, Sequence], structure: WorkloadStructure):
    """Drop ops whose entire cuboid is masked/padded (no flops survive).

    Applied identically before simulation and before bound computation, so
    the planner's lower bounds and the event engine always price the same op
    stream — which is what keeps the bounds admissible on sparse inputs.
    """
    return {
        rank: [op for op in ops
               if structure.flops_fraction(op.m_bound, op.k_bound, op.n_bound) > 0.0]
        for rank, ops in per_rank_ops.items()
    }
