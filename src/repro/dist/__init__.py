"""repro.dist — the distributed-matrix data structure layer.

The layering inside the package is strictly bottom-up:

``tile_grid``
    Pure geometry: split lists, tile bounds, and the O(log n)
    ``overlapping_tiles`` range query.
``process_grid``
    Factoring rank counts into 2-D grids and the row-major coordinate map.
``replication``
    Replica groups and the per-replica ``work_share`` rule.
``partition``
    Strategies mapping (shape, owner count) to a tile grid + owner map.
``matrix``
    :class:`DistributedMatrix` — the Table 1 primitive set, backed by the
    simulated PGAS runtime.
``redistribute``
    Layout conversion priced through the runtime's traffic/clock model.

Everything above this package (``repro.core``, the baselines, the bench
harness) consumes distributed matrices only through the interfaces exported
here.
"""

from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import (
    Block2D,
    BlockCyclic,
    ColumnBlock,
    CustomTiles,
    Partition,
    RowBlock,
)
from repro.dist.process_grid import ProcessGrid, near_square_factors
from repro.dist.redistribute import redistribute, redistribution_cost
from repro.dist.replication import ReplicationSpec
from repro.dist.tile_grid import TileGrid

__all__ = [
    "Block2D",
    "BlockCyclic",
    "ColumnBlock",
    "CustomTiles",
    "DistributedMatrix",
    "Partition",
    "ProcessGrid",
    "ReplicationSpec",
    "RowBlock",
    "TileGrid",
    "near_square_factors",
    "redistribute",
    "redistribution_cost",
]
