"""The distributed matrix: tiles + owners + replicas on the PGAS runtime.

A :class:`DistributedMatrix` combines

* a :class:`~repro.dist.tile_grid.TileGrid` (where the tiles are),
* an owner map from a :class:`~repro.dist.partition.Partition` (which
  per-replica position holds each tile), and
* a :class:`~repro.dist.replication.ReplicationSpec` (how the ranks divide
  into replica groups),

and materialises each tile as a runtime allocation present on its ``c``
owner ranks — one per replica — addressable from any rank through one-sided
``get``/``put``/``accumulate``.  The method set is the paper's Table 1
primitive set: ``grid_shape``, ``tile``, ``get_tile``, ``get_tile_async``,
``accumulate_tile``, ``broadcast_replica``, ``reduce_replicas``,
``overlapping_tiles``, and ``tile_bounds``.

Data *distribution* helpers (``from_dense``, ``to_dense``, ``fill``,
``fill_random``) write through local heap views without touching the traffic
counters or the simulated clock: they model out-of-band data loading, so the
accounted communication of an execution is exactly what the algorithm itself
moved.  ``materialize=False`` builds the metadata only (no allocations),
which is what the simulate-only benchmark sweeps use to explore full-size
problems without the memory footprint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dist.partition import Partition
from repro.dist.replication import ReplicationSpec
from repro.dist.tile_grid import TileGrid, TileIndex
from repro.runtime.future import Future
from repro.runtime.memory import SymmetricHandle
from repro.runtime.runtime import Runtime
from repro.util.indexing import Rect
from repro.util.validation import (
    CommunicationError,
    PartitionError,
    check_in_range,
    check_matrix,
)


class DistributedMatrix:
    """A dense 2-D matrix tiled and replicated over the ranks of a runtime."""

    def __init__(
        self,
        runtime: Runtime,
        shape: Sequence[int],
        partition: Partition,
        replication: int = 1,
        dtype: Union[np.dtype, type, str] = np.float32,
        name: str = "",
        materialize: bool = True,
    ) -> None:
        self.runtime = runtime
        self.shape: Tuple[int, int] = (int(shape[0]), int(shape[1]))
        if self.shape[0] <= 0 or self.shape[1] <= 0:
            raise PartitionError(f"matrix shape must be positive, got {self.shape}")
        self.partition = partition
        self.dtype = np.dtype(dtype)
        self.name = name or "matrix"
        self.replication = ReplicationSpec(runtime.num_ranks, replication)
        grid, owners = partition.build(self.shape, self.replication.ranks_per_replica)
        if grid.matrix_shape != self.shape:
            raise PartitionError(
                f"partition {partition.name!r} built a grid covering "
                f"{grid.matrix_shape}, expected {self.shape}"
            )
        self.grid: TileGrid = grid
        self._owners = np.asarray(owners, dtype=np.int64)
        if self._owners.shape != grid.shape:
            raise PartitionError(
                f"owner map shape {self._owners.shape} does not match the "
                f"{grid.shape} tile grid"
            )
        self._tiles_by_position: Dict[int, List[TileIndex]] = {}
        for idx in grid.tiles():
            position = int(self._owners[idx])
            check_in_range(position, 0, self.replication.ranks_per_replica, "owner position")
            self._tiles_by_position.setdefault(position, []).append(idx)
        self.materialized = bool(materialize)
        self._freed = False
        self._handles: Dict[TileIndex, SymmetricHandle] = {}
        if self.materialized:
            self._allocate_tiles()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        runtime: Runtime,
        shape: Sequence[int],
        partition: Partition,
        replication: int = 1,
        dtype: Union[np.dtype, type, str] = np.float32,
        name: str = "",
        materialize: bool = True,
    ) -> "DistributedMatrix":
        """Create a zero-initialised distributed matrix (Table 1 ``create``)."""
        return cls(runtime, shape, partition, replication=replication, dtype=dtype,
                   name=name, materialize=materialize)

    @classmethod
    def from_dense(
        cls,
        runtime: Runtime,
        dense: np.ndarray,
        partition: Partition,
        replication: int = 1,
        name: str = "",
    ) -> "DistributedMatrix":
        """Distribute an in-memory dense matrix (out-of-band, no traffic)."""
        dense = check_matrix(dense, name or "dense")
        matrix = cls(runtime, dense.shape, partition, replication=replication,
                     dtype=dense.dtype, name=name, materialize=True)
        matrix._scatter(dense)
        return matrix

    def _allocate_tiles(self) -> None:
        for idx in self.grid.tiles():
            position = int(self._owners[idx])
            owner_ranks = [
                self.replication.rank_of(replica, position)
                for replica in range(self.replication.num_replicas)
            ]
            self._handles[idx] = self.runtime.allocate_on(
                owner_ranks,
                self.grid.tile_shape(idx),
                dtype=self.dtype,
                label=f"{self.name}{idx}",
                fill=0.0,
            )

    def _handle(self, idx: TileIndex) -> SymmetricHandle:
        idx = (int(idx[0]), int(idx[1]))
        try:
            return self._handles[idx]
        except KeyError:
            if not self.materialized:
                reason = ("its tiles were released by free()" if self._freed
                          else "it was created with materialize=False")
                raise CommunicationError(
                    f"matrix {self.name!r} has no tile storage: {reason}"
                ) from None
            self.grid.tile_bounds(idx)  # raises PartitionError on a bad index
            raise

    # ------------------------------------------------------------------ #
    # layout queries (Table 1: grid_shape / tile_bounds / overlapping_tiles)
    # ------------------------------------------------------------------ #
    def grid_shape(self) -> Tuple[int, int]:
        """Shape of the tile grid: ``(row tiles, column tiles)``."""
        return self.grid.shape

    def tiles(self):
        """All tile indices in row-major order."""
        return self.grid.tiles()

    def tile_bounds(self, idx: TileIndex) -> Rect:
        """Global index bounds of tile ``idx``."""
        return self.grid.tile_bounds(idx)

    def overlapping_tiles(self, rect: Rect, replica_idx: int = 0) -> List[TileIndex]:
        """Tiles intersecting a global rectangle (same grid in every replica)."""
        del replica_idx  # all replicas share one tiling
        return self.grid.overlapping_tiles(rect)

    # ------------------------------------------------------------------ #
    # ownership
    # ------------------------------------------------------------------ #
    def owner_rank(self, idx: TileIndex, replica_idx: int) -> int:
        """Global rank holding tile ``idx`` in replica ``replica_idx``."""
        i, j = int(idx[0]), int(idx[1])
        if not (0 <= i < self.grid.num_row_tiles and 0 <= j < self.grid.num_col_tiles):
            raise PartitionError(
                f"tile index ({i}, {j}) out of range for a "
                f"{self.grid.num_row_tiles}x{self.grid.num_col_tiles} grid"
            )
        return self.replication.rank_of(replica_idx, int(self._owners[i, j]))

    def replica_of_rank(self, rank: int) -> int:
        """The replica group ``rank`` belongs to (its local copy)."""
        return self.replication.replica_of_rank(rank)

    def my_tiles(self, rank: int) -> List[TileIndex]:
        """Tile indices owned by ``rank`` within its own replica group."""
        position = self.replication.position_of_rank(rank)
        return list(self._tiles_by_position.get(position, ()))

    # ------------------------------------------------------------------ #
    # tile access (Table 1: tile / get_tile / get_tile_async / accumulate_tile)
    # ------------------------------------------------------------------ #
    def tile(self, idx: TileIndex, replica_idx: int = 0,
             rank: Optional[int] = None) -> np.ndarray:
        """Zero-copy view of a tile, valid only on its owner rank."""
        owner = self.owner_rank(idx, replica_idx)
        if rank is not None and rank != owner:
            raise CommunicationError(
                f"tile{tuple(idx)} of {self.name!r} (replica {replica_idx}) lives on "
                f"rank {owner}; rank {rank} must use get_tile()"
            )
        return self.runtime.local_view(self._handle(idx), owner)

    def get_tile(self, idx: TileIndex, replica_idx: int = 0, *,
                 initiator: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One-sided copy of a tile into the initiator's memory."""
        owner = self.owner_rank(idx, replica_idx)
        return self.runtime.get(self._handle(idx), owner, initiator=initiator, out=out)

    def get_tile_async(self, idx: TileIndex, replica_idx: int = 0, *,
                       initiator: int) -> Future:
        """Asynchronous one-sided tile copy returning a future."""
        owner = self.owner_rank(idx, replica_idx)
        return self.runtime.get_async(self._handle(idx), owner, initiator=initiator)

    def put_tile(self, idx: TileIndex, data: np.ndarray, replica_idx: int = 0, *,
                 initiator: int, region: Optional[Rect] = None) -> None:
        """One-sided write into (a sub-rectangle of) a tile."""
        owner = self.owner_rank(idx, replica_idx)
        self.runtime.put(self._handle(idx), owner, data, initiator=initiator, rect=region)

    def accumulate_tile(self, idx: TileIndex, data: np.ndarray, replica_idx: int = 0, *,
                        initiator: int, region: Optional[Rect] = None) -> None:
        """One-sided atomic ``+=`` into (a sub-rectangle of) a tile."""
        owner = self.owner_rank(idx, replica_idx)
        self.runtime.accumulate(self._handle(idx), owner, data, initiator=initiator,
                                rect=region)

    # ------------------------------------------------------------------ #
    # replica collectives (Table 1: broadcast_replica / reduce_replicas)
    # ------------------------------------------------------------------ #
    def broadcast_replica(self, origin_idx: int = 0) -> None:
        """Copy every tile of replica ``origin_idx`` into all other replicas."""
        check_in_range(origin_idx, 0, self.replication.num_replicas, "origin_idx")
        for idx in self.grid.tiles():
            handle = self._handle(idx)
            origin_owner = self.owner_rank(idx, origin_idx)
            data = self.runtime.local_view(handle, origin_owner)
            for replica in range(self.replication.num_replicas):
                if replica == origin_idx:
                    continue
                self.runtime.put(handle, self.owner_rank(idx, replica), data,
                                 initiator=origin_owner)

    def reduce_replicas(self, origin_idx: int = 0) -> None:
        """Accumulate every replica's tiles into replica ``origin_idx``.

        Each non-origin owner one-sidedly accumulates its copy into the origin
        owner's tile — the replicated-C epilogue of the universal algorithm.
        Non-origin replicas keep their partial values.
        """
        check_in_range(origin_idx, 0, self.replication.num_replicas, "origin_idx")
        for idx in self.grid.tiles():
            handle = self._handle(idx)
            origin_owner = self.owner_rank(idx, origin_idx)
            for replica in range(self.replication.num_replicas):
                if replica == origin_idx:
                    continue
                source_owner = self.owner_rank(idx, replica)
                data = self.runtime.local_view(handle, source_owner)
                self.runtime.accumulate(handle, origin_owner, data,
                                        initiator=source_owner)

    # ------------------------------------------------------------------ #
    # whole-matrix data movement (out-of-band: no traffic, no clock)
    # ------------------------------------------------------------------ #
    def _scatter(self, dense: np.ndarray) -> None:
        for idx in self.grid.tiles():
            handle = self._handle(idx)
            block = dense[self.grid.tile_bounds(idx).as_slices()]
            for replica in range(self.replication.num_replicas):
                view = self.runtime.local_view(handle, self.owner_rank(idx, replica))
                np.copyto(view, block)

    def load_dense(self, dense: np.ndarray) -> None:
        """Overwrite the matrix (every replica) with an in-memory dense array."""
        dense = check_matrix(dense, self.name)
        if tuple(dense.shape) != self.shape:
            raise PartitionError(
                f"dense array shape {dense.shape} does not match matrix shape "
                f"{self.shape}"
            )
        self._scatter(dense.astype(self.dtype, copy=False))

    def to_dense(self, replica_idx: int = 0) -> np.ndarray:
        """Assemble the full matrix from one replica's tiles."""
        check_in_range(replica_idx, 0, self.replication.num_replicas, "replica_idx")
        out = np.empty(self.shape, dtype=self.dtype)
        for idx in self.grid.tiles():
            view = self.runtime.local_view(self._handle(idx),
                                           self.owner_rank(idx, replica_idx))
            out[self.grid.tile_bounds(idx).as_slices()] = view
        return out

    def fill(self, value: float) -> None:
        """Set every element (in every replica) to ``value``."""
        for idx in self.grid.tiles():
            handle = self._handle(idx)
            for replica in range(self.replication.num_replicas):
                self.runtime.local_view(handle, self.owner_rank(idx, replica)).fill(value)

    def zero(self) -> None:
        """Reset the matrix to zero in every replica."""
        self.fill(0.0)

    def fill_random(self, seed: int = 0) -> None:
        """Fill with a deterministic standard-normal matrix (replica-consistent)."""
        rng = np.random.default_rng(seed)
        self._scatter(rng.standard_normal(self.shape).astype(self.dtype))

    # ------------------------------------------------------------------ #
    def free(self) -> None:
        """Release all tile allocations (the metadata stays usable)."""
        for handle in self._handles.values():
            self.runtime.free(handle)
        self._handles.clear()
        self.materialized = False
        self._freed = True

    @property
    def nbytes_per_replica(self) -> int:
        """Bytes of tile storage one replica holds (across its ranks)."""
        rows, cols = self.shape
        return rows * cols * self.dtype.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedMatrix({self.name!r}, shape={self.shape}, "
            f"partition={self.partition.name!r}, "
            f"tiles={self.grid.num_row_tiles}x{self.grid.num_col_tiles}, "
            f"replication={self.replication.factor}, dtype={self.dtype.name})"
        )
