"""Partitioning strategies: shape + rank count -> tile grid + owner map.

A :class:`Partition` turns a matrix shape and the number of owning processes
(the ranks of *one* replica group) into a :class:`~repro.dist.tile_grid.TileGrid`
and an owner map assigning each tile a position in ``[0, num_owners)``.
Positions are per-replica; :class:`~repro.dist.matrix.DistributedMatrix`
combines them with a :class:`~repro.dist.replication.ReplicationSpec` to get
global ranks.

The strategies mirror the paper's evaluation space:

* :class:`RowBlock` / :class:`ColumnBlock` — 1-D block panels, one per owner.
* :class:`Block2D` — 2-D blocks on a (near-square or explicit) process grid.
* :class:`BlockCyclic` — fixed-size tiles dealt cyclically over a process
  grid, the classical ScaLAPACK layout.
* :class:`CustomTiles` — arbitrary user-provided split points (the paper's
  Figure 1 misaligned-tiles scenario); owners are assigned round-robin.

Owner maps are row-major everywhere: tile ``(i, j)`` of a ``pr x pc`` grid
belongs to position ``i * pc + j``, consistent with
:mod:`repro.dist.process_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.dist.process_grid import near_square_factors
from repro.dist.tile_grid import TileGrid
from repro.util.indexing import split_extent
from repro.util.validation import PartitionError, check_positive_int


def _block_splits(extent: int, parts: int) -> Tuple[int, ...]:
    """Split points for ``parts`` contiguous near-equal blocks of ``extent``.

    When ``parts`` exceeds ``extent`` the number of blocks is clamped so that
    every tile is non-empty (surplus owners simply own nothing).
    """
    check_positive_int(extent, "extent")
    effective = max(1, min(parts, extent))
    splits = [0]
    for length in split_extent(extent, effective):
        splits.append(splits[-1] + length)
    return tuple(splits)


class Partition:
    """Base class of all partitioning strategies."""

    #: Short name used in result metadata and reports.
    name: str = "partition"

    def build(self, shape: Tuple[int, int], num_owners: int) -> Tuple[TileGrid, np.ndarray]:
        """Return ``(grid, owners)`` for a matrix of ``shape`` over ``num_owners``.

        ``owners`` has one entry per tile (same 2-D layout as the grid) whose
        value is the owning position within a replica group.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _round_robin_owners(grid: TileGrid, num_owners: int) -> np.ndarray:
    """Row-major round-robin owner assignment (exact when tiles == owners)."""
    linear = np.arange(grid.num_tiles, dtype=np.int64) % num_owners
    return linear.reshape(grid.num_row_tiles, grid.num_col_tiles)


@dataclass(frozen=True)
class RowBlock(Partition):
    """1-D partitioning into contiguous row panels, one per owner.

    ``num_blocks`` overrides the panel count (defaults to the owner count);
    panels are assigned to positions in order.
    """

    num_blocks: Optional[int] = None
    name = "row"

    def build(self, shape: Tuple[int, int], num_owners: int) -> Tuple[TileGrid, np.ndarray]:
        check_positive_int(num_owners, "num_owners")
        rows, cols = int(shape[0]), int(shape[1])
        blocks = num_owners if self.num_blocks is None else \
            check_positive_int(self.num_blocks, "num_blocks")
        grid = TileGrid(_block_splits(rows, blocks), (0, cols))
        return grid, _round_robin_owners(grid, num_owners)


@dataclass(frozen=True)
class ColumnBlock(Partition):
    """1-D partitioning into contiguous column panels, one per owner."""

    num_blocks: Optional[int] = None
    name = "column"

    def build(self, shape: Tuple[int, int], num_owners: int) -> Tuple[TileGrid, np.ndarray]:
        check_positive_int(num_owners, "num_owners")
        rows, cols = int(shape[0]), int(shape[1])
        blocks = num_owners if self.num_blocks is None else \
            check_positive_int(self.num_blocks, "num_blocks")
        grid = TileGrid((0, rows), _block_splits(cols, blocks))
        return grid, _round_robin_owners(grid, num_owners)


@dataclass(frozen=True)
class Block2D(Partition):
    """2-D block partitioning on a process grid.

    Without arguments the owner count is factored into a near-square
    ``pr x pc`` grid (``pr <= pc``); ``grid_rows``/``grid_cols`` pin the grid
    explicitly (the benchmark schemes use this to aspect-match the matrix).
    """

    grid_rows: Optional[int] = None
    grid_cols: Optional[int] = None
    name = "block"

    def _grid_dims(self, num_owners: int) -> Tuple[int, int]:
        if self.grid_rows is not None and self.grid_cols is not None:
            if self.grid_rows * self.grid_cols != num_owners:
                raise PartitionError(
                    f"grid {self.grid_rows}x{self.grid_cols} does not cover "
                    f"{num_owners} owners"
                )
            return int(self.grid_rows), int(self.grid_cols)
        if self.grid_rows is not None:
            if num_owners % self.grid_rows:
                raise PartitionError(
                    f"grid_rows={self.grid_rows} does not divide {num_owners} owners"
                )
            return int(self.grid_rows), num_owners // int(self.grid_rows)
        if self.grid_cols is not None:
            if num_owners % self.grid_cols:
                raise PartitionError(
                    f"grid_cols={self.grid_cols} does not divide {num_owners} owners"
                )
            return num_owners // int(self.grid_cols), int(self.grid_cols)
        return near_square_factors(num_owners)

    def build(self, shape: Tuple[int, int], num_owners: int) -> Tuple[TileGrid, np.ndarray]:
        check_positive_int(num_owners, "num_owners")
        rows, cols = int(shape[0]), int(shape[1])
        grid_rows, grid_cols = self._grid_dims(num_owners)
        grid = TileGrid(_block_splits(rows, grid_rows), _block_splits(cols, grid_cols))
        # One tile per grid position; tiny extents only clamp the tile count,
        # so positions stay below grid_rows * grid_cols == num_owners.
        owners = (
            np.arange(grid.num_row_tiles, dtype=np.int64)[:, None] * grid_cols
            + np.arange(grid.num_col_tiles, dtype=np.int64)[None, :]
        )
        return grid, owners


@dataclass(frozen=True)
class BlockCyclic(Partition):
    """Fixed-size tiles dealt cyclically over a process grid (ScaLAPACK-style).

    ``tile_shape`` fixes the tile extent (the trailing tiles are clipped to
    the matrix); tile ``(i, j)`` belongs to grid position
    ``(i mod pr, j mod pc)``.
    """

    tile_shape: Tuple[int, int] = (64, 64)
    grid: Optional[Tuple[int, int]] = None
    name = "block_cyclic"

    def build(self, shape: Tuple[int, int], num_owners: int) -> Tuple[TileGrid, np.ndarray]:
        check_positive_int(num_owners, "num_owners")
        rows, cols = int(shape[0]), int(shape[1])
        tile_rows, tile_cols = int(self.tile_shape[0]), int(self.tile_shape[1])
        check_positive_int(tile_rows, "tile rows")
        check_positive_int(tile_cols, "tile cols")
        row_splits = tuple(range(0, rows, tile_rows)) + (rows,)
        col_splits = tuple(range(0, cols, tile_cols)) + (cols,)
        grid = TileGrid(row_splits, col_splits)
        if self.grid is None:
            grid_rows, grid_cols = near_square_factors(num_owners)
        else:
            grid_rows, grid_cols = int(self.grid[0]), int(self.grid[1])
            check_positive_int(grid_rows, "grid rows")
            check_positive_int(grid_cols, "grid cols")
            if grid_rows * grid_cols != num_owners:
                raise PartitionError(
                    f"process grid {grid_rows}x{grid_cols} does not cover "
                    f"{num_owners} owners"
                )
        owners = (
            (np.arange(grid.num_row_tiles, dtype=np.int64)[:, None] % grid_rows) * grid_cols
            + (np.arange(grid.num_col_tiles, dtype=np.int64)[None, :] % grid_cols)
        )
        return grid, owners


class CustomTiles(Partition):
    """Arbitrary tile boundaries supplied directly as split lists.

    The split lists must start at 0 and end at the matrix extent (validated
    against the shape at build time).  Owners are assigned round-robin over
    the row-major tile order, so any tile count works with any owner count.
    """

    name = "custom"

    def __init__(self, row_splits: Sequence[int], col_splits: Sequence[int]) -> None:
        self.row_splits = tuple(int(s) for s in row_splits)
        self.col_splits = tuple(int(s) for s in col_splits)

    def build(self, shape: Tuple[int, int], num_owners: int) -> Tuple[TileGrid, np.ndarray]:
        check_positive_int(num_owners, "num_owners")
        grid = TileGrid(self.row_splits, self.col_splits)
        rows, cols = int(shape[0]), int(shape[1])
        if grid.matrix_shape != (rows, cols):
            raise PartitionError(
                f"custom tile splits cover {grid.matrix_shape}, but the matrix "
                f"shape is {(rows, cols)}"
            )
        return grid, _round_robin_owners(grid, num_owners)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CustomTiles({list(self.row_splits)}, {list(self.col_splits)})"
