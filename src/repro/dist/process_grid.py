"""Process grids: factoring a rank count into a 2-D grid and mapping coordinates.

Block partitionings place tile ``(i, j)`` on the process at grid coordinate
``(i, j)`` of a logical process grid.  The grid is row-major: coordinate
``(i, j)`` of a ``rows x cols`` grid is position ``i * cols + j``, which is
the convention every owner map in :mod:`repro.dist.partition` and the aligned
baselines (SUMMA, Cannon) share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.util.validation import check_in_range, check_positive_int


def near_square_factors(count: int) -> Tuple[int, int]:
    """Factor ``count`` into ``(rows, cols)`` with ``rows <= cols``, as square as possible.

    ``rows`` is the largest divisor of ``count`` that does not exceed
    ``sqrt(count)``, so e.g. ``6 -> (2, 3)``, ``12 -> (3, 4)``, ``7 -> (1, 7)``.
    """
    check_positive_int(count, "count")
    rows = 1
    for candidate in range(1, int(math.isqrt(count)) + 1):
        if count % candidate == 0:
            rows = candidate
    return rows, count // rows


@dataclass(frozen=True, slots=True)
class ProcessGrid:
    """A row-major ``rows x cols`` grid of process positions."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        check_positive_int(self.rows, "rows")
        check_positive_int(self.cols, "cols")

    @classmethod
    def near_square(cls, count: int) -> "ProcessGrid":
        rows, cols = near_square_factors(count)
        return cls(rows, cols)

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def position_of(self, row: int, col: int) -> int:
        """Linear position of grid coordinate ``(row, col)``."""
        check_in_range(row, 0, self.rows, "row")
        check_in_range(col, 0, self.cols, "col")
        return row * self.cols + col

    def coords_of(self, position: int) -> Tuple[int, int]:
        """Grid coordinate of a linear position (inverse of :meth:`position_of`)."""
        check_in_range(position, 0, self.size, "position")
        return divmod(position, self.cols)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for row in range(self.rows):
            for col in range(self.cols):
                yield (row, col)
