"""Layout conversion: reshard a distributed matrix onto a new partitioning.

``redistribute`` is what an SPMD system does implicitly before every multiply
whose operand layouts do not match its kernels; the universal algorithm makes
it unnecessary, and this module exists so benchmarks and tests can price that
alternative honestly.  Unlike the out-of-band ``from_dense``/``to_dense``
helpers, redistribution is charged through the runtime: every cross-rank move
is a one-sided ``get`` recorded in the traffic counters, and its modelled
duration occupies the source's egress, the destination's copy engine, and the
link between them on the simulated clock.

Each destination owner pulls the overlapping regions of the source tiles from
the source replica group *it belongs to* (reads are local whenever the two
layouts co-locate data), which is the same locality rule the executors use.
Both :func:`redistribute` and :func:`redistribution_cost` walk the one
transfer set produced by :func:`_transfer_plan`, so the priced cost cannot
drift from the charged cost.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Partition
from repro.runtime.clock import COPY, EGRESS
from repro.util.indexing import Rect

#: One region move: (src tile, dst tile, overlap rect, src rank, dst rank).
Transfer = Tuple[Tuple[int, int], Tuple[int, int], Rect, int, int]


def _transfer_plan(matrix: DistributedMatrix,
                   target: DistributedMatrix) -> Iterator[Transfer]:
    """Enumerate every region move taking ``matrix``'s layout to ``target``'s.

    The overlap geometry is replica-invariant, so it is computed once per
    destination tile and reused across the target's replica groups.
    """
    for dst_idx in target.grid.tiles():
        dst_bounds = target.tile_bounds(dst_idx)
        overlaps = [
            (src_idx, matrix.tile_bounds(src_idx).intersect(dst_bounds))
            for src_idx in matrix.overlapping_tiles(dst_bounds)
        ]
        for replica in range(target.replication.num_replicas):
            dst_owner = target.owner_rank(dst_idx, replica)
            # Pull from the source replica group the destination rank is in.
            src_replica = matrix.replica_of_rank(dst_owner)
            for src_idx, region in overlaps:
                if region:
                    yield (src_idx, dst_idx, region,
                           matrix.owner_rank(src_idx, src_replica), dst_owner)


def redistribute(
    matrix: DistributedMatrix,
    partition: Partition,
    replication: Optional[int] = None,
    name: Optional[str] = None,
) -> DistributedMatrix:
    """Return a copy of ``matrix`` laid out by ``partition`` (and ``replication``).

    The source is left untouched.  The new matrix lives on the same runtime
    with the same shape and dtype; ``replication`` defaults to the source's
    factor.  For a source created with ``materialize=False`` the clock is
    still charged (so simulate-only sweeps can price a reshard), but the
    traffic counters — which record real data movement only — stay untouched;
    use :func:`redistribution_cost` for the byte count in that mode.
    """
    runtime = matrix.runtime
    factor = matrix.replication.factor if replication is None else int(replication)
    target = DistributedMatrix.create(
        runtime,
        matrix.shape,
        partition,
        replication=factor,
        dtype=matrix.dtype,
        name=name or f"{matrix.name}->{partition.name}",
        materialize=matrix.materialized,
    )

    itemsize = matrix.dtype.itemsize
    for src_idx, dst_idx, region, src_owner, dst_owner in _transfer_plan(matrix, target):
        _charge_transfer(runtime, src_owner, dst_owner, region.size * itemsize)
        if not matrix.materialized:
            continue
        data = runtime.get(
            matrix._handle(src_idx), src_owner, initiator=dst_owner,
            rect=region.localize(matrix.tile_bounds(src_idx)),
        )
        runtime.put(
            target._handle(dst_idx), dst_owner, data, initiator=dst_owner,
            rect=region.localize(target.tile_bounds(dst_idx)),
        )
    return target


def _charge_transfer(runtime, src_rank: int, dst_rank: int, nbytes: int) -> None:
    """Occupy egress/link/copy for one tile-region move (no cost for local reads)."""
    if src_rank == dst_rank or nbytes <= 0:
        return
    clock = runtime.clock
    duration = runtime.transfer_time(src_rank, dst_rank, nbytes)
    destination = clock.device(dst_rank)
    source = clock.device(src_rank)
    earliest = destination.available_at(COPY)
    start = source.find_slot(EGRESS, duration, earliest)
    source.reserve_slot(EGRESS, duration, start, label="redistribute-egress")
    clock.reserve_link(src_rank, dst_rank, duration, start)
    destination.reserve(COPY, duration, start, label="redistribute-copy")


def redistribution_cost(
    matrix: DistributedMatrix,
    partition: Partition,
    replication: Optional[int] = None,
) -> dict:
    """Price a reshard without performing it: modelled seconds + bytes moved.

    Builds the target layout metadata only and walks the same
    :func:`_transfer_plan` as :func:`redistribute`, accumulating modelled
    link time per destination rank (the reported time is the slowest rank's,
    i.e. the reshard's makespan under the simple no-overlap model).
    """
    runtime = matrix.runtime
    factor = matrix.replication.factor if replication is None else int(replication)
    target = DistributedMatrix.create(
        runtime, matrix.shape, partition, replication=factor, dtype=matrix.dtype,
        name=f"{matrix.name}-cost-probe", materialize=False,
    )

    itemsize = matrix.dtype.itemsize
    per_rank_time: dict = {}
    total_bytes = 0
    for _, _, region, src_owner, dst_owner in _transfer_plan(matrix, target):
        if src_owner == dst_owner:
            continue
        nbytes = region.size * itemsize
        total_bytes += nbytes
        per_rank_time[dst_owner] = per_rank_time.get(dst_owner, 0.0) + \
            runtime.transfer_time(src_owner, dst_owner, nbytes)
    return {
        "modelled_time_s": max(per_rank_time.values(), default=0.0),
        "moved_bytes": total_bytes,
    }
