"""Replication bookkeeping: replica groups and per-replica work shares.

With replication factor ``c`` over ``p`` ranks, the ranks are divided into
``c`` replica groups of ``q = p / c`` ranks each; every group stores a full
copy of the matrix, partitioned over its ``q`` members.  Groups are blocked:
replica ``r`` consists of ranks ``[r*q, (r+1)*q)``, so ``rank_of`` and
``replica_of_rank`` are trivially inverse.

``work_share`` implements the paper's replication rule for the *stationary*
operand: each replica searches only its ``1/c`` share of the free dimension
(the inner dimension ``k`` for Stationary C, ``m`` for Stationary B, ``n``
for Stationary A), so that across replicas every elementary product is
computed exactly once.  Shares are contiguous and follow the same convention
as :func:`repro.util.indexing.split_extent`: the first ``extent % c`` shares
are one element longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.indexing import block_bounds
from repro.util.validation import ReplicationError, check_in_range, check_positive_int


@dataclass(frozen=True, slots=True)
class ReplicationSpec:
    """Replica-group bookkeeping for one distributed matrix.

    Parameters
    ----------
    num_ranks:
        Total ranks ``p`` in the runtime.
    factor:
        Replication factor ``c``; must divide ``p``.
    """

    num_ranks: int
    factor: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.num_ranks, "num_ranks")
        check_positive_int(self.factor, "factor")
        if self.factor > self.num_ranks or self.num_ranks % self.factor != 0:
            raise ReplicationError(
                f"replication factor {self.factor} must divide the rank count "
                f"{self.num_ranks}"
            )

    # ------------------------------------------------------------------ #
    @property
    def num_replicas(self) -> int:
        return self.factor

    @property
    def ranks_per_replica(self) -> int:
        return self.num_ranks // self.factor

    # ------------------------------------------------------------------ #
    # rank <-> (replica, position) mapping
    # ------------------------------------------------------------------ #
    def rank_of(self, replica: int, position: int) -> int:
        """Global rank of the ``position``-th member of replica ``replica``."""
        check_in_range(replica, 0, self.factor, "replica")
        check_in_range(position, 0, self.ranks_per_replica, "position")
        return replica * self.ranks_per_replica + position

    def replica_of_rank(self, rank: int) -> int:
        """Replica group that ``rank`` belongs to."""
        check_in_range(rank, 0, self.num_ranks, "rank")
        return rank // self.ranks_per_replica

    def position_of_rank(self, rank: int) -> int:
        """Position of ``rank`` within its replica group."""
        check_in_range(rank, 0, self.num_ranks, "rank")
        return rank % self.ranks_per_replica

    def replica_ranks(self, replica: int) -> range:
        """The global ranks forming replica ``replica``."""
        check_in_range(replica, 0, self.factor, "replica")
        start = replica * self.ranks_per_replica
        return range(start, start + self.ranks_per_replica)

    # ------------------------------------------------------------------ #
    # work shares
    # ------------------------------------------------------------------ #
    def work_share(self, replica: int, extent: int) -> Tuple[int, int]:
        """Half-open ``[start, stop)`` share of ``extent`` assigned to a replica.

        The ``c`` shares are contiguous, ascending, and tile ``[0, extent)``
        exactly; with ``c == 1`` the single share is the whole extent.
        """
        check_in_range(replica, 0, self.factor, "replica")
        bounds = block_bounds(extent, self.factor, replica)
        return (bounds.start, bounds.stop)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicationSpec(num_ranks={self.num_ranks}, factor={self.factor}, "
            f"ranks_per_replica={self.ranks_per_replica})"
        )
