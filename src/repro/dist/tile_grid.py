"""The tile grid: an axis-aligned tiling of a matrix into rectangular tiles.

A :class:`TileGrid` is defined by two strictly increasing split lists — one
per axis, each starting at 0 and ending at the matrix extent — whose cross
product induces the tiles.  Tile ``(i, j)`` covers rows
``[row_splits[i], row_splits[i+1])`` and columns
``[col_splits[j], col_splits[j+1])``.

``overlapping_tiles`` is the range query at the heart of the universal
algorithm's slicing step (the ``overlapping_tiles(slice)`` primitive of the
paper's Table 1): given a query rectangle it returns every tile index whose
bounds intersect it.  Because the splits are sorted, the overlapping index
range on each axis is located with :func:`bisect.bisect` in O(log n); the
result is the cross product of the two ranges, so the query costs
O(log n + output) rather than a scan of the whole grid.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Sequence, Tuple

from repro.util.indexing import Interval, Rect
from repro.util.validation import PartitionError

TileIndex = Tuple[int, int]


def _validate_splits(splits: Sequence[int], axis: str) -> Tuple[int, ...]:
    cleaned = tuple(int(s) for s in splits)
    if len(cleaned) < 2:
        raise PartitionError(
            f"{axis} splits need at least a start and an end, got {list(cleaned)}"
        )
    if cleaned[0] != 0:
        raise PartitionError(f"{axis} splits must start at 0, got {list(cleaned)}")
    for previous, current in zip(cleaned, cleaned[1:]):
        if current <= previous:
            raise PartitionError(
                f"{axis} splits must be strictly increasing, got {list(cleaned)}"
            )
    return cleaned


class TileGrid:
    """An immutable two-axis tiling described by its split points."""

    __slots__ = ("row_splits", "col_splits")

    def __init__(self, row_splits: Sequence[int], col_splits: Sequence[int]) -> None:
        self.row_splits = _validate_splits(row_splits, "row")
        self.col_splits = _validate_splits(col_splits, "column")

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #
    @property
    def matrix_shape(self) -> Tuple[int, int]:
        """The ``(rows, cols)`` extent of the tiled matrix."""
        return (self.row_splits[-1], self.col_splits[-1])

    @property
    def num_row_tiles(self) -> int:
        return len(self.row_splits) - 1

    @property
    def num_col_tiles(self) -> int:
        return len(self.col_splits) - 1

    @property
    def shape(self) -> Tuple[int, int]:
        """Number of tiles along each axis."""
        return (self.num_row_tiles, self.num_col_tiles)

    @property
    def num_tiles(self) -> int:
        return self.num_row_tiles * self.num_col_tiles

    # ------------------------------------------------------------------ #
    # tile enumeration and bounds
    # ------------------------------------------------------------------ #
    def tiles(self) -> Iterator[TileIndex]:
        """Iterate over all tile indices in row-major order."""
        for i in range(self.num_row_tiles):
            for j in range(self.num_col_tiles):
                yield (i, j)

    def tile_bounds(self, idx: TileIndex) -> Rect:
        """The global index rectangle covered by tile ``idx``."""
        i, j = int(idx[0]), int(idx[1])
        if not (0 <= i < self.num_row_tiles and 0 <= j < self.num_col_tiles):
            raise PartitionError(
                f"tile index ({i}, {j}) out of range for a "
                f"{self.num_row_tiles}x{self.num_col_tiles} grid"
            )
        return Rect(
            Interval(self.row_splits[i], self.row_splits[i + 1]),
            Interval(self.col_splits[j], self.col_splits[j + 1]),
        )

    def tile_shape(self, idx: TileIndex) -> Tuple[int, int]:
        return self.tile_bounds(idx).shape

    # ------------------------------------------------------------------ #
    # range queries
    # ------------------------------------------------------------------ #
    @staticmethod
    def _axis_range(splits: Tuple[int, ...], interval: Interval) -> range:
        """Half-open range of tile indices on one axis overlapping ``interval``."""
        clipped = interval.intersect(Interval(0, splits[-1]))
        if not clipped:
            return range(0)
        # First tile whose end exceeds clipped.start; its start is the last
        # split point <= clipped.start.
        first = bisect_right(splits, clipped.start) - 1
        # Tiles whose start lies before clipped.stop.
        last = bisect_left(splits, clipped.stop)
        return range(first, last)

    def overlapping_tiles(self, rect: Rect) -> List[TileIndex]:
        """All tile indices whose bounds intersect ``rect`` (possibly empty).

        Runs in O(log n + number of overlapping tiles) thanks to bisection on
        the sorted split lists.
        """
        rows = self._axis_range(self.row_splits, rect.rows)
        if not rows:
            return []
        cols = self._axis_range(self.col_splits, rect.cols)
        return [(i, j) for i in rows for j in cols]

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TileGrid):
            return NotImplemented
        return self.row_splits == other.row_splits and self.col_splits == other.col_splits

    def __hash__(self) -> int:
        return hash((self.row_splits, self.col_splits))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TileGrid({self.num_row_tiles}x{self.num_col_tiles} tiles over "
            f"{self.matrix_shape[0]}x{self.matrix_shape[1]})"
        )
