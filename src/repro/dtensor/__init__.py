"""A DTensor-like SPMD comparator.

PyTorch DTensor is the paper's main comparison point: an SPMD system where
users annotate tensors with placements (``Shard``/``Replicate``/``Partial``)
on a device mesh, and ``matmul`` dispatches to a *limited* set of sharded
matmul rules, redistributing ("resharding") operands when no rule matches.
This package re-implements that dispatch behaviour over the same machine
model so the benchmark harness can produce the "DT - Row" / "DT - Column"
series of Figures 2-3:

* :mod:`repro.dtensor.placement` — ``Shard``, ``Replicate``, ``Partial``;
* :mod:`repro.dtensor.device_mesh` — a 1-D device mesh bound to a machine;
* :mod:`repro.dtensor.dtensor` — the distributed tensor wrapper (real shards
  or symbolic shapes) with ``redistribute``;
* :mod:`repro.dtensor.dispatch` — sharding-propagation matmul with reshard
  fallback and modelled collective costs.

The re-implementation intentionally preserves DTensor's *behavioural*
limitations noted in the paper: only 1-D meshes are supported for matmul
(2-D shardings would require packed collectives), and mixed replication
factors between operands are rejected.
"""

from repro.dtensor.placement import Placement, Shard, Replicate, Partial
from repro.dtensor.device_mesh import DeviceMesh
from repro.dtensor.dtensor import DTensor
from repro.dtensor.dispatch import (
    MatmulPlan,
    dtensor_matmul,
    plan_matmul,
    simulate_dtensor_matmul,
)

__all__ = [
    "Placement",
    "Shard",
    "Replicate",
    "Partial",
    "DeviceMesh",
    "DTensor",
    "MatmulPlan",
    "dtensor_matmul",
    "plan_matmul",
    "simulate_dtensor_matmul",
]
