"""Device meshes for the DTensor-like comparator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.collectives.models import CollectiveModel
from repro.core.cost_model import CostModel
from repro.topology.machines import MachineSpec
from repro.util.validation import check_positive_int


@dataclass
class DeviceMesh:
    """A 1-D arrangement of devices participating in SPMD execution.

    The paper's DTensor experiments use 1-D shardings (row / column); it also
    notes that DTensor could not run its 2-D partitionings because the packed
    collectives they require are not available from all vendor backends.  To
    keep the comparator behaviourally faithful, this mesh is 1-D only.
    """

    machine: MachineSpec
    ranks: Optional[Sequence[int]] = None
    _ranks: List[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.ranks is None:
            self._ranks = list(range(self.machine.num_devices))
        else:
            self._ranks = [int(r) for r in self.ranks]
            for rank in self._ranks:
                if not 0 <= rank < self.machine.num_devices:
                    raise ValueError(
                        f"mesh rank {rank} out of range for machine with "
                        f"{self.machine.num_devices} devices"
                    )
        check_positive_int(len(self._ranks), "mesh size")

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def device_ranks(self) -> List[int]:
        return list(self._ranks)

    def collectives(self) -> CollectiveModel:
        return CollectiveModel(self.machine)

    def cost_model(self) -> CostModel:
        return CostModel(self.machine)

    def __iter__(self):
        return iter(self._ranks)
