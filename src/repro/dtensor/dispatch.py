"""Sharded matmul dispatch with reshard fallback — the DTensor behaviour model.

DTensor supports only a handful of sharded matmul rules.  When the operands'
placements match a rule, the local matmul runs directly; when they do not,
one or both operands are *redistributed* to placements that do match, paying
the collective cost.  Finally, if the chosen rule produces a ``Partial``
output and the caller needs a concrete sharding (the paper issues a
``redistribute()`` to convert Partial to Shard), that reduction is charged
too.  The dispatcher below enumerates the candidate rules, prices each one
(reshards + local compute + epilogue) with the shared machine model, and
picks the cheapest — which is how the "prefers outer-product with accumulated
C" behaviour the paper observed emerges for large weight matrices.

Supported rules (1-D mesh, ``C[m,n] = A[m,k] @ B[k,n]``):

====  ==============  ==============  ================
rule  A placement      B placement      C placement
====  ==============  ==============  ================
R1    Shard(0)         Replicate        Shard(0)
R2    Replicate        Shard(1)         Shard(1)
R3    Shard(1)         Shard(0)         Partial
R4    Replicate        Replicate        Replicate
====  ==============  ==============  ================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cost_model import CostModel
from repro.dtensor.device_mesh import DeviceMesh
from repro.dtensor.dtensor import DTensor, RedistributeCost
from repro.dtensor.placement import Partial, Placement, Replicate, Shard
from repro.util.validation import ShapeError, check_matmul_shapes


@dataclass(frozen=True)
class _Rule:
    name: str
    a_placement: Placement
    b_placement: Placement
    out_placement: Placement


_RULES: Tuple[_Rule, ...] = (
    _Rule("stationary_a_rows", Shard(0), Replicate(), Shard(0)),
    _Rule("stationary_b_cols", Replicate(), Shard(1), Shard(1)),
    _Rule("outer_product_partial", Shard(1), Shard(0), Partial()),
    _Rule("fully_replicated", Replicate(), Replicate(), Replicate()),
)


@dataclass
class MatmulPlan:
    """The dispatch decision for one DTensor matmul."""

    rule: str
    a_reshard: RedistributeCost
    b_reshard: RedistributeCost
    out_reshard: RedistributeCost
    out_placement: Placement
    local_gemm_time: float
    total_time: float
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def communication_time(self) -> float:
        return self.a_reshard.time + self.b_reshard.time + self.out_reshard.time

    @property
    def communication_bytes(self) -> int:
        return (
            self.a_reshard.bytes_moved
            + self.b_reshard.bytes_moved
            + self.out_reshard.bytes_moved
        )


def _local_gemm_time(
    cost_model: CostModel,
    mesh: DeviceMesh,
    m: int,
    n: int,
    k: int,
    rule: _Rule,
    itemsize: int,
) -> float:
    """Per-device GEMM time once operands are in the rule's placements."""
    size = mesh.size
    if rule.name == "stationary_a_rows":
        return cost_model.gemm_time(-(-m // size), n, k, itemsize)
    if rule.name == "stationary_b_cols":
        return cost_model.gemm_time(m, -(-n // size), k, itemsize)
    if rule.name == "outer_product_partial":
        return cost_model.gemm_time(m, n, -(-k // size), itemsize)
    return cost_model.gemm_time(m, n, k, itemsize)


def plan_matmul(
    a: DTensor,
    b: DTensor,
    out_placement: Optional[Placement] = None,
    itemsize: Optional[int] = None,
) -> MatmulPlan:
    """Choose the cheapest rule (+ reshards) for multiplying two DTensors."""
    if a.mesh is not b.mesh and a.mesh.device_ranks != b.mesh.device_ranks:
        raise ShapeError("operands must live on the same device mesh")
    m, n, k = check_matmul_shapes(a.global_shape, b.global_shape)
    mesh = a.mesh
    cost_model = mesh.cost_model()
    itemsize = itemsize or a.dtype.itemsize

    best: Optional[MatmulPlan] = None
    for rule in _RULES:
        a_cost = a.redistribute_cost(rule.a_placement)
        b_cost = b.redistribute_cost(rule.b_placement)
        gemm = _local_gemm_time(cost_model, mesh, m, n, k, rule, itemsize)

        # Epilogue: if the rule leaves C Partial and the caller wants a
        # concrete placement, pay for the reduction, exactly as the paper's
        # benchmark does with redistribute() after torch.matmul().
        out_bytes = m * n * itemsize
        out_tensor = DTensor.symbolic(mesh, (m, n), rule.out_placement, a.dtype)
        if out_placement is not None and type(rule.out_placement) is not type(out_placement):
            out_cost = out_tensor.redistribute_cost(out_placement)
            final_placement = out_placement
        elif out_placement is None and isinstance(rule.out_placement, Partial):
            out_cost = out_tensor.redistribute_cost(Shard(0))
            final_placement = Shard(0)
        else:
            out_cost = RedistributeCost("none", 0.0, 0)
            final_placement = rule.out_placement

        total = a_cost.time + b_cost.time + gemm + out_cost.time
        plan = MatmulPlan(
            rule=rule.name,
            a_reshard=a_cost,
            b_reshard=b_cost,
            out_reshard=out_cost,
            out_placement=final_placement,
            local_gemm_time=gemm,
            total_time=total,
            metadata={"m": m, "n": n, "k": k, "out_bytes": out_bytes},
        )
        if best is None or plan.total_time < best.total_time:
            best = plan
    assert best is not None
    return best


def dtensor_matmul(
    a: DTensor,
    b: DTensor,
    out_placement: Optional[Placement] = None,
) -> Tuple[DTensor, MatmulPlan]:
    """Multiply two (materialized or symbolic) DTensors.

    Returns the result DTensor in the plan's final placement plus the plan
    itself (whose ``total_time`` is the modelled execution time).
    """
    plan = plan_matmul(a, b, out_placement)
    m, n, _ = plan.metadata["m"], plan.metadata["n"], plan.metadata["k"]

    if not (a.is_materialized and b.is_materialized):
        result = DTensor.symbolic(a.mesh, (m, n), plan.out_placement, a.dtype)
        return result, plan

    # Materialized path: actually reshard and compute, shard by shard.
    rule = next(r for r in _RULES if r.name == plan.rule)
    a_resharded, _ = a.redistribute(rule.a_placement)
    b_resharded, _ = b.redistribute(rule.b_placement)

    shards: Dict[int, np.ndarray] = {}
    for rank in a.mesh.device_ranks:
        shards[rank] = a_resharded.shard(rank) @ b_resharded.shard(rank)
    product = DTensor(a.mesh, (m, n), rule.out_placement, a.dtype, shards)
    if type(plan.out_placement) is not type(rule.out_placement):
        product, _ = product.redistribute(plan.out_placement)
    return product, plan


def simulate_dtensor_matmul(
    mesh: DeviceMesh,
    m: int,
    n: int,
    k: int,
    a_placement: Placement,
    b_placement: Placement,
    out_placement: Optional[Placement] = None,
    itemsize: int = 4,
) -> Dict[str, object]:
    """Benchmark-harness helper: modelled time and percent of peak for one sharding."""
    a = DTensor.symbolic(mesh, (m, k), a_placement, np.float32)
    b = DTensor.symbolic(mesh, (k, n), b_placement, np.float32)
    plan = plan_matmul(a, b, out_placement, itemsize=itemsize)
    cost_model = mesh.cost_model()
    flops = 2.0 * m * n * k
    return {
        "rule": plan.rule,
        "simulated_time_s": plan.total_time,
        "percent_of_peak": cost_model.percent_of_peak(flops, plan.total_time),
        "communication_time_s": plan.communication_time,
        "communication_bytes": plan.communication_bytes,
        "local_gemm_time_s": plan.local_gemm_time,
        "out_placement": str(plan.out_placement),
    }
