"""The DTensor-like distributed tensor wrapper.

A :class:`DTensor` pairs a global 2-D shape with a placement on a 1-D device
mesh.  It can be *materialized* (each mesh device holds its real NumPy shard,
used by the correctness tests) or *symbolic* (shapes only, used by the
benchmark harness at paper scale).  ``redistribute`` converts between
placements, returning both the new tensor and the modelled cost of the
collective it would require — the same "resharding" cost the paper highlights
as the price SPMD systems pay when no matmul rule matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dtensor.device_mesh import DeviceMesh
from repro.dtensor.placement import Partial, Placement, Replicate, Shard
from repro.util.indexing import block_bounds
from repro.util.validation import ShapeError


@dataclass(frozen=True)
class RedistributeCost:
    """Modelled cost of one placement change."""

    collective: str
    time: float
    bytes_moved: int


class DTensor:
    """A 2-D tensor distributed over a 1-D device mesh."""

    def __init__(
        self,
        mesh: DeviceMesh,
        global_shape: Tuple[int, int],
        placement: Placement,
        dtype=np.float32,
        shards: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        self.mesh = mesh
        self.global_shape = (int(global_shape[0]), int(global_shape[1]))
        self.placement = placement
        self.dtype = np.dtype(dtype)
        self._shards = shards  # None => symbolic

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, mesh: DeviceMesh, dense: np.ndarray, placement: Placement) -> "DTensor":
        """Distribute a dense array according to ``placement`` (materialized)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"DTensor only supports 2-D tensors, got ndim={dense.ndim}")
        shards: Dict[int, np.ndarray] = {}
        size = mesh.size
        for position, rank in enumerate(mesh.device_ranks):
            shards[rank] = cls._slice_for(dense, placement, position, size).copy()
        return cls(mesh, dense.shape, placement, dense.dtype, shards)

    @classmethod
    def symbolic(cls, mesh: DeviceMesh, global_shape: Tuple[int, int],
                 placement: Placement, dtype=np.float32) -> "DTensor":
        """A shape-only DTensor for cost modelling at arbitrary scale."""
        return cls(mesh, global_shape, placement, dtype, shards=None)

    @staticmethod
    def _slice_for(dense: np.ndarray, placement: Placement, position: int, size: int) -> np.ndarray:
        if isinstance(placement, Shard):
            bounds = block_bounds(dense.shape[placement.dim], size, position)
            if placement.dim == 0:
                return dense[bounds.as_slice(), :]
            return dense[:, bounds.as_slice()]
        if isinstance(placement, Replicate):
            return dense
        if isinstance(placement, Partial):
            # By convention device 0 holds the full value, others hold zeros,
            # so that the sum across devices equals the logical tensor.
            if position == 0:
                return dense
            return np.zeros_like(dense)
        raise ShapeError(f"unsupported placement {placement!r}")

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def is_materialized(self) -> bool:
        return self._shards is not None

    @property
    def nbytes(self) -> int:
        return self.global_shape[0] * self.global_shape[1] * self.dtype.itemsize

    def local_shape(self, position: int) -> Tuple[int, int]:
        """Shape of the shard held by mesh position ``position``."""
        rows, cols = self.global_shape
        if isinstance(self.placement, Shard):
            bounds = block_bounds(self.global_shape[self.placement.dim], self.mesh.size, position)
            if self.placement.dim == 0:
                return (bounds.extent, cols)
            return (rows, bounds.extent)
        return (rows, cols)

    def shard(self, rank: int) -> np.ndarray:
        if self._shards is None:
            raise ShapeError("this DTensor is symbolic and holds no data")
        return self._shards[rank]

    # ------------------------------------------------------------------ #
    # materialisation helpers
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Reassemble the logical tensor from the shards."""
        if self._shards is None:
            raise ShapeError("this DTensor is symbolic and holds no data")
        ranks = self.mesh.device_ranks
        if isinstance(self.placement, Replicate):
            return self._shards[ranks[0]].copy()
        if isinstance(self.placement, Partial):
            return np.sum([self._shards[rank] for rank in ranks], axis=0)
        axis = self.placement.dim
        return np.concatenate([self._shards[rank] for rank in ranks], axis=axis)

    # ------------------------------------------------------------------ #
    # redistribution
    # ------------------------------------------------------------------ #
    def redistribute(self, placement: Placement) -> Tuple["DTensor", RedistributeCost]:
        """Convert to a different placement, returning the modelled collective cost."""
        cost = self.redistribute_cost(placement)
        if self._shards is None:
            return DTensor.symbolic(self.mesh, self.global_shape, placement, self.dtype), cost
        dense = self.to_dense()
        return DTensor.from_dense(self.mesh, dense, placement), cost

    def redistribute_cost(self, placement: Placement) -> RedistributeCost:
        """Modelled cost of converting this tensor's placement to ``placement``."""
        model = self.mesh.collectives()
        ranks = self.mesh.device_ranks
        size = self.mesh.size
        src, dst = self.placement, placement

        if type(src) is type(dst) and (not isinstance(src, Shard) or src.dim == dst.dim):
            return RedistributeCost("none", 0.0, 0)
        if isinstance(src, Replicate) and isinstance(dst, Shard):
            return RedistributeCost("slice", 0.0, 0)
        if isinstance(src, Shard) and isinstance(dst, Replicate):
            return RedistributeCost("all_gather", model.allgather(ranks, self.nbytes), self.nbytes)
        if isinstance(src, Shard) and isinstance(dst, Shard):
            # True division: flooring nbytes // size**2 priced any tensor
            # smaller than size^2 bytes as a zero-cost reshard, which poisons
            # consumers that use this as an edge weight (graph planning).
            per_pair = self.nbytes / max(size * size, 1)
            return RedistributeCost("all_to_all", model.alltoall(ranks, per_pair),
                                    self.nbytes * (size - 1) // size)
        if isinstance(src, Partial) and isinstance(dst, Shard):
            return RedistributeCost("reduce_scatter",
                                    model.reduce_scatter(ranks, self.nbytes), self.nbytes)
        if isinstance(src, Partial) and isinstance(dst, Replicate):
            return RedistributeCost("all_reduce", model.allreduce(ranks, self.nbytes),
                                    2 * self.nbytes)
        if isinstance(src, Replicate) and isinstance(dst, Partial):
            return RedistributeCost("none", 0.0, 0)
        raise ShapeError(f"unsupported redistribution {src} -> {dst}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "materialized" if self.is_materialized else "symbolic"
        return (
            f"DTensor(shape={self.global_shape}, placement={self.placement}, "
            f"mesh_size={self.mesh.size}, {kind})"
        )
