"""Tensor placements: how a logical tensor maps onto a device mesh.

The three placements mirror PyTorch DTensor's:

* ``Shard(dim)`` — the tensor is split into contiguous blocks along ``dim``,
  one per mesh device;
* ``Replicate()`` — every device holds the full tensor;
* ``Partial()`` — every device holds a full-shape *partial sum*; the true
  value is the elementwise sum across devices (produced, e.g., by an
  outer-product matmul) and must be reduced before use.
"""

from __future__ import annotations

from dataclasses import dataclass


class Placement:
    """Base class for placements (value objects, compared structurally)."""

    def is_shard(self, dim: int | None = None) -> bool:
        return False

    def is_replicate(self) -> bool:
        return False

    def is_partial(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Shard(Placement):
    """Shard along tensor dimension ``dim`` (0 = rows, 1 = columns)."""

    dim: int

    def __post_init__(self) -> None:
        if self.dim not in (0, 1):
            raise ValueError(f"only 2-D tensors are supported; invalid shard dim {self.dim}")

    def is_shard(self, dim: int | None = None) -> bool:
        return dim is None or dim == self.dim

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Shard({self.dim})"


@dataclass(frozen=True, slots=True)
class Replicate(Placement):
    """Full copy on every mesh device."""

    def is_replicate(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "Replicate()"


@dataclass(frozen=True, slots=True)
class Partial(Placement):
    """Unreduced partial sums on every mesh device."""

    def is_partial(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "Partial()"
