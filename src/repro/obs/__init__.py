"""End-to-end observability: metrics, request tracing, serving telemetry log.

The stack spans four layers (client -> pre-forked PlanServer workers ->
PlannerService/search -> event simulator); this package is the one substrate
they all report into:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges, and
  fixed-bucket histograms with merge semantics (per-worker snapshots sum
  into a fleet view) and a Prometheus text formatter;
* :mod:`repro.obs.tracing` — lightweight spans with a context-local current
  span; trace ids travel the serve wire protocol, so one request's life
  across process boundaries exports as a single Chrome/Perfetto timeline;
* :mod:`repro.obs.reqlog` — an append-only, size-rotated JSONL log of served
  requests with crash-safe line-atomic appends;
* :mod:`repro.obs.rollup` — the compaction pass turning raw logs into
  per-signature aggregates that feed traffic-weighted cache eviction and
  background-refresh scheduling.

Everything is off-by-default-cheap: components wired to
:data:`~repro.obs.metrics.NULL_REGISTRY` / :data:`~repro.obs.tracing.NULL_TRACER`
pay a single attribute check per request.  See ``docs/observability.md``.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    empty_snapshot,
    instrument_name,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.reqlog import (
    RequestLog,
    RequestRecord,
    discover_logs,
    generations,
    iter_records,
)
from repro.obs.rollup import Rollup, SignatureRollup, percentile, rollup_requests
from repro.obs.tracing import (
    NULL_TRACER,
    SpanRecord,
    Tracer,
    current_span_id,
    current_trace_id,
    new_id,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "empty_snapshot",
    "instrument_name",
    "merge_snapshots",
    "render_prometheus",
    "RequestLog",
    "RequestRecord",
    "discover_logs",
    "generations",
    "iter_records",
    "Rollup",
    "SignatureRollup",
    "percentile",
    "rollup_requests",
    "NULL_TRACER",
    "SpanRecord",
    "Tracer",
    "current_span_id",
    "current_trace_id",
    "new_id",
]
