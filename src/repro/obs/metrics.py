"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the one substrate every layer's counters publish onto —
serving counters (:class:`~repro.planner.service.PlannerService`), plan-cache
counters (:class:`~repro.planner.cache.PlanCache`), and search phase timings
all register instruments here instead of inventing bespoke dicts.  Three
properties drive the design:

* **cheap on the hot path** — ``inc()`` / ``observe()`` are one short
  lock-protected arithmetic op; callers create their instruments *once* at
  init and hold the objects, so serving never pays a name lookup.  A
  component wired to :data:`NULL_REGISTRY` gets no-op instruments, so
  disabled observability costs a single attribute call;
* **mergeable** — :meth:`MetricsRegistry.snapshot` is a plain dict and
  :func:`merge_snapshots` sums any number of them, so per-worker snapshots
  from a pre-forked fleet aggregate into one view without shared memory;
* **scrapeable** — :func:`render_prometheus` formats a snapshot (merged or
  not) as Prometheus text exposition, so the fleet is one HTTP handler away
  from a real monitoring stack.

Instruments are identified by a base name plus optional label key/values
(``registry.counter("repro_plan_requests_total", outcome="hit")``); the same
(name, labels) pair always returns the same instrument.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds for latencies, in seconds.  Log-ish
#: spacing from microseconds (warm cache hits) to tens of seconds (worst-case
#: exhaustive searches); observations above the last bound land in +Inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3,
    1e-2, 2.5e-2, 1e-1, 2.5e-1, 1.0, 2.5, 10.0,
)


def instrument_name(name: str, labels: Mapping[str, str]) -> str:
    """Full identity of an instrument: ``name{k="v",...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_instrument_name(full: str) -> Tuple[str, str]:
    """Inverse-ish of :func:`instrument_name`: ``(base, label_body)``."""
    if full.endswith("}") and "{" in full:
        base, _, rest = full.partition("{")
        return base, rest[:-1]
    return full, ""


class Counter:
    """A monotonically increasing value (requests served, bytes written...)."""

    __slots__ = ("full_name", "_value", "_lock")

    def __init__(self, full_name: str) -> None:
        self.full_name = full_name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (resident cache entries, queue depth)."""

    __slots__ = ("full_name", "_value", "_lock")

    def __init__(self, full_name: str) -> None:
        self.full_name = full_name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative-on-export, Prometheus-style).

    ``observe()`` is one bisect plus two adds under a lock; bucket bounds are
    fixed at construction so per-worker histograms merge by summing counts.
    """

    __slots__ = ("full_name", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, full_name: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.full_name = full_name
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """How many observations were recorded."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def state(self) -> Dict[str, object]:
        """Point-in-time dict form (per-bucket counts, sum, count)."""
        with self._lock:
            return {"buckets": list(self.bounds), "counts": list(self._counts),
                    "sum": self._sum, "count": self._count}


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind (disabled registry)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def observe(self, value: float) -> None:
        """Discard the observation."""


#: The one null instrument every :data:`NULL_REGISTRY` lookup returns.
NULL_INSTRUMENT = _NullInstrument()


def empty_snapshot() -> Dict[str, object]:
    """A snapshot with no samples (what a disabled registry exports)."""
    return {"counters": {}, "gauges": {}, "histograms": {}, "help": {}}


class MetricsRegistry:
    """Process-local instrument registry (see module docs for the contract)."""

    #: Disabled registries hand out no-op instruments; this one is live.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # instrument creation (memoized by full name)
    # ------------------------------------------------------------------ #
    def _remember_help(self, name: str, help: str) -> None:
        if help and name not in self._help:
            self._help[name] = help

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        full = instrument_name(name, labels)
        with self._lock:
            instrument = self._counters.get(full)
            if instrument is None:
                instrument = self._counters[full] = Counter(full)
            self._remember_help(name, help)
            return instrument

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        full = instrument_name(name, labels)
        with self._lock:
            instrument = self._gauges.get(full)
            if instrument is None:
                instrument = self._gauges[full] = Gauge(full)
            self._remember_help(name, help)
            return instrument

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: str) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        full = instrument_name(name, labels)
        with self._lock:
            instrument = self._histograms.get(full)
            if instrument is None:
                instrument = self._histograms[full] = Histogram(full, buckets)
            self._remember_help(name, help)
            return instrument

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Point-in-time dict of every sample (JSON-safe, mergeable).

        Layout::

            {"counters":   {full_name: value},
             "gauges":     {full_name: value},
             "histograms": {full_name: {"buckets": [...], "counts": [...],
                                        "sum": s, "count": n}},
             "help":       {base_name: help_text}}
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            help_text = dict(self._help)
        return {
            "counters": {c.full_name: c.value for c in counters},
            "gauges": {g.full_name: g.value for g in gauges},
            "histograms": {h.full_name: h.state() for h in histograms},
            "help": help_text,
        }


class NullMetricsRegistry:
    """Registry stand-in whose instruments discard everything.

    Components take ``metrics or NULL_REGISTRY`` so their hot paths always
    call real methods — just ones that do nothing when observability is off.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels: str) -> _NullInstrument:
        """A shared no-op instrument."""
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: str) -> _NullInstrument:
        """A shared no-op instrument."""
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: str) -> _NullInstrument:
        """A shared no-op instrument."""
        return NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, object]:
        """Always empty."""
        return empty_snapshot()


#: Process-wide disabled registry (no samples, no cost).
NULL_REGISTRY = NullMetricsRegistry()


def merge_snapshots(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Sum any number of registry snapshots into one fleet view.

    Counters and gauges add; histograms add bucket-by-bucket (their bounds
    must agree — per-worker instruments created from the same code always
    do).  Help text merges first-writer-wins.

    Raises:
        ValueError: when two histograms with the same name disagree on
            bucket bounds (merging them would silently mis-bin samples).
    """
    merged = empty_snapshot()
    counters: Dict[str, float] = merged["counters"]  # type: ignore[assignment]
    gauges: Dict[str, float] = merged["gauges"]  # type: ignore[assignment]
    histograms: Dict[str, Dict[str, object]] = merged["histograms"]  # type: ignore[assignment]
    help_text: Dict[str, str] = merged["help"]  # type: ignore[assignment]
    for snapshot in snapshots:
        for name, value in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in (snapshot.get("gauges") or {}).items():  # type: ignore[union-attr]
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, state in (snapshot.get("histograms") or {}).items():  # type: ignore[union-attr]
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {"buckets": list(state["buckets"]),
                                    "counts": list(state["counts"]),
                                    "sum": float(state["sum"]),
                                    "count": int(state["count"])}
                continue
            if list(existing["buckets"]) != list(state["buckets"]):
                raise ValueError(f"histogram {name!r}: bucket bounds differ "
                                 "across snapshots; refusing to merge")
            existing["counts"] = [a + b for a, b in zip(existing["counts"],
                                                        state["counts"])]
            existing["sum"] = float(existing["sum"]) + float(state["sum"])
            existing["count"] = int(existing["count"]) + int(state["count"])
        for name, text in (snapshot.get("help") or {}).items():  # type: ignore[union-attr]
            help_text.setdefault(name, text)
    return merged


def _format_value(value: float) -> str:
    """Prometheus sample formatting (integers render without a fraction)."""
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _labeled(base: str, label_body: str, extra: str = "") -> str:
    """Reattach label text (plus an optional extra label) to a base name."""
    parts = [part for part in (label_body, extra) if part]
    if not parts:
        return base
    return f"{base}{{{','.join(parts)}}}"


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Format one (possibly merged) snapshot as Prometheus text exposition.

    Counters and gauges render one sample line each; histograms render the
    conventional ``_bucket`` (cumulative, with ``le`` labels including
    ``+Inf``), ``_sum``, and ``_count`` series.
    """
    help_text: Dict[str, str] = dict(snapshot.get("help") or {})  # type: ignore[arg-type]
    lines: List[str] = []
    seen_header: set = set()

    def header(base: str, kind: str) -> None:
        if base in seen_header:
            return
        seen_header.add(base)
        if base in help_text:
            lines.append(f"# HELP {base} {help_text[base]}")
        lines.append(f"# TYPE {base} {kind}")

    for full, value in sorted((snapshot.get("counters") or {}).items()):  # type: ignore[union-attr]
        base, label_body = split_instrument_name(full)
        header(base, "counter")
        lines.append(f"{_labeled(base, label_body)} {_format_value(value)}")
    for full, value in sorted((snapshot.get("gauges") or {}).items()):  # type: ignore[union-attr]
        base, label_body = split_instrument_name(full)
        header(base, "gauge")
        lines.append(f"{_labeled(base, label_body)} {_format_value(value)}")
    for full, state in sorted((snapshot.get("histograms") or {}).items()):  # type: ignore[union-attr]
        base, label_body = split_instrument_name(full)
        header(base, "histogram")
        cumulative = 0
        for bound, count in zip(state["buckets"], state["counts"]):
            cumulative += count
            le_label = 'le="' + repr(bound) + '"'
            lines.append(f"{_labeled(base + '_bucket', label_body, le_label)} "
                         f"{cumulative}")
        cumulative += state["counts"][-1]
        inf_label = 'le="+Inf"'
        lines.append(f"{_labeled(base + '_bucket', label_body, inf_label)} "
                     f"{cumulative}")
        lines.append(f"{_labeled(base + '_sum', label_body)} "
                     f"{_format_value(state['sum'])}")
        lines.append(f"{_labeled(base + '_count', label_body)} {state['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
