"""Append-only serving telemetry log: size-rotated JSONL, crash-safe appends.

Every served planning request becomes one JSON line (a
:class:`RequestRecord`): which signature, hit or miss or coalesced, how old
the served plan was, where the latency went, which worker answered, and the
trace id tying the line to a recorded trace.  This is the raw stream the
ROADMAP's telemetry-driven adaptive planning consumes — the rollup pass
(:mod:`repro.obs.rollup`) compacts it into per-signature aggregates that
feed eviction weighting and refresh scheduling.

Durability model:

* **line-atomic appends** — each record is written as ONE ``os.write`` to a
  descriptor opened ``O_APPEND``; POSIX appends of this size are atomic, so
  a crash can truncate only the final line, never interleave two;
* **size rotation** — when the active file would exceed ``max_bytes`` the
  log rotates (``log.jsonl`` -> ``log.jsonl.1`` -> ``.2`` ...), keeping at
  most ``max_files`` rotated generations;
* **tolerant reads** — :func:`iter_records` skips undecodable lines (the
  truncated tail a crash leaves behind) instead of failing the whole replay.

One writer per file: in a pre-forked fleet each worker owns
``requests-<worker>.jsonl`` in a shared directory, and the rollup pass reads
the whole directory.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

#: Default rotation threshold for one log file, in bytes.
DEFAULT_MAX_BYTES = 16 << 20

#: Default number of rotated generations kept next to the active file.
DEFAULT_MAX_FILES = 4


@dataclass
class RequestRecord:
    """One served request, as logged (see module docs for the lifecycle)."""

    #: Wall-clock epoch seconds when the request finished.
    ts: float
    #: The canonical signature key the request mapped to (cache identity).
    signature: str
    #: The requesting workload's name (human-readable context).
    workload: str
    #: ``"hit"`` (plan cache), ``"stale"`` (expired-but-in-grace cache entry
    #: served while a background refresh recomputes it), ``"computed"`` (ran
    #: the search), or ``"coalesced"`` (waited on an identical in-flight
    #: computation).
    outcome: str
    #: Age in seconds of the served plan at serve time (0.0 when computed).
    plan_age: float
    #: End-to-end serving latency in seconds.
    latency: float
    #: Per-phase seconds for computed plans (opgen/bound/refine/simulate);
    #: empty for hits and coalesced waits.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Index of the serving worker (-1 for in-process services).
    worker: int = -1
    #: OS pid of the serving process.
    pid: int = 0
    #: Trace id of the request, when tracing was active.
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (one log line's payload)."""
        return {
            "ts": self.ts, "signature": self.signature,
            "workload": self.workload, "outcome": self.outcome,
            "plan_age": self.plan_age, "latency": self.latency,
            "phases": self.phases, "worker": self.worker, "pid": self.pid,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RequestRecord":
        """Rebuild a record from :meth:`to_dict` output (tolerant of extras)."""
        trace_id = payload.get("trace_id")
        return cls(
            ts=float(payload.get("ts", 0.0)),  # type: ignore[arg-type]
            signature=str(payload.get("signature", "")),
            workload=str(payload.get("workload", "")),
            outcome=str(payload.get("outcome", "")),
            plan_age=float(payload.get("plan_age", 0.0)),  # type: ignore[arg-type]
            latency=float(payload.get("latency", 0.0)),  # type: ignore[arg-type]
            phases={str(k): float(v) for k, v in  # type: ignore[union-attr]
                    (payload.get("phases") or {}).items()},  # type: ignore[union-attr]
            worker=int(payload.get("worker", -1)),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            trace_id=str(trace_id) if trace_id is not None else None,
        )


class RequestLog:
    """Appender for one request-log file (thread-safe, size-rotated).

    Args:
        path: the active log file (created on first append; parent
            directories are created too).
        max_bytes: rotation threshold — an append that would push the active
            file past this rotates first.
        max_files: how many rotated generations (``path.1`` .. ``path.N``)
            survive; older generations are unlinked at rotation.
    """

    def __init__(self, path: str, *, max_bytes: int = DEFAULT_MAX_BYTES,
                 max_files: int = DEFAULT_MAX_FILES) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_files < 0:
            raise ValueError(f"max_files must be >= 0, got {max_files}")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._fd: Optional[int] = None
        self._size = 0
        self._lock = threading.Lock()
        self._records_written = 0

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._fd = os.open(self.path,
                           os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        self._size = os.fstat(self._fd).st_size
        if self._size > 0:
            # Seal a torn tail left by a crash mid-append: without the
            # newline, the next append would concatenate onto the partial
            # line and corrupt a good record along with the torn one.
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
            if last != b"\n":
                os.write(self._fd, b"\n")
                self._size += 1

    def _rotate(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        if self.max_files == 0:
            # No generations kept: truncate by replacing the active file.
            try:
                os.unlink(self.path)
            except OSError:
                pass
        else:
            oldest = f"{self.path}.{self.max_files}"
            try:
                os.unlink(oldest)
            except OSError:
                pass
            for index in range(self.max_files - 1, 0, -1):
                source = f"{self.path}.{index}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{index + 1}")
            if os.path.exists(self.path):
                os.replace(self.path, f"{self.path}.1")
        self._open()

    def append(self, record: RequestRecord) -> None:
        """Write one record as a single atomic line (rotating if needed)."""
        line = (json.dumps(record.to_dict(), separators=(",", ":")) + "\n"
                ).encode("utf-8")
        with self._lock:
            if self._fd is None:
                self._open()
            if self._size > 0 and self._size + len(line) > self.max_bytes:
                self._rotate()
            os.write(self._fd, line)  # type: ignore[arg-type]
            self._size += len(line)
            self._records_written += 1

    @property
    def records_written(self) -> int:
        """How many records this appender has written (lifetime)."""
        with self._lock:
            return self._records_written

    def close(self) -> None:
        """Close the file descriptor (idempotent; appends reopen)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# reading
# ---------------------------------------------------------------------- #
def generations(path: str) -> List[str]:
    """Every existing file of one log, oldest first (``.N`` .. ``.1``, active)."""
    found: List[str] = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        found.append(f"{path}.{index}")
        index += 1
    found.reverse()
    if os.path.exists(path):
        found.append(path)
    return found


def discover_logs(target: Union[str, Sequence[str]]) -> List[str]:
    """Resolve a directory / file / list of either into readable log files.

    A directory contributes every ``*.jsonl`` file in it (plus rotated
    generations, oldest first); a file contributes its generations.
    """
    if isinstance(target, str):
        targets: Sequence[str] = [target]
    else:
        targets = target
    resolved: List[str] = []
    for item in targets:
        if os.path.isdir(item):
            actives = sorted(
                os.path.join(item, name) for name in os.listdir(item)
                if name.endswith(".jsonl"))
            for active in actives:
                resolved.extend(generations(active))
        else:
            resolved.extend(generations(item))
    # generations() already returns existing files; de-dup, keep order.
    seen: set = set()
    unique = []
    for path in resolved:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def iter_records(target: Union[str, Sequence[str]]) -> Iterator[RequestRecord]:
    """Replay every record from a log file / directory / list of either.

    Undecodable lines — the torn tail a crash can leave, or foreign junk —
    are skipped: a telemetry replay must survive the failure modes the log
    is meant to diagnose.
    """
    for path in discover_logs(target):
        try:
            handle = open(path, "rb")
        except OSError:
            continue
        with handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    continue
                if not isinstance(payload, dict):
                    continue
                try:
                    yield RequestRecord.from_dict(payload)
                except (TypeError, ValueError):
                    continue
