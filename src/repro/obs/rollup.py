"""Rollup pass: compact raw request logs into per-signature aggregates.

The append-only request log (:mod:`repro.obs.reqlog`) records every served
request; this module is the compaction stage that turns that raw stream into
the per-signature view adaptive planning actually consumes:

* request counts, hit/computed/coalesced splits, and hit ratios;
* plan-age percentiles at serve time ("how stale is what we serve?");
* latency percentiles;
* which workers served the signature (traffic spread).

A :class:`Rollup` is itself JSON-persistable, so compaction can run
out-of-band (a cron pass over the log directory) and the serving processes
load only the compact artifact.  Consumers in-tree:

* :meth:`repro.planner.cache.PlanCache.set_traffic_weights` — eviction
  weighted by observed per-signature traffic instead of pure LRU;
* :meth:`repro.planner.service.PlannerService.refresh_candidates` — the
  hot signatures whose TTL expires soonest, i.e. what a background
  refresher should recompute *before* expiry evicts them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.obs.reqlog import RequestRecord, iter_records


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending sequence (linear interp)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return float(sorted_values[low] * (1.0 - fraction)
                 + sorted_values[high] * fraction)


@dataclass
class SignatureRollup:
    """Aggregated serving telemetry for one signature key."""

    signature: str
    #: A sampled workload name (human-readable handle for the signature).
    workload: str = ""
    requests: int = 0
    hits: int = 0
    computed: int = 0
    coalesced: int = 0
    #: Hits that served an expired-but-in-grace plan (stale-while-revalidate;
    #: a subset of ``hits``).
    stale: int = 0
    first_ts: float = 0.0
    last_ts: float = 0.0
    #: Plan-age-at-serve percentiles, seconds.
    age_p50: float = 0.0
    age_p90: float = 0.0
    age_max: float = 0.0
    #: End-to-end latency percentiles, seconds.
    latency_p50: float = 0.0
    latency_p90: float = 0.0
    latency_max: float = 0.0
    #: Distinct workers that served this signature.
    workers: int = 0
    #: Raw samples kept only while aggregating (dropped from the dict form).
    _ages: List[float] = field(default_factory=list, repr=False)
    _latencies: List[float] = field(default_factory=list, repr=False)
    _workers: Set[int] = field(default_factory=set, repr=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from a cache (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0

    def absorb(self, record: RequestRecord) -> None:
        """Fold one raw request record into the aggregate."""
        self.requests += 1
        if record.outcome == "hit":
            self.hits += 1
        elif record.outcome == "stale":
            # A stale serve IS a cache hit (the caller got an answer from
            # the cache); the dedicated counter tracks how many rode the
            # grace window.
            self.hits += 1
            self.stale += 1
        elif record.outcome == "coalesced":
            self.coalesced += 1
        else:
            self.computed += 1
        if not self.workload:
            self.workload = record.workload
        if self.first_ts == 0.0 or record.ts < self.first_ts:
            self.first_ts = record.ts
        self.last_ts = max(self.last_ts, record.ts)
        self._ages.append(record.plan_age)
        self._latencies.append(record.latency)
        self._workers.add(record.worker)

    def finalize(self) -> None:
        """Compute percentiles from the absorbed samples and drop them."""
        ages = sorted(self._ages)
        latencies = sorted(self._latencies)
        self.age_p50 = percentile(ages, 0.50)
        self.age_p90 = percentile(ages, 0.90)
        self.age_max = ages[-1] if ages else 0.0
        self.latency_p50 = percentile(latencies, 0.50)
        self.latency_p90 = percentile(latencies, 0.90)
        self.latency_max = latencies[-1] if latencies else 0.0
        self.workers = len(self._workers)
        self._ages = []
        self._latencies = []
        self._workers = set()

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (samples excluded; call :meth:`finalize` first)."""
        return {
            "signature": self.signature, "workload": self.workload,
            "requests": self.requests, "hits": self.hits,
            "computed": self.computed, "coalesced": self.coalesced,
            "stale": self.stale,
            "first_ts": self.first_ts, "last_ts": self.last_ts,
            "age_p50": self.age_p50, "age_p90": self.age_p90,
            "age_max": self.age_max, "latency_p50": self.latency_p50,
            "latency_p90": self.latency_p90, "latency_max": self.latency_max,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SignatureRollup":
        """Rebuild an aggregate from :meth:`to_dict` output."""
        known = {f: payload[f] for f in (
            "signature", "workload", "requests", "hits", "computed",
            "coalesced", "stale", "first_ts", "last_ts", "age_p50", "age_p90",
            "age_max", "latency_p50", "latency_p90", "latency_max", "workers",
        ) if f in payload}
        return cls(**known)  # type: ignore[arg-type]


#: Schema version of the persisted rollup artifact.
ROLLUP_VERSION = 1


@dataclass
class Rollup:
    """Per-signature aggregates over one compaction window."""

    signatures: Dict[str, SignatureRollup] = field(default_factory=dict)
    #: How many raw records the window covered.
    records: int = 0

    def top(self, n: int = 5, by: str = "requests") -> List[SignatureRollup]:
        """The ``n`` largest aggregates by a numeric field (default: traffic).

        Ordering is fully deterministic: descending by the field, ties broken
        by ascending signature key — dict insertion order (which depends on
        log-replay order) never leaks into consumers like
        :meth:`repro.planner.service.PlannerService.refresh_candidates`.
        """
        return sorted(self.signatures.values(),
                      key=lambda agg: (-getattr(agg, by), agg.signature))[:n]

    def traffic_weights(self) -> Dict[str, float]:
        """Per-signature request counts — the eviction-weighting input."""
        return {key: float(agg.requests)
                for key, agg in self.signatures.items()}

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "version": ROLLUP_VERSION,
            "records": self.records,
            "signatures": {key: agg.to_dict()
                           for key, agg in self.signatures.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Rollup":
        """Rebuild a rollup from :meth:`to_dict` output."""
        signatures = {
            str(key): SignatureRollup.from_dict(item)
            for key, item in (payload.get("signatures") or {}).items()  # type: ignore[union-attr]
        }
        return cls(signatures=signatures,
                   records=int(payload.get("records", 0)))  # type: ignore[arg-type]

    def save(self, path: str) -> str:
        """Persist the rollup as JSON (atomically via rename)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp_path, path)
        return path

    @classmethod
    def load(cls, path: str) -> "Rollup":
        """Load a persisted rollup; a missing/corrupt file yields an empty one."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return cls()
        if not isinstance(payload, dict):
            return cls()
        if payload.get("version") != ROLLUP_VERSION:
            return cls()
        return cls.from_dict(payload)


def rollup_requests(target: Union[str, Sequence[str]],
                    *, since_ts: Optional[float] = None) -> Rollup:
    """Compact raw request logs into a :class:`Rollup`.

    Args:
        target: a log directory, one log file, or a list of either
            (rotated generations are discovered automatically).
        since_ts: when given, records older than this epoch timestamp are
            excluded — a sliding compaction window.

    Returns:
        The per-signature aggregates, percentiles finalized.
    """
    rollup = Rollup()
    for record in iter_records(target):
        if since_ts is not None and record.ts < since_ts:
            continue
        aggregate = rollup.signatures.get(record.signature)
        if aggregate is None:
            aggregate = rollup.signatures[record.signature] = SignatureRollup(
                signature=record.signature)
        aggregate.absorb(record)
        rollup.records += 1
    for aggregate in rollup.signatures.values():
        aggregate.finalize()
    return rollup
