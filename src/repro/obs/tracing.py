"""Lightweight request tracing: spans, context propagation, Chrome export.

A *span* is one named, timed piece of work (a served request, a search
phase); spans nest through a context-local "current span" so children find
their parent automatically, and every span carries the *trace id* of the
request that caused it.  The trace id doubles as the request id: the client
stamps it into the wire protocol, the serving worker adopts it, and every
span recorded on either side of the process boundary shares it — so one
request's whole life renders as a single timeline.

Cross-process flow::

    client                      worker
    ------                      ------
    span("client.plan")   --->  remote_context(trace_id, parent)
      trace_id=T, id=S            span("worker.plan")       (parent = S)
                                    span("planner.plan")    (parent = worker)
                                      span("search.simulate") ...
                          <---  drained span dicts ride the response
    tracer.absorb(spans)

Completed traces export to the Chrome ``chrome://tracing`` / Perfetto JSON
format (the same viewer :mod:`repro.sim.trace` targets for simulated
schedules): one row per process, spans nested by start/duration, the trace
id visible in every slice's args.

A disabled tracer (:data:`NULL_TRACER`, or ``Tracer(enabled=False)``) hands
out one shared no-op context manager, so tracing that is off costs a single
attribute check plus a no-op ``with``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter, time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Context-local (trace_id, span_id) of the innermost active span.  Shared by
#: every tracer in the process: the ambient trace context is a property of
#: the *request being served*, not of who observes it.
_CURRENT: "ContextVar[Optional[Tuple[str, str]]]" = ContextVar(
    "repro_current_span", default=None)

#: Microseconds per second (Chrome trace timestamps are microseconds).
_CHROME_SCALE = 1.0e6


_ID_LOCK = threading.Lock()
_ID_PREFIX = ""
_ID_PID = -1
_ID_COUNTER = itertools.count()


def new_id() -> str:
    """A fresh 16-hex-digit identifier (trace or span id).

    Eight random hex digits identify the process (re-drawn after fork, so
    pre-forked workers never collide) and an atomic counter supplies the
    rest — about 10x cheaper than ``uuid4()``, which matters at two ids per
    span on the per-candidate search hot path.
    """
    global _ID_PREFIX, _ID_PID, _ID_COUNTER
    if _ID_PID != os.getpid():
        with _ID_LOCK:
            if _ID_PID != os.getpid():
                _ID_PREFIX = format(int.from_bytes(os.urandom(4), "big"), "08x")
                _ID_COUNTER = itertools.count()
                _ID_PID = os.getpid()
    return _ID_PREFIX + format(next(_ID_COUNTER) & 0xFFFFFFFF, "08x")


def current_trace_id() -> Optional[str]:
    """Trace id of the innermost active span, or ``None`` outside any span."""
    current = _CURRENT.get()
    return current[0] if current is not None else None


def current_span_id() -> Optional[str]:
    """Span id of the innermost active span, or ``None`` outside any span."""
    current = _CURRENT.get()
    return current[1] if current is not None else None


@dataclass
class SpanRecord:
    """One completed span (what the tracer stores and exports)."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    #: Wall-clock start (``time.time()`` epoch seconds) — wall clock so spans
    #: from different processes on the same host share a timeline.
    start: float
    #: Seconds of work (measured with ``perf_counter`` for resolution).
    duration: float
    attributes: Dict[str, object] = field(default_factory=dict)
    #: OS pid of the recording process (one Chrome-trace row per pid).
    pid: int = 0
    #: Human label for the recording process ("client", "worker-1", ...).
    role: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (what rides the wire protocol)."""
        return {
            "name": self.name, "trace_id": self.trace_id,
            "span_id": self.span_id, "parent_id": self.parent_id,
            "start": self.start, "duration": self.duration,
            "attributes": self.attributes, "pid": self.pid, "role": self.role,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        """Rebuild a span from :meth:`to_dict` output (tolerant of extras)."""
        parent = payload.get("parent_id")
        return cls(
            name=str(payload.get("name", "")),
            trace_id=str(payload.get("trace_id", "")),
            span_id=str(payload.get("span_id", "")),
            parent_id=str(parent) if parent is not None else None,
            start=float(payload.get("start", 0.0)),  # type: ignore[arg-type]
            duration=float(payload.get("duration", 0.0)),  # type: ignore[arg-type]
            attributes=dict(payload.get("attributes") or {}),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            role=str(payload.get("role", "")),
        )


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **attributes: object) -> None:
        """Discard the attributes."""


#: The one instance every disabled ``span()`` call returns.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span on ``__exit__`` (enabled path)."""

    __slots__ = ("_tracer", "name", "attributes", "trace_id", "span_id",
                 "parent_id", "_token", "_start_wall", "_start_perf")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None

    def set(self, **attributes: object) -> None:
        """Attach/overwrite attributes on the span while it is open."""
        self.attributes.update(attributes)

    def __enter__(self) -> "_ActiveSpan":
        current = _CURRENT.get()
        if current is None:
            self.trace_id = new_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = current
        self.span_id = new_id()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self._start_wall = time()
        self._start_perf = perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        duration = perf_counter() - self._start_perf
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._record(SpanRecord(
            name=self.name, trace_id=self.trace_id, span_id=self.span_id,
            parent_id=self.parent_id, start=self._start_wall,
            duration=duration, attributes=self.attributes,
            pid=os.getpid(), role=self._tracer.role,
        ))
        return False


class Tracer:
    """Records spans for this process; see module docs for the full flow.

    Args:
        enabled: a disabled tracer hands out :data:`NULL_SPAN` and records
            nothing (the off-by-default-cheap contract).
        role: label for this process's row in the exported timeline
            (defaults to ``proc-<pid>``, resolved lazily so forked workers
            label themselves, not their parent).
        max_spans: retention cap; the oldest finished spans are dropped once
            exceeded, so a long-lived tracer cannot grow without bound.
    """

    def __init__(self, enabled: bool = True, role: Optional[str] = None,
                 max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.enabled = enabled
        self._role = role
        self.max_spans = max_spans
        self._finished: List[SpanRecord] = []
        self._lock = threading.Lock()

    @property
    def role(self) -> str:
        """This process's timeline label."""
        return self._role if self._role is not None else f"proc-{os.getpid()}"

    @role.setter
    def role(self, value: Optional[str]) -> None:
        self._role = value

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attributes: object):
        """Open a child span of the ambient context (use as ``with``)."""
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, attributes)

    @contextmanager
    def remote_context(self, trace_id: str,
                       parent_span_id: Optional[str]) -> Iterator[None]:
        """Adopt a trace context arriving from another process.

        Spans opened inside the ``with`` block join trace ``trace_id`` and
        parent under ``parent_span_id`` (the caller's span on the far side).
        """
        anchor = parent_span_id if parent_span_id is not None else ""
        token = _CURRENT.set((trace_id, anchor))
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def _record(self, span: SpanRecord) -> None:
        with self._lock:
            self._finished.append(span)
            overflow = len(self._finished) - self.max_spans
            if overflow > 0:
                del self._finished[:overflow]

    def absorb(self, span_dicts: Sequence[Dict[str, object]]) -> int:
        """Merge spans recorded by another process (wire-form dicts).

        Returns how many spans were absorbed.  Works even on a disabled
        tracer — absorbing a worker's spans is bookkeeping, not tracing.
        """
        records = [SpanRecord.from_dict(item) for item in span_dicts]
        with self._lock:
            self._finished.extend(records)
            overflow = len(self._finished) - self.max_spans
            if overflow > 0:
                del self._finished[:overflow]
        return len(records)

    # ------------------------------------------------------------------ #
    # retrieval / export
    # ------------------------------------------------------------------ #
    def spans(self, trace_id: Optional[str] = None) -> List[SpanRecord]:
        """Finished spans (optionally only those of one trace), oldest first."""
        with self._lock:
            if trace_id is None:
                return list(self._finished)
            return [s for s in self._finished if s.trace_id == trace_id]

    def drain(self, trace_id: Optional[str] = None) -> List[Dict[str, object]]:
        """Remove and return finished spans as wire-form dicts.

        With ``trace_id``, only that trace's spans are removed — the serving
        worker drains exactly the request it just answered.
        """
        with self._lock:
            if trace_id is None:
                drained, self._finished = self._finished, []
            else:
                drained = [s for s in self._finished if s.trace_id == trace_id]
                self._finished = [s for s in self._finished
                                  if s.trace_id != trace_id]
        return [s.to_dict() for s in drained]

    def clear(self) -> None:
        """Drop every finished span."""
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def chrome_trace(self, trace_id: Optional[str] = None) -> Dict[str, object]:
        """Spans as a Chrome/Perfetto trace dict (one row per process).

        Timestamps are normalized to the earliest span so the viewer opens
        at t=0; each slice's args carry the trace id, span id, parent id,
        and attributes, so a request id is searchable end to end.
        """
        spans = self.spans(trace_id)
        origin = min((s.start for s in spans), default=0.0)
        events: List[Dict[str, object]] = []
        seen_processes: Dict[int, str] = {}
        for span in spans:
            if span.pid not in seen_processes:
                seen_processes[span.pid] = span.role or f"proc-{span.pid}"
                events.append({"ph": "M", "name": "process_name",
                               "pid": span.pid, "tid": 0,
                               "args": {"name": seen_processes[span.pid]}})
            events.append({
                "name": span.name,
                "cat": "request",
                "ph": "X",
                "ts": (span.start - origin) * _CHROME_SCALE,
                "dur": span.duration * _CHROME_SCALE,
                "pid": span.pid,
                "tid": span.role or f"proc-{span.pid}",
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump_chrome_trace(self, path: str,
                          trace_id: Optional[str] = None) -> str:
        """Write :meth:`chrome_trace` JSON to ``path`` and return the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(trace_id), handle, indent=1)
            handle.write("\n")
        return path


#: Process-wide disabled tracer (no spans, no cost).
NULL_TRACER = Tracer(enabled=False)
