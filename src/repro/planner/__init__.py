"""Planning subsystem: memoized, pruned partitioning selection as a service.

The paper's conclusion leaves "how to select an optimal partitioning for a
particular problem" open; the exhaustive selector answers it by brute force.
This package is the production answer the ROADMAP's serving goal needs:

* :mod:`repro.planner.signature` — canonical request identities (machine
  fingerprint + geometric shape buckets) so near-identical requests share a
  plan;
* :mod:`repro.planner.cache` — a thread-safe LRU plan cache with counters
  and a persistent JSON store for cross-process warm starts;
* :mod:`repro.planner.search` — branch-and-bound over the design space using
  admissible cost-model lower bounds, provably returning the exhaustive
  selector's exact ranking while simulating fewer candidates;
* :mod:`repro.planner.graph` — the joint graph planner: dynamic programming
  (chains) and branch-and-bound (small DAGs) over per-op layout lattices
  with reshard costs priced on every edge, so locally-suboptimal layouts
  that avoid expensive redistributions can win end to end;
* :mod:`repro.planner.service` — :class:`PlannerService`, the serving
  facade: ``plan()`` / ``plan_many()`` / ``plan_graph()`` with a worker
  pool, single-flight dedup of concurrent identical requests, and serving
  statistics;
* :mod:`repro.planner.refresh` — :class:`BackgroundRefresher`, the adaptive
  refresh engine: stale-while-revalidate revalidation, pre-TTL refresh,
  predictive prewarming, and drift-triggered re-planning, all off the
  request path.

``repro.bench.selector.recommend_partitioning`` delegates here, so existing
callers get the pruned search transparently.
"""

from repro.planner.cache import (
    CacheStats,
    PlanCache,
    PlanEntry,
    load_portable_seeds,
    portable_plan_key,
)
from repro.planner.graph import (
    DEFAULT_LATTICE_SIZE,
    GraphPlan,
    GraphPlanEntry,
    OpLattice,
    assignment_timing,
    build_edge_tables,
    exhaustive_joint_plan,
    op_workload,
    plan_graph_layouts,
)
from repro.planner.refresh import (
    BackgroundRefresher,
    DriftTracker,
    RefreshStats,
    TransitionTable,
)
from repro.planner.search import (
    BOUND_CRITICAL_PATH,
    BOUND_OCCUPANCY,
    Candidate,
    SearchStats,
    candidate_lower_bound,
    enumerate_candidates,
    memory_per_device,
    search_partitionings,
)
from repro.planner.service import (
    GraphPlanResponse,
    PlannerService,
    PlanResponse,
    ServiceStats,
)
from repro.planner.signature import (
    DEFAULT_BUCKET_RATIO,
    GraphSignature,
    ProblemSignature,
    SignatureFactory,
    bucket_dim,
    machine_fingerprint,
    machine_portability_profile,
    options_fingerprint,
)

__all__ = [
    "BOUND_CRITICAL_PATH",
    "BOUND_OCCUPANCY",
    "BackgroundRefresher",
    "DriftTracker",
    "RefreshStats",
    "TransitionTable",
    "CacheStats",
    "PlanCache",
    "PlanEntry",
    "DEFAULT_LATTICE_SIZE",
    "GraphPlan",
    "GraphPlanEntry",
    "OpLattice",
    "assignment_timing",
    "build_edge_tables",
    "exhaustive_joint_plan",
    "op_workload",
    "plan_graph_layouts",
    "Candidate",
    "SearchStats",
    "candidate_lower_bound",
    "enumerate_candidates",
    "memory_per_device",
    "search_partitionings",
    "PlannerService",
    "PlanResponse",
    "GraphPlanResponse",
    "ServiceStats",
    "DEFAULT_BUCKET_RATIO",
    "GraphSignature",
    "ProblemSignature",
    "SignatureFactory",
    "bucket_dim",
    "machine_fingerprint",
    "machine_portability_profile",
    "options_fingerprint",
    "load_portable_seeds",
    "portable_plan_key",
]
