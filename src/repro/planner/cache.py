"""Plan cache: thread-safe LRU memoization plus a persistent JSON store.

The cache maps :meth:`ProblemSignature.key` strings to :class:`PlanEntry`
values (the ranked recommendations computed by the search).  Serving traffic
is read-heavy and highly repetitive, so the hot path is a single ordered-dict
lookup under a lock; hit/miss/eviction counters make cache sizing observable.

The JSON store gives warm starts across processes: a service can
:meth:`~PlanCache.save` its cache on shutdown and :meth:`~PlanCache.load` it
at boot, skipping every simulation for previously planned signatures.
Entries referencing partitioning schemes unknown to this build (e.g. a store
written by a newer version) are skipped rather than failing the load.

Plans are only as good as the cost model that priced them, so entries are
stamped with a **cost-model fingerprint**
(:meth:`repro.core.cost_model.CostModel.fingerprint`).  Loading with an
expected fingerprint silently drops entries stamped differently (or not at
all): after a pricing change, stale plans invalidate themselves instead of
being served.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.schemes import scheme_by_name
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload

#: Schema version of the persistent plan store.  Version 2 added the
#: cost-model fingerprint stamps; version-1 stores predate them and are
#: treated as entirely stale.
STORE_VERSION = 2


def recommendation_to_dict(rec: PartitioningRecommendation) -> Dict[str, object]:
    """JSON-friendly form of one recommendation (scheme stored by name)."""
    return {
        "scheme": rec.scheme.name,
        "replication": list(rec.replication),
        "stationary": rec.stationary,
        "percent_of_peak": rec.percent_of_peak,
        "simulated_time": rec.simulated_time,
        "memory_per_device": rec.memory_per_device,
    }


def recommendation_from_dict(payload: Dict[str, object]) -> PartitioningRecommendation:
    """Inverse of :func:`recommendation_to_dict` (raises KeyError on unknown schemes)."""
    return PartitioningRecommendation(
        scheme=scheme_by_name(str(payload["scheme"])),
        replication=tuple(int(x) for x in payload["replication"]),  # type: ignore[union-attr]
        stationary=str(payload["stationary"]),
        percent_of_peak=float(payload["percent_of_peak"]),  # type: ignore[arg-type]
        simulated_time=float(payload["simulated_time"]),  # type: ignore[arg-type]
        memory_per_device=int(payload["memory_per_device"]),  # type: ignore[arg-type]
    )


@dataclass
class PlanEntry:
    """One cached planning outcome: the ranked plans for a signature bucket."""

    recommendations: List[PartitioningRecommendation]
    #: The workload the plan was actually computed for (the shape bucket's
    #: representative when bucketing is enabled).
    workload: Optional[Workload] = None
    num_simulated: int = 0
    num_pruned: int = 0
    #: Digest of the cost model that priced this plan
    #: (:meth:`repro.core.cost_model.CostModel.fingerprint`); ``None`` for
    #: entries built outside a service context.
    fingerprint: Optional[str] = None

    @property
    def best(self) -> PartitioningRecommendation:
        return self.recommendations[0]

    def to_dict(self) -> Dict[str, object]:
        return {
            "recommendations": [recommendation_to_dict(r) for r in self.recommendations],
            "workload": self.workload.to_dict() if self.workload is not None else None,
            "num_simulated": self.num_simulated,
            "num_pruned": self.num_pruned,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PlanEntry":
        workload = payload.get("workload")
        fingerprint = payload.get("fingerprint")
        return cls(
            recommendations=[
                recommendation_from_dict(item) for item in payload["recommendations"]  # type: ignore[union-attr]
            ],
            workload=Workload.from_dict(workload) if workload else None,  # type: ignore[arg-type]
            num_simulated=int(payload.get("num_simulated", 0)),  # type: ignore[arg-type]
            num_pruned=int(payload.get("num_pruned", 0)),  # type: ignore[arg-type]
            fingerprint=str(fingerprint) if fingerprint is not None else None,
        )


@dataclass
class CacheStats:
    """Counter snapshot returned by :meth:`PlanCache.stats`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Thread-safe LRU cache of :class:`PlanEntry` keyed by signature strings."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, PlanEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[PlanEntry]:
        """Return the entry for ``key`` (refreshing its recency) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: str, entry: PlanEntry) -> None:
        """Insert/refresh an entry, evicting least-recently-used beyond capacity."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Presence check that does not touch recency or counters."""
        with self._lock:
            return key in self._entries

    def keys(self) -> List[str]:
        """Keys in LRU-to-MRU order (the order persisted by :meth:`save`)."""
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, puts=self._puts,
                              evictions=self._evictions, size=len(self._entries),
                              capacity=self.capacity)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> str:
        """Write all entries to a JSON store (atomically via rename)."""
        with self._lock:
            payload = {
                "version": STORE_VERSION,
                "entries": [
                    {"key": key, "plan": entry.to_dict()}
                    for key, entry in self._entries.items()
                ],
            }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # A per-call temp file keeps concurrent saves (e.g. two autosaving
        # service threads) from clobbering each other's staging file; the
        # final os.replace is atomic, so last-writer-wins cleanly.
        fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                                        suffix=".tmp", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def load(self, path: str, fingerprint: Optional[str] = None) -> int:
        """Merge entries from a JSON store; returns how many were loaded.

        Missing files, version mismatches, and malformed/unknown-scheme
        entries are tolerated (a cold cache is always a safe fallback).

        When ``fingerprint`` is given (the serving cost model's digest),
        entries stamped with a *different* fingerprint — or none at all — are
        stale and silently skipped: a cached plan priced by an older cost
        model must not be served as if it were current.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return 0
        if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
            return 0
        loaded = 0
        for item in payload.get("entries", []):
            try:
                key = item["key"]
                entry = PlanEntry.from_dict(item["plan"])
            except (KeyError, TypeError, ValueError):
                continue
            if not entry.recommendations:
                continue
            if fingerprint is not None and entry.fingerprint != fingerprint:
                continue
            self.put(str(key), entry)
            loaded += 1
        return loaded
