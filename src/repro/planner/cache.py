"""Plan cache: a bounded, TTL-evicting LRU store with JSON persistence.

The cache maps :meth:`ProblemSignature.key` strings to :class:`PlanEntry`
values (the ranked recommendations computed by the search).  Serving traffic
is read-heavy and highly repetitive, so the hot path is a single ordered-dict
lookup under a lock; hit/miss/eviction counters make cache sizing observable.

Long-lived serving workers mean the store must be **bounded**: in addition to
the entry-count capacity, the cache can enforce a byte budget (``max_bytes``,
measured as the JSON-serialized footprint of each entry — the same bytes the
on-disk store would occupy) and a per-entry time-to-live (``ttl_seconds``).
Over-budget inserts evict in LRU order; expired entries are dropped lazily on
access and eagerly on load, and both show up in the counters
(:attr:`CacheStats.evictions` / :attr:`CacheStats.expirations`).

A **grace window** (``grace_seconds``) softens TTL expiry for serving:
:meth:`~PlanCache.get_for_serving` keeps answering with an expired entry for
up to ``grace_seconds`` past its TTL, flagging the answer stale so the caller
can revalidate in the background (stale-while-revalidate).  The plain
:meth:`~PlanCache.get` path is unchanged — expiry there still means a miss —
so callers that never opt in see the historical behavior bit for bit.

The JSON store gives warm starts across processes: a service can
:meth:`~PlanCache.save` its cache on shutdown and :meth:`~PlanCache.load` it
at boot, skipping every simulation for previously planned signatures.  The
store mirrors the in-memory bounds: entries persist in LRU-to-MRU order with
their creation timestamps (schema v3), so a reloaded cache evicts and expires
exactly as the original would have.  Version-2 stores (which predate the
timestamps) migrate on load — their entries are re-stamped at load time.
Entries referencing partitioning schemes unknown to this build (e.g. a store
written by a newer version) are skipped rather than failing the load.

Plans are only as good as the cost model that priced them, so entries are
stamped with a **cost-model fingerprint**
(:meth:`repro.core.cost_model.CostModel.fingerprint`).  Loading with an
expected fingerprint silently drops entries stamped differently (or not at
all): after a pricing change, stale plans invalidate themselves instead of
being served.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.bench.schemes import scheme_by_name
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload
from repro.obs.metrics import NULL_REGISTRY

#: Schema version of the persistent plan store.  Version 3 added per-entry
#: creation timestamps (for TTL eviction across processes); version 2 added
#: the cost-model fingerprint stamps.  Version-2 stores still load (their
#: entries are re-stamped at load time); version-1 stores predate the
#: fingerprints and are treated as entirely stale.
STORE_VERSION = 3

#: Older schema versions :meth:`PlanCache.load` still accepts (by migration).
LEGACY_STORE_VERSIONS = (2,)


def recommendation_to_dict(rec: PartitioningRecommendation) -> Dict[str, object]:
    """JSON-friendly form of one recommendation (scheme stored by name)."""
    return {
        "scheme": rec.scheme.name,
        "replication": list(rec.replication),
        "stationary": rec.stationary,
        "percent_of_peak": rec.percent_of_peak,
        "simulated_time": rec.simulated_time,
        "memory_per_device": rec.memory_per_device,
    }


def recommendation_from_dict(payload: Dict[str, object]) -> PartitioningRecommendation:
    """Inverse of :func:`recommendation_to_dict` (raises KeyError on unknown schemes)."""
    return PartitioningRecommendation(
        scheme=scheme_by_name(str(payload["scheme"])),
        replication=tuple(int(x) for x in payload["replication"]),  # type: ignore[union-attr]
        stationary=str(payload["stationary"]),
        percent_of_peak=float(payload["percent_of_peak"]),  # type: ignore[arg-type]
        simulated_time=float(payload["simulated_time"]),  # type: ignore[arg-type]
        memory_per_device=int(payload["memory_per_device"]),  # type: ignore[arg-type]
    )


@dataclass
class PlanEntry:
    """One cached planning outcome: the ranked plans for a signature bucket."""

    recommendations: List[PartitioningRecommendation]
    #: The workload the plan was actually computed for (the shape bucket's
    #: representative when bucketing is enabled).
    workload: Optional[Workload] = None
    num_simulated: int = 0
    num_pruned: int = 0
    #: Digest of the cost model that priced this plan
    #: (:meth:`repro.core.cost_model.CostModel.fingerprint`); ``None`` for
    #: entries built outside a service context.
    fingerprint: Optional[str] = None
    #: Coarse machine-compatibility digest
    #: (:func:`repro.planner.signature.machine_portability_profile`).  Two
    #: entries sharing a profile were computed over the *same candidate
    #: space* even if their machine fingerprints differ, which qualifies
    #: this entry to seed another machine's branch-and-bound search.
    #: ``None`` for entries predating portability (never seeded from).
    machine_profile: Optional[str] = None

    @property
    def best(self) -> PartitioningRecommendation:
        """The top-ranked recommendation."""
        return self.recommendations[0]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form of the entry (inverse of :meth:`from_dict`)."""
        return {
            "recommendations": [recommendation_to_dict(r) for r in self.recommendations],
            "workload": self.workload.to_dict() if self.workload is not None else None,
            "num_simulated": self.num_simulated,
            "num_pruned": self.num_pruned,
            "fingerprint": self.fingerprint,
            "machine_profile": self.machine_profile,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PlanEntry":
        """Rebuild an entry from :meth:`to_dict` output (raises on unknown schemes)."""
        workload = payload.get("workload")
        fingerprint = payload.get("fingerprint")
        machine_profile = payload.get("machine_profile")
        return cls(
            recommendations=[
                recommendation_from_dict(item) for item in payload["recommendations"]  # type: ignore[union-attr]
            ],
            workload=Workload.from_dict(workload) if workload else None,  # type: ignore[arg-type]
            num_simulated=int(payload.get("num_simulated", 0)),  # type: ignore[arg-type]
            num_pruned=int(payload.get("num_pruned", 0)),  # type: ignore[arg-type]
            fingerprint=str(fingerprint) if fingerprint is not None else None,
            machine_profile=(str(machine_profile)
                             if machine_profile is not None else None),
        )


#: Decoders for specialized entry payloads in the persistent store, keyed by
#: the payload's ``"kind"`` discriminator.  Plain :class:`PlanEntry` payloads
#: carry no kind and keep their historical decoding; subclasses (the graph
#: planner's :class:`~repro.planner.graph.GraphPlanEntry`) register here at
#: import time so :meth:`PlanCache.load` can round-trip them.  Payloads with
#: an unregistered kind are skipped, exactly like unknown-scheme entries.
_ENTRY_DECODERS: Dict[str, Callable[[Dict[str, object]], PlanEntry]] = {}


def register_entry_decoder(kind: str,
                           decoder: Callable[[Dict[str, object]], PlanEntry]) -> None:
    """Register the ``from_dict`` for one specialized plan-entry ``kind``."""
    _ENTRY_DECODERS[str(kind)] = decoder


def decode_entry(payload: Dict[str, object]) -> Optional[PlanEntry]:
    """Decode one persisted entry payload, dispatching on its ``kind``.

    Returns ``None`` for unregistered kinds (forward compatibility: a store
    written by a newer build must not fail the whole load).  Raises the same
    ``KeyError``/``ValueError`` family as :meth:`PlanEntry.from_dict` for
    malformed payloads — :meth:`PlanCache.load` already tolerates those.
    """
    kind = payload.get("kind")
    if kind is None:
        return PlanEntry.from_dict(payload)
    decoder = _ENTRY_DECODERS.get(str(kind))
    return decoder(payload) if decoder is not None else None


@dataclass
class CacheStats:
    """Counter snapshot returned by :meth:`PlanCache.stats`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: Entries dropped because their TTL elapsed (on access or on load).
    expirations: int = 0
    size: int = 0
    capacity: int = 0
    #: Serialized footprint of all resident entries, in bytes.
    total_bytes: int = 0
    #: The configured byte budget (``None`` means unbounded).
    max_bytes: Optional[int] = None
    #: The configured per-entry time-to-live (``None`` means entries never expire).
    ttl_seconds: Optional[float] = None
    #: Age in seconds of the oldest resident entry (``None`` when empty).
    oldest_age_seconds: Optional[float] = None
    #: Expired-but-in-grace entries served by :meth:`PlanCache.get_for_serving`
    #: (each also counts as a hit — the caller got an answer).
    stale_serves: int = 0
    #: Entries dropped by :meth:`PlanCache.invalidate` (drift re-planning).
    invalidations: int = 0
    #: The configured stale-while-revalidate window (``None`` means expiry
    #: is hard even on the serving path).
    grace_seconds: Optional[float] = None

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Slot:
    """Internal cache slot: the entry plus its bookkeeping (age and footprint)."""

    __slots__ = ("entry", "created_at", "size_bytes")

    def __init__(self, entry: PlanEntry, created_at: float, size_bytes: int) -> None:
        self.entry = entry
        self.created_at = created_at
        self.size_bytes = size_bytes


def entry_size_bytes(entry: PlanEntry) -> int:
    """Serialized footprint of one entry — the bytes it would occupy on disk.

    This is the unit the ``max_bytes`` budget is charged in, so the in-memory
    bound and the persistent store's size agree (up to the fixed framing
    overhead of the store envelope).
    """
    return len(json.dumps(entry.to_dict(), separators=(",", ":")).encode("utf-8"))


class PlanCache:
    """Thread-safe bounded LRU cache of :class:`PlanEntry` keyed by signatures.

    Three independent bounds keep long-lived workers from growing without
    limit; any combination may be active:

    * ``capacity`` — maximum number of resident entries (LRU eviction);
    * ``max_bytes`` — maximum summed :func:`entry_size_bytes` footprint
      (LRU eviction; the most recent insert itself is always admitted, so a
      single oversized entry occupies the cache alone rather than deadlocking
      every put);
    * ``ttl_seconds`` — per-entry time-to-live measured from insertion;
      expired entries are dropped lazily on :meth:`get` and eagerly on
      :meth:`load`, and count as misses (plus the ``expirations`` counter).

    ``grace_seconds`` opts the *serving* lookup path
    (:meth:`get_for_serving`) into stale-while-revalidate: an entry expired
    less than ``grace_seconds`` ago is still returned (flagged stale) instead
    of dropped, so the caller can answer immediately and refresh off-path.
    The window only matters with a TTL set, and never affects :meth:`get`.

    ``clock`` is injectable for tests; it must return seconds as a float and
    defaults to :func:`time.time` (wall clock, so TTLs survive the on-disk
    round trip across processes).

    When **traffic weights** are supplied (:meth:`set_traffic_weights` — the
    per-signature request counts a telemetry rollup produces), eviction stops
    being pure LRU: the victim is the entry with the *lowest observed
    traffic*, ties broken least-recently-used.  A hot-but-old signature then
    outlives a cold-but-recent one under byte pressure.  With no weights set
    the behavior is exactly the historical LRU, bit for bit.

    ``metrics`` optionally wires the counters onto a
    :class:`~repro.obs.metrics.MetricsRegistry` (hits/misses/puts/evictions/
    expirations counters plus resident entry/byte gauges); left unset, the
    no-op registry keeps the hot path free.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        max_bytes: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
        grace_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        if grace_seconds is not None and grace_seconds <= 0:
            raise ValueError(f"grace_seconds must be > 0, got {grace_seconds}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.grace_seconds = grace_seconds
        self._clock = clock
        self._entries: "OrderedDict[str, _Slot]" = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._expirations = 0
        self._stale_serves = 0
        self._invalidations = 0
        self._weights: Optional[Dict[str, float]] = None
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_lookups_hit = registry.counter(
            "repro_plan_cache_lookups_total", "Plan-cache lookups by result.",
            result="hit")
        self._m_lookups_miss = registry.counter(
            "repro_plan_cache_lookups_total", "Plan-cache lookups by result.",
            result="miss")
        self._m_puts = registry.counter(
            "repro_plan_cache_puts_total", "Plan-cache inserts.")
        self._m_evictions = registry.counter(
            "repro_plan_cache_evictions_total",
            "Entries evicted by capacity/byte pressure.")
        self._m_expirations = registry.counter(
            "repro_plan_cache_expirations_total", "Entries dropped by TTL.")
        self._m_stale_serves = registry.counter(
            "repro_plan_cache_stale_serves_total",
            "Expired-but-in-grace entries served pending a refresh.")
        self._m_invalidations = registry.counter(
            "repro_plan_cache_invalidations_total",
            "Entries dropped explicitly (e.g. structure drift).")
        self._m_entries = registry.gauge(
            "repro_plan_cache_entries", "Resident plan-cache entries.")
        self._m_bytes = registry.gauge(
            "repro_plan_cache_bytes", "Serialized bytes of resident entries.")

    # ------------------------------------------------------------------ #
    # lookup / insert
    # ------------------------------------------------------------------ #
    def _expired(self, slot: _Slot, now: float) -> bool:
        return self.ttl_seconds is not None and now - slot.created_at > self.ttl_seconds

    def _drop(self, key: str) -> None:
        slot = self._entries.pop(key)
        self._total_bytes -= slot.size_bytes

    def _sync_gauges(self) -> None:
        self._m_entries.set(float(len(self._entries)))
        self._m_bytes.set(float(self._total_bytes))

    def get(self, key: str) -> Optional[PlanEntry]:
        """Return the entry for ``key`` (refreshing its recency) or ``None``.

        An entry whose TTL has elapsed is dropped and reported as a miss —
        the caller re-plans exactly as it would for a key never seen.
        """
        found = self.get_with_age(key)
        return found[0] if found is not None else None

    def get_with_age(self, key: str) -> Optional[tuple]:
        """Like :meth:`get`, but returns ``(entry, age_seconds)`` on a hit.

        The age is measured from the entry's insertion (or its persisted
        ``created_at`` after a store round trip) — the "plan age" that
        serving telemetry reports per request.
        """
        with self._lock:
            slot = self._entries.get(key)
            if slot is None:
                self._misses += 1
                self._m_lookups_miss.inc()
                return None
            now = self._clock()
            if self._expired(slot, now):
                self._drop(key)
                self._expirations += 1
                self._misses += 1
                self._m_expirations.inc()
                self._m_lookups_miss.inc()
                self._sync_gauges()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._m_lookups_hit.inc()
            return (slot.entry, max(0.0, now - slot.created_at))

    def get_for_serving(self, key: str) -> Optional[tuple]:
        """Serving lookup: ``(entry, age_seconds, stale)`` or ``None``.

        The stale-while-revalidate variant of :meth:`get_with_age`.  A fresh
        entry behaves identically (``stale=False``).  An entry whose TTL
        elapsed less than ``grace_seconds`` ago is *kept and returned* with
        ``stale=True`` — the caller should serve it immediately and enqueue a
        background refresh — and counts as a hit plus a stale serve.  Past
        ``ttl + grace`` (or with no grace window configured) expiry is hard:
        the entry is dropped and the lookup is a miss, exactly as
        :meth:`get`.
        """
        with self._lock:
            slot = self._entries.get(key)
            if slot is None:
                self._misses += 1
                self._m_lookups_miss.inc()
                return None
            now = self._clock()
            if self._expired(slot, now):
                overshoot = (now - slot.created_at) - (self.ttl_seconds or 0.0)
                if self.grace_seconds is None or overshoot > self.grace_seconds:
                    self._drop(key)
                    self._expirations += 1
                    self._misses += 1
                    self._m_expirations.inc()
                    self._m_lookups_miss.inc()
                    self._sync_gauges()
                    return None
                self._entries.move_to_end(key)
                self._hits += 1
                self._stale_serves += 1
                self._m_lookups_hit.inc()
                self._m_stale_serves.inc()
                return (slot.entry, max(0.0, now - slot.created_at), True)
            self._entries.move_to_end(key)
            self._hits += 1
            self._m_lookups_hit.inc()
            return (slot.entry, max(0.0, now - slot.created_at), False)

    def invalidate(self, key: str) -> bool:
        """Explicitly drop one entry (no hit/miss accounting); True if present.

        Used by drift-triggered re-planning: when live structure statistics
        show a signature's plan was computed for a bucket the traffic has
        left, the refresher invalidates it so the next lookup re-plans (or a
        background refresh repopulates it) instead of serving a mispriced
        plan until TTL.
        """
        with self._lock:
            if key not in self._entries:
                return False
            self._drop(key)
            self._invalidations += 1
            self._m_invalidations.inc()
            self._sync_gauges()
            return True

    def _victim(self, protect: str) -> str:
        """Pick the next eviction victim (caller holds the lock).

        Without traffic weights: the LRU entry, exactly as always.  With
        weights: the lowest-traffic entry, ties broken LRU; the just-inserted
        ``protect`` key is spared while any other entry remains, so an insert
        is always admitted.
        """
        if self._weights is None:
            return next(iter(self._entries))
        best_key: Optional[str] = None
        best_rank: Optional[tuple] = None
        for position, key in enumerate(self._entries):
            if key == protect and len(self._entries) > 1:
                continue
            rank = (self._weights.get(key, 0.0), position)
            if best_rank is None or rank < best_rank:
                best_key = key
                best_rank = rank
        assert best_key is not None
        return best_key

    def put(self, key: str, entry: PlanEntry, *, created_at: Optional[float] = None) -> None:
        """Insert/refresh an entry, evicting beyond the bounds.

        Victims are least-recently-used, unless traffic weights are set
        (:meth:`set_traffic_weights`), in which case the lowest-traffic
        entry goes first.

        Args:
            key: the signature key the entry is cached under.
            entry: the planning outcome to cache.
            created_at: TTL epoch for the entry; defaults to "now".  The load
                path passes the persisted timestamp through so an entry's age
                survives the on-disk round trip.
        """
        size = entry_size_bytes(entry)
        with self._lock:
            if key in self._entries:
                self._drop(key)
            self._entries[key] = _Slot(entry, self._clock() if created_at is None else created_at,
                                       size)
            self._total_bytes += size
            self._puts += 1
            self._m_puts.inc()
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None
                and self._total_bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                self._drop(self._victim(key))
                self._evictions += 1
                self._m_evictions.inc()
            self._sync_gauges()

    def set_traffic_weights(self, weights: Optional[Dict[str, float]]) -> None:
        """Install per-signature traffic weights guiding eviction.

        ``weights`` maps signature keys to observed request counts (see
        :meth:`repro.obs.rollup.Rollup.traffic_weights`); keys absent from the
        map weigh 0.0 (coldest).  Passing ``None`` restores pure LRU.
        """
        with self._lock:
            self._weights = dict(weights) if weights is not None else None

    @property
    def traffic_weights(self) -> Optional[Dict[str, float]]:
        """The installed eviction weights (``None`` when eviction is pure LRU)."""
        with self._lock:
            return dict(self._weights) if self._weights is not None else None

    def prune_expired(self) -> int:
        """Eagerly drop every expired entry; returns how many were dropped.

        :meth:`get` already drops lazily, so calling this is optional — it
        exists for long-idle services that want ``stats().size`` to reflect
        only live entries (e.g. before a :meth:`save`).
        """
        with self._lock:
            now = self._clock()
            stale = [key for key, slot in self._entries.items() if self._expired(slot, now)]
            for key in stale:
                self._drop(key)
                self._m_expirations.inc()
            self._expirations += len(stale)
            self._sync_gauges()
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Presence check that does not touch recency or counters.

        Expired-but-not-yet-collected entries count as absent.
        """
        with self._lock:
            slot = self._entries.get(key)
            return slot is not None and not self._expired(slot, self._clock())

    def keys(self) -> List[str]:
        """Keys in LRU-to-MRU order (the order persisted by :meth:`save`)."""
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0
            self._sync_gauges()

    def entry_ages(self) -> Dict[str, float]:
        """Age in seconds of every resident entry (no recency/counter effects)."""
        with self._lock:
            now = self._clock()
            return {key: max(0.0, now - slot.created_at)
                    for key, slot in self._entries.items()}

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction/expiration counters and bounds."""
        with self._lock:
            oldest: Optional[float] = None
            if self._entries:
                now = self._clock()
                oldest = max(max(0.0, now - slot.created_at)
                             for slot in self._entries.values())
            return CacheStats(hits=self._hits, misses=self._misses, puts=self._puts,
                              evictions=self._evictions, expirations=self._expirations,
                              size=len(self._entries), capacity=self.capacity,
                              total_bytes=self._total_bytes, max_bytes=self.max_bytes,
                              ttl_seconds=self.ttl_seconds,
                              oldest_age_seconds=oldest,
                              stale_serves=self._stale_serves,
                              invalidations=self._invalidations,
                              grace_seconds=self.grace_seconds)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> str:
        """Write all entries to a JSON store (atomically via rename).

        Entries persist in LRU-to-MRU order with their creation timestamps,
        so a cache reloaded from the store evicts and expires in the same
        order the original would have.

        Args:
            path: destination file (parent directories are created).

        Returns:
            The path written.
        """
        with self._lock:
            payload = {
                "version": STORE_VERSION,
                "saved_at": self._clock(),
                "entries": [
                    {"key": key, "created_at": slot.created_at, "plan": slot.entry.to_dict()}
                    for key, slot in self._entries.items()
                ],
            }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # A per-call temp file keeps concurrent saves (e.g. two autosaving
        # service threads) from clobbering each other's staging file; the
        # final os.replace is atomic, so last-writer-wins cleanly.
        fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                                        suffix=".tmp", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # Compact separators keep the on-disk size aligned with the
                # max_bytes accounting (entry_size_bytes measures compact
                # JSON); pretty-printing would inflate the store well past
                # the configured budget.
                json.dump(payload, handle, separators=(",", ":"))
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def load(self, path: str, fingerprint: Optional[str] = None) -> int:
        """Merge entries from a JSON store; returns how many were loaded.

        Missing files, version mismatches, and malformed/unknown-scheme
        entries are tolerated (a cold cache is always a safe fallback).
        Version-2 stores (no timestamps) migrate transparently: their entries
        are stamped ``created_at = now``, so a TTL measures from the load.

        When ``fingerprint`` is given (the serving cost model's digest),
        entries stamped with a *different* fingerprint — or none at all — are
        stale and silently skipped: a cached plan priced by an older cost
        model must not be served as if it were current.

        Entries whose TTL already elapsed (per this cache's ``ttl_seconds``
        and the persisted ``created_at``) are dropped on load and counted as
        expirations rather than occupying space only to expire on first
        access.  Entries load in store order (LRU first), so the merged cache
        preserves the saved recency ranking and the usual bounds apply.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return 0
        if not isinstance(payload, dict):
            return 0
        version = payload.get("version")
        if version != STORE_VERSION and version not in LEGACY_STORE_VERSIONS:
            return 0
        now = self._clock()
        loaded = 0
        for item in payload.get("entries", []):
            try:
                key = item["key"]
                entry = decode_entry(item["plan"])
            except (KeyError, TypeError, ValueError):
                continue
            if entry is None or not entry.recommendations:
                continue
            if fingerprint is not None and entry.fingerprint != fingerprint:
                continue
            raw_created = item.get("created_at")
            try:
                created_at = now if raw_created is None else float(raw_created)
            except (TypeError, ValueError):
                created_at = now
            if self.ttl_seconds is not None and now - created_at > self.ttl_seconds:
                with self._lock:
                    self._expirations += 1
                continue
            self.put(str(key), entry, created_at=created_at)
            loaded += 1
        return loaded


# ---------------------------------------------------------------------- #
# cross-fingerprint portability (plan seeding)
# ---------------------------------------------------------------------- #
#: One branch-and-bound seed: ``(scheme_name, replication, stationary)`` —
#: just enough to re-identify a candidate in another machine's enumeration.
SeedSpec = tuple


def portable_plan_key(workload: Workload) -> str:
    """Machine-independent identity of a planned (bucket-corner) workload.

    The portable analogue of :meth:`ProblemSignature.key`: the exact
    dimensions the plan was computed for plus the structure token, with the
    machine fingerprint, budget, and options digest deliberately dropped —
    those are what differ across the fleet, and seeds only need to find
    "the same problem shape" on the destination machine.
    """
    structure = workload.structure
    token = "dense" if structure.is_dense else structure.signature_token()
    return f"{workload.m}x{workload.n}x{workload.k}|{token}"


def load_portable_seeds(path: str, machine_profile: str) -> Dict[str, List[SeedSpec]]:
    """Harvest branch-and-bound seeds from another machine's plan store.

    Reads a :meth:`PlanCache.save` store written by a *different* machine
    and returns, per :func:`portable_plan_key`, the candidate specs its
    ranked plans name — ``(scheme_name, replication_tuple, stationary)``
    triples.  Only entries stamped with a matching ``machine_profile`` (the
    same candidate space; see
    :func:`repro.planner.signature.machine_portability_profile`) qualify;
    graph entries (``kind``-bearing payloads) and entries without a planned
    workload are skipped — portability is a single-op relaxation.

    Crucially this is **not** a cache load: the foreign entries' simulated
    times were priced by a different machine's cost model and never enter
    the serving cache.  The specs are hints the destination's
    :func:`~repro.planner.search.search_partitionings` pre-simulates (on
    its *own* cost model) to establish an incumbent pruning threshold
    early — so the final ranking is provably identical to a cold search,
    just cheaper to reach.

    Missing/malformed stores and unknown-scheme entries are tolerated, the
    same forgiving posture as :meth:`PlanCache.load`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    version = payload.get("version")
    if version != STORE_VERSION and version not in LEGACY_STORE_VERSIONS:
        return {}
    seeds: Dict[str, List[SeedSpec]] = {}
    for item in payload.get("entries", []):
        try:
            plan = item["plan"]
            if not isinstance(plan, dict) or plan.get("kind") is not None:
                continue  # graph entries have no single-op candidate space
            entry = PlanEntry.from_dict(plan)
        except (KeyError, TypeError, ValueError):
            continue
        if (entry.machine_profile != machine_profile
                or entry.workload is None or not entry.recommendations):
            continue
        bucket = seeds.setdefault(portable_plan_key(entry.workload), [])
        for rec in entry.recommendations:
            spec = (rec.scheme.name, tuple(rec.replication), rec.stationary)
            if spec not in bucket:
                bucket.append(spec)
    return seeds
