"""Joint layout planning over op graphs (linear chains and small DAGs).

The single-op planner picks the best ``(scheme, replication, stationary)``
layout for one matmul in isolation.  Real models run *sequences* of matmuls —
an MLP block is ``X @ W1 @ W2``, attention is QKV projection → score → value —
and the output layout of one op becomes the input layout of the next.  Picking
each op's layout greedily ignores the reshard between consecutive ops: the
per-op winner can force two expensive redistributions that a slightly slower
middle layout would have avoided entirely.

This module plans the whole graph jointly.  Per op it builds a **layout
lattice** (the top-``lattice_size`` recommendations from the existing pruned
search, with their exact simulated times), prices every producer→consumer
layout transition with :func:`repro.dist.redistribute.redistribution_cost`,
and minimizes the end-to-end makespan under the shared critical-path rule
:func:`repro.sim.graphtime.dag_makespan`:

* **Linear chains** are solved exactly by dynamic programming over the layout
  lattice (state = the candidate chosen for op *i*; transition = reshard cost
  plus the next op's simulated time).
* **Small DAGs** are solved by best-first branch-and-bound: partial
  assignments in topological order, bounded by the critical-path makespan of
  the optimistically-completed graph (an admissible bound, so the first
  complete assignment popped is optimal).

Both solvers, the exhaustive test reference, and the greedy baseline all
score assignments through the *same* :func:`assignment_timing` function, so
the reported improvement of joint over greedy is priced consistently.

Quickstart::

    from repro.core.graph import mlp_chain
    from repro.planner.graph import plan_graph_layouts
    from repro.topology.machines import uniform_system

    plan, stats = plan_graph_layouts(uniform_system(4), mlp_chain(96, 64))
    print(plan.makespan, "vs greedy", plan.greedy_makespan)
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.schemes import PartitioningScheme
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.graph import GraphOp, OpGraph
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Partition
from repro.dist.redistribute import redistribution_cost
from repro.obs.tracing import NULL_TRACER
from repro.planner.cache import PlanEntry, register_entry_decoder
from repro.planner.search import SearchStats, search_partitionings
from repro.runtime.runtime import Runtime
from repro.sim.graphtime import GraphTiming, dag_makespan
from repro.topology.machines import MachineSpec

#: Default per-op lattice width: how many top recommendations the joint
#: planner considers per op.  Small on purpose — the chain DP is
#: ``O(ops * L^2)`` and the searches dominate anyway.
DEFAULT_LATTICE_SIZE = 4

#: ``GraphPlan.method`` values.
METHOD_CHAIN_DP = "chain_dp"
METHOD_BRANCH_AND_BOUND = "branch_and_bound"

#: ``kind`` discriminator for graph entries in the persistent plan store.
GRAPH_ENTRY_KIND = "graph"


def op_workload(op: GraphOp) -> Workload:
    """The dense :class:`Workload` a graph op stands for."""
    return Workload(op.name, op.m, op.n, op.k)


@dataclass(frozen=True)
class OpLattice:
    """One op's layout lattice: its top-ranked layouts with exact times."""

    #: The workload the lattice was searched for.
    workload: Workload
    #: Ranked recommendations; index 0 is the op's greedy (isolated) winner.
    recommendations: Tuple[PartitioningRecommendation, ...]

    def __len__(self) -> int:
        return len(self.recommendations)


def candidate_layout(machine: MachineSpec, workload: Workload,
                     recommendation: PartitioningRecommendation,
                     slot: int) -> Tuple[Partition, int]:
    """The ``(partition, replication)`` layout of one matrix slot.

    ``slot`` indexes the matmul's matrices: 0 = operand A, 1 = operand B,
    2 = output C.  This is the layout the executor would actually place that
    matrix in under the recommendation — the graph planner prices edge
    reshards between exactly these layouts.
    """
    rep = recommendation.replication
    procs = machine.num_devices
    parts = recommendation.scheme.partitions(
        workload, procs // rep[0], procs // rep[1], procs // rep[2]
    )
    return parts[slot], rep[slot]


def edge_reshard_cost(runtime: Runtime, shape: Tuple[int, int],
                      src_layout: Tuple[Partition, int],
                      dst_layout: Tuple[Partition, int]) -> Tuple[float, int]:
    """Price moving a ``shape`` matrix from one layout to another.

    Returns ``(modelled_seconds, moved_bytes)`` from
    :func:`repro.dist.redistribute.redistribution_cost`; identical layouts
    co-locate every region and price to exactly zero.
    """
    src_part, src_rep = src_layout
    dst_part, dst_rep = dst_layout
    matrix = DistributedMatrix.create(runtime, shape, src_part,
                                      replication=src_rep, name="edge-src",
                                      materialize=False)
    cost = redistribution_cost(matrix, dst_part, replication=dst_rep)
    return float(cost["modelled_time_s"]), int(cost["moved_bytes"])


def build_edge_tables(machine: MachineSpec, graph: OpGraph,
                      lattices: Sequence[OpLattice]) -> List[List[List[float]]]:
    """Per-edge reshard-time tables between every candidate layout pair.

    ``tables[e][i][j]`` is the modelled seconds to reshard edge ``e``'s
    tensor from the producer's candidate-``i`` output layout onto the
    consumer's candidate-``j`` operand layout.  One symbolic runtime prices
    every entry (:func:`redistribution_cost` never advances its clock).
    """
    runtime = Runtime(machine=machine)
    tables: List[List[List[float]]] = []
    for edge in graph.edges:
        src_lattice, dst_lattice = lattices[edge.src], lattices[edge.dst]
        shape = (src_lattice.workload.m, src_lattice.workload.n)
        slot = 0 if edge.operand == "A" else 1
        src_layouts = [
            candidate_layout(machine, src_lattice.workload, rec, 2)
            for rec in src_lattice.recommendations
        ]
        dst_layouts = [
            candidate_layout(machine, dst_lattice.workload, rec, slot)
            for rec in dst_lattice.recommendations
        ]
        tables.append([
            [edge_reshard_cost(runtime, shape, src, dst)[0] for dst in dst_layouts]
            for src in src_layouts
        ])
    return tables


def assignment_timing(graph: OpGraph, lattices: Sequence[OpLattice],
                      edge_tables: Sequence[Sequence[Sequence[float]]],
                      assignment: Sequence[int]) -> GraphTiming:
    """Score one joint assignment (candidate index per op) end to end.

    This is the single scoring rule shared by the DP, the branch-and-bound,
    the greedy baseline, and the exhaustive reference — all four price an
    assignment as the :func:`~repro.sim.graphtime.dag_makespan` of the graph
    with the assignment's op times and reshard edge times.
    """
    op_times = [
        lattices[i].recommendations[assignment[i]].simulated_time
        for i in range(len(graph.ops))
    ]
    edge_times = [
        edge_tables[pos][assignment[edge.src]][assignment[edge.dst]]
        for pos, edge in enumerate(graph.edges)
    ]
    pairs = [(edge.src, edge.dst) for edge in graph.edges]
    return dag_makespan(len(graph.ops), pairs, op_times, edge_times)


def _solve_chain_dp(graph: OpGraph, lattices: Sequence[OpLattice],
                    edge_tables: Sequence[Sequence[Sequence[float]]],
                    ) -> Tuple[Tuple[int, ...], float]:
    """Exact DP over a chain's layout lattice; returns (assignment, makespan).

    State after step *t* is the candidate chosen for the *t*-th op in chain
    order; the transition adds the reshard between consecutive ops plus the
    next op's simulated time.  Ascending-index iteration with strict ``<``
    keeps the tie-break deterministic (lowest-ranked candidates win ties).
    """
    order = graph.topological_order()
    edge_position = {(edge.src, edge.dst): pos
                     for pos, edge in enumerate(graph.edges)}
    first = order[0]
    best = [lattices[first].recommendations[c].simulated_time
            for c in range(len(lattices[first]))]
    back: List[List[int]] = []
    for step in range(1, len(order)):
        prev_op, this_op = order[step - 1], order[step]
        table = edge_tables[edge_position[(prev_op, this_op)]]
        current: List[float] = []
        pointers: List[int] = []
        for cand in range(len(lattices[this_op])):
            op_time = lattices[this_op].recommendations[cand].simulated_time
            best_time: Optional[float] = None
            best_prev = 0
            for prev_cand in range(len(lattices[prev_op])):
                total = best[prev_cand] + table[prev_cand][cand] + op_time
                if best_time is None or total < best_time:
                    best_time, best_prev = total, prev_cand
            current.append(best_time if best_time is not None else op_time)
            pointers.append(best_prev)
        best = current
        back.append(pointers)
    final = min(range(len(best)), key=lambda c: (best[c], c))
    makespan = best[final]
    chain_choice = [final]
    for pointers in reversed(back):
        chain_choice.append(pointers[chain_choice[-1]])
    chain_choice.reverse()
    assignment = [0] * len(graph.ops)
    for position, op_index in enumerate(order):
        assignment[op_index] = chain_choice[position]
    return tuple(assignment), makespan


def _solve_dag_branch_and_bound(
    graph: OpGraph, lattices: Sequence[OpLattice],
    edge_tables: Sequence[Sequence[Sequence[float]]],
) -> Tuple[Tuple[int, ...], float, int]:
    """Best-first branch-and-bound over a DAG's joint layout space.

    Expands partial assignments in topological order.  The priority is the
    critical-path makespan of the graph where every unassigned op takes its
    *cheapest* candidate time and every not-fully-assigned edge its cheapest
    compatible reshard — a lower bound on any completion (makespan is
    monotone in the weights), and exact once the assignment is complete, so
    the first complete assignment popped is optimal (A*).

    Returns ``(assignment, makespan, nodes_expanded)``.
    """
    order = graph.topological_order()
    num_ops = len(graph.ops)
    pairs = [(edge.src, edge.dst) for edge in graph.edges]
    min_op = [min(rec.simulated_time for rec in lat.recommendations)
              for lat in lattices]
    min_by_src = [[min(row) for row in table] for table in edge_tables]
    min_by_dst = [[min(table[i][j] for i in range(len(table)))
                   for j in range(len(table[0]))] for table in edge_tables]
    min_any = [min(row_min for row_min in by_src) for by_src in min_by_src]

    def bound(prefix: Tuple[int, ...]) -> float:
        assigned: Dict[int, int] = {order[i]: prefix[i] for i in range(len(prefix))}
        op_times = [
            lattices[i].recommendations[assigned[i]].simulated_time
            if i in assigned else min_op[i]
            for i in range(num_ops)
        ]
        edge_times = []
        for pos, (src, dst) in enumerate(pairs):
            if src in assigned and dst in assigned:
                edge_times.append(edge_tables[pos][assigned[src]][assigned[dst]])
            elif src in assigned:
                edge_times.append(min_by_src[pos][assigned[src]])
            elif dst in assigned:
                edge_times.append(min_by_dst[pos][assigned[dst]])
            else:
                edge_times.append(min_any[pos])
        return dag_makespan(num_ops, pairs, op_times, edge_times).makespan

    heap: List[Tuple[float, Tuple[int, ...]]] = [(bound(()), ())]
    expanded = 0
    while heap:
        priority, prefix = heapq.heappop(heap)
        if len(prefix) == num_ops:
            assignment = [0] * num_ops
            for position, op_index in enumerate(order):
                assignment[op_index] = prefix[position]
            return tuple(assignment), priority, expanded
        expanded += 1
        for cand in range(len(lattices[order[len(prefix)]])):
            child = prefix + (cand,)
            heapq.heappush(heap, (bound(child), child))
    raise RuntimeError("branch-and-bound exhausted the heap without a solution")


def exhaustive_joint_plan(graph: OpGraph, lattices: Sequence[OpLattice],
                          edge_tables: Sequence[Sequence[Sequence[float]]],
                          ) -> Tuple[Tuple[int, ...], float]:
    """Brute-force reference: score every joint assignment, keep the best.

    Strict ``<`` keeps the first (lexicographically smallest) minimizer, the
    same tie-break direction as the DP and branch-and-bound solvers.  Only
    for tests and benchmarks — ``L^ops`` assignments.
    """
    ranges = [range(len(lat)) for lat in lattices]
    best_assignment: Optional[Tuple[int, ...]] = None
    best_time: Optional[float] = None
    for assignment in itertools.product(*ranges):
        makespan = assignment_timing(graph, lattices, edge_tables, assignment).makespan
        if best_time is None or makespan < best_time:
            best_time, best_assignment = makespan, assignment
    if best_assignment is None or best_time is None:
        raise ValueError("graph has an empty layout lattice")
    return best_assignment, best_time


@dataclass(frozen=True)
class GraphPlan:
    """The joint planner's answer for one op graph."""

    #: The planned graph (the bucketed representative under a service).
    graph: OpGraph
    #: Chosen candidate index per op (into each op's lattice).
    assignment: Tuple[int, ...]
    #: The chosen recommendation per op, aligned with ``graph.ops``.
    recommendations: Tuple[PartitioningRecommendation, ...]
    #: End-to-end modelled makespan of the joint assignment.
    makespan: float
    #: Per-op simulated times under the joint assignment.
    op_times: Tuple[float, ...]
    #: Per-edge reshard times under the joint assignment (``graph.edges`` order).
    edge_times: Tuple[float, ...]
    #: The per-op greedy baseline (every op's isolated winner) and its makespan.
    greedy_assignment: Tuple[int, ...]
    greedy_makespan: float
    #: Which solver produced the assignment (chain DP or branch-and-bound).
    method: str

    @property
    def improvement(self) -> float:
        """Seconds the joint plan saves over the per-op greedy baseline."""
        return self.greedy_makespan - self.makespan


@dataclass
class GraphPlanEntry(PlanEntry):
    """A cached joint graph plan (persists with ``kind="graph"``).

    Duck-types :class:`PlanEntry` — ``recommendations`` holds the chosen
    per-op layouts in op order, so the cache's size accounting, best-entry
    access, and store round-trip all work unchanged.
    """

    graph: Optional[OpGraph] = None
    assignment: Tuple[int, ...] = ()
    makespan: float = 0.0
    greedy_makespan: float = 0.0
    method: str = ""

    @classmethod
    def from_plan(cls, plan: GraphPlan, *, num_simulated: int = 0,
                  num_pruned: int = 0,
                  fingerprint: Optional[str] = None) -> "GraphPlanEntry":
        """Build a cacheable entry from a solved :class:`GraphPlan`."""
        return cls(
            recommendations=list(plan.recommendations),
            workload=None,
            num_simulated=num_simulated,
            num_pruned=num_pruned,
            fingerprint=fingerprint,
            graph=plan.graph,
            assignment=plan.assignment,
            makespan=plan.makespan,
            greedy_makespan=plan.greedy_makespan,
            method=plan.method,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON form; the ``kind`` key routes decoding back to this class."""
        payload = super().to_dict()
        payload["kind"] = GRAPH_ENTRY_KIND
        payload["graph"] = self.graph.to_dict() if self.graph is not None else None
        payload["assignment"] = list(self.assignment)
        payload["makespan"] = self.makespan
        payload["greedy_makespan"] = self.greedy_makespan
        payload["method"] = self.method
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphPlanEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        base = PlanEntry.from_dict(payload)
        graph = payload.get("graph")
        return cls(
            recommendations=base.recommendations,
            workload=base.workload,
            num_simulated=base.num_simulated,
            num_pruned=base.num_pruned,
            fingerprint=base.fingerprint,
            machine_profile=base.machine_profile,
            graph=OpGraph.from_dict(graph) if graph else None,  # type: ignore[arg-type]
            assignment=tuple(int(x) for x in payload.get("assignment", ())),  # type: ignore[union-attr]
            makespan=float(payload.get("makespan", 0.0)),  # type: ignore[arg-type]
            greedy_makespan=float(payload.get("greedy_makespan", 0.0)),  # type: ignore[arg-type]
            method=str(payload.get("method", "")),
        )


register_entry_decoder(GRAPH_ENTRY_KIND, GraphPlanEntry.from_dict)


def plan_graph_layouts(
    machine: MachineSpec,
    graph: OpGraph,
    *,
    lattice_size: int = DEFAULT_LATTICE_SIZE,
    memory_budget_bytes: Optional[float] = None,
    schemes: Optional[Sequence[PartitioningScheme]] = None,
    replication_factors: Optional[Sequence[int]] = None,
    stationary_options: Sequence[str] = ("A", "B", "C"),
    itemsize: int = 4,
    config: Optional[ExecutionConfig] = None,
    prune: bool = True,
    tracer=None,
) -> Tuple[GraphPlan, SearchStats]:
    """Jointly plan layouts for every op of ``graph``; returns (plan, stats).

    Three stages, each traced as a child span when ``tracer`` is given:
    ``graph.lattice`` runs the existing pruned per-op search (``top_k =
    lattice_size``) for every op, ``graph.edges`` prices every candidate
    layout transition along every edge, and ``graph.solve`` runs the chain DP
    (exact for chains) or branch-and-bound (exact for DAGs) plus the greedy
    baseline.  The returned :class:`SearchStats` accumulates the per-op
    search counters.

    Raises :class:`ValueError` if any op has no feasible layout under the
    memory budget (an empty lattice cannot be planned around).
    """
    if lattice_size < 1:
        raise ValueError(f"lattice_size must be >= 1, got {lattice_size}")
    tracer = tracer if tracer is not None else NULL_TRACER
    stats = SearchStats()
    lattices: List[OpLattice] = []
    with tracer.span("graph.lattice", ops=len(graph.ops),
                     lattice_size=lattice_size):
        for op in graph.ops:
            workload = op_workload(op)
            recommendations, op_stats = search_partitionings(
                machine,
                workload,
                memory_budget_bytes=memory_budget_bytes,
                schemes=schemes,
                replication_factors=replication_factors,
                stationary_options=stationary_options,
                top_k=lattice_size,
                itemsize=itemsize,
                config=config,
                prune=prune,
                tracer=tracer,
            )
            if not recommendations:
                raise ValueError(
                    f"no feasible layout for op {op.name!r} under the memory budget"
                )
            stats.merge(op_stats)
            lattices.append(OpLattice(workload, tuple(recommendations)))
    with tracer.span("graph.edges", edges=len(graph.edges)):
        edge_tables = build_edge_tables(machine, graph, lattices)
    with tracer.span("graph.solve") as span:
        if graph.is_chain:
            assignment, _ = _solve_chain_dp(graph, lattices, edge_tables)
            method = METHOD_CHAIN_DP
        else:
            assignment, _, _ = _solve_dag_branch_and_bound(graph, lattices,
                                                           edge_tables)
            method = METHOD_BRANCH_AND_BOUND
        timing = assignment_timing(graph, lattices, edge_tables, assignment)
        greedy = tuple(0 for _ in graph.ops)
        greedy_timing = assignment_timing(graph, lattices, edge_tables, greedy)
        span.set(method=method, makespan=timing.makespan,
                 greedy_makespan=greedy_timing.makespan)
    plan = GraphPlan(
        graph=graph,
        assignment=assignment,
        recommendations=tuple(
            lattices[i].recommendations[assignment[i]]
            for i in range(len(graph.ops))
        ),
        makespan=timing.makespan,
        op_times=tuple(
            lattices[i].recommendations[assignment[i]].simulated_time
            for i in range(len(graph.ops))
        ),
        edge_times=tuple(
            edge_tables[pos][assignment[edge.src]][assignment[edge.dst]]
            for pos, edge in enumerate(graph.edges)
        ),
        greedy_assignment=greedy,
        greedy_makespan=greedy_timing.makespan,
        method=method,
    )
    return plan, stats
