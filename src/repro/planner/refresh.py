"""Background refresh engine: keep the plan cache warm off the request path.

A warm plan-cache hit is microseconds; a cold plan is tens of milliseconds —
a ~7000x p99 spike whenever one lands on the request path.  This module owns
every reason a cold plan used to run synchronously and moves it to a small
background pool:

* **stale-triggered refresh** — when the service serves an
  expired-but-in-grace entry (stale-while-revalidate,
  :meth:`~repro.planner.cache.PlanCache.get_for_serving`), the observation
  hook enqueues the signature at the highest priority, so the *next* request
  gets a fresh plan;
* **pre-TTL refresh** — resident entries whose remaining lifetime fell under
  the refresh margin are recomputed *before* expiry, so steady traffic never
  even sees the grace window;
* **rollup-driven refresh** — :meth:`PlannerService.refresh_candidates`
  names hot-by-telemetry signatures that are aging or missing;
* **predictive prewarming** — a first-order :class:`TransitionTable` over
  the observed signature sequence enqueues likely-next signatures at the
  lowest priority, so even first-seen-by-this-worker buckets are often warm;
* **drift-triggered re-planning** — a :class:`DriftTracker` watches the live
  structure statistics (MoE routed-token totals, block-sparse live-block
  counts) behind each structured signature family; when the smoothed live
  level crosses into a different bucket than the one traffic is being served
  from, the old entry is invalidated and the drifted bucket is planned
  off-path before traffic arrives there.

All refresh work funnels through :meth:`PlannerService.refresh`, which
shares the foreground single-flight table: a request arriving mid-refresh
coalesces onto it, and a refresh finding a foreground leader in flight
skips.  The search is deterministic per signature, so the refresher can
never change *what* is recommended — only *when* it is computed.

The engine is **off by default** and costs nothing when off: the service's
observation hook is ``None`` (one attribute check per request), and no
thread exists.  When on, everything is observable through the service's
metrics registry (task counters by kind, a queue-depth gauge, a
refresh-latency histogram) and :meth:`BackgroundRefresher.stats`.

Thread and fork semantics: ``start()`` spawns one scheduler plus a bounded
worker pool, all daemon threads; ``stop()``/``close()`` are idempotent and
join them.  Threads do not survive ``fork()`` — a refresher inherited by a
forked child reports itself stopped (the recorded pid differs) and can
simply be ``start()``-ed again, which is how per-worker refreshers in a
pre-forked :class:`~repro.serve.server.PlanServer` fleet come up.  For
deterministic tests and benchmarks, :meth:`BackgroundRefresher.run_once`
drives one full schedule-and-drain cycle synchronously with no threads at
all.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.workloads import Workload
from repro.core.structure import BlockSparse, MoERagged, even_spread_mask
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.obs.reqlog import iter_records
from repro.planner.signature import ProblemSignature
from repro.util.logging import get_logger, log_event

_LOG = get_logger("planner.refresh")

#: Task kinds in priority order (lower number = more urgent).  A stale serve
#: means a request already saw an expired plan, so it outranks everything;
#: prewarming is speculative, so it yields to all confirmed work.
KIND_STALE = "stale"
KIND_DRIFT = "drift"
KIND_TTL = "ttl"
KIND_ROLLUP = "rollup"
KIND_PREWARM = "prewarm"

_PRIORITY = {KIND_STALE: 0, KIND_DRIFT: 1, KIND_TTL: 2,
             KIND_ROLLUP: 3, KIND_PREWARM: 4}

#: Kinds that are speculative: skipped at execution time if the key became
#: resident (fresh) in the meantime — recomputing would be pure waste.
_SPECULATIVE = frozenset({KIND_ROLLUP, KIND_PREWARM})


@dataclass
class RefreshStats:
    """Counter snapshot returned by :meth:`BackgroundRefresher.stats`."""

    #: Tasks enqueued, by kind (stale / drift / ttl / rollup / prewarm).
    scheduled: Dict[str, int] = field(default_factory=dict)
    #: Tasks that ran a search and installed a fresh entry.
    completed: int = 0
    #: Tasks whose search raised (logged; the refresher keeps running).
    failed: int = 0
    #: Tasks skipped because an identical computation was already in flight
    #: (foreground single-flight parity).
    skipped_inflight: int = 0
    #: Speculative tasks skipped because the key was already fresh by the
    #: time they were dequeued.
    skipped_fresh: int = 0
    #: Tasks dropped by queue-bound pressure (lowest priority goes first).
    dropped: int = 0
    #: Entries invalidated because their structure bucket drifted away.
    drift_invalidations: int = 0
    #: Requests seen through the observation hook.
    observed_requests: int = 0
    #: Pending tasks at snapshot time.
    queue_depth: int = 0

    @property
    def total_scheduled(self) -> int:
        """Tasks enqueued across all kinds."""
        return sum(self.scheduled.values())


class TransitionTable:
    """First-order Markov counts over the observed signature-key sequence.

    ``observe(prev, nxt)`` increments the ``prev -> nxt`` edge;
    ``predict(key)`` returns the most frequent successors, deterministically
    ordered (count descending, key ascending).  Both sides are bounded:
    at most ``max_keys`` source keys are retained (least recently updated
    evicted first) and at most ``max_successors`` edges per source (lowest
    count evicted, so the hot successors survive).
    """

    def __init__(self, max_keys: int = 256, max_successors: int = 8) -> None:
        if max_keys < 1 or max_successors < 1:
            raise ValueError("transition-table bounds must be >= 1")
        self.max_keys = max_keys
        self.max_successors = max_successors
        self._edges: "OrderedDict[str, Dict[str, int]]" = OrderedDict()

    def observe(self, prev: str, nxt: str) -> None:
        """Record one observed transition ``prev -> nxt``."""
        successors = self._edges.get(prev)
        if successors is None:
            successors = self._edges[prev] = {}
        else:
            self._edges.move_to_end(prev)
        successors[nxt] = successors.get(nxt, 0) + 1
        if len(successors) > self.max_successors:
            victim = min(successors.items(), key=lambda item: (item[1], item[0]))
            del successors[victim[0]]
        while len(self._edges) > self.max_keys:
            self._edges.popitem(last=False)

    def predict(self, key: str, top_n: int = 2) -> List[str]:
        """The up-to-``top_n`` most likely successors of ``key`` (may be empty)."""
        successors = self._edges.get(key)
        if not successors:
            return []
        ranked = sorted(successors.items(), key=lambda item: (-item[1], item[0]))
        return [nxt for nxt, _count in ranked[:top_n] if nxt != key][:top_n]

    @property
    def num_edges(self) -> int:
        """Distinct transitions currently retained."""
        return sum(len(successors) for successors in self._edges.values())


class _FamilyState:
    """Drift-tracker state for one structured signature family.

    A *family* is the signature key minus its structure token — everything
    that stays fixed while the live geometry moves (envelope bucket, dtype,
    machine, budget, options).
    """

    __slots__ = ("ewma", "workload", "planned_key", "top_k", "projected_key")

    def __init__(self, level: float, workload: Workload, planned_key: str,
                 top_k: int) -> None:
        self.ewma = level
        self.workload = workload
        #: The bucket the family's smoothed level currently lives in — what
        #: its traffic is "planned under".  Updated when a crossing fires.
        self.planned_key = planned_key
        self.top_k = top_k
        #: The lookahead bucket we last pre-planned, so approaching an edge
        #: enqueues the neighbor once, not every tick.
        self.projected_key: Optional[str] = None


def _family_key(signature_key: str, structured: bool) -> Optional[str]:
    """The drift family of a signature key (``None`` for dense keys).

    Structured keys append the structure token as a sixth ``|``-separated
    part; stripping it leaves the stable family identity raw requests keep
    while their live counts move between buckets.
    """
    if not structured:
        return None
    return signature_key.rsplit("|", 1)[0]


def _live_level(workload: Workload) -> Optional[float]:
    """The drift metric of a raw structured workload (``None`` when dense).

    MoE-ragged batches drift in their routed-token total; block-sparse
    weights drift in their live-block count.  Skew *within* a bucket (which
    expert is hot, which blocks are live) is canonicalized away by bucketing
    and therefore cannot change a signature — only the level can.
    """
    structure = workload.structure
    if isinstance(structure, MoERagged):
        return float(structure.total_tokens)
    if isinstance(structure, BlockSparse):
        return float(structure.live_blocks)
    return None


def _drifted_workload(workload: Workload, level: float) -> Optional[Workload]:
    """A copy of ``workload`` whose live level is moved to ``level``.

    The synthetic workload exists only to be passed through
    :meth:`PlannerService.signature_for` — bucketing then decides whether
    the smoothed level lands in a different bucket than live traffic.
    Counts are clamped to the structure's feasible range and spread evenly
    (the same canonical spread bucketing itself uses).
    """
    structure = workload.structure
    if isinstance(structure, MoERagged):
        experts = structure.num_experts
        total = int(round(level))
        total = max(1, min(experts * structure.capacity, total))
        base, extra = divmod(total, experts)
        tokens = tuple(base + 1 if index < extra else base
                       for index in range(experts))
        drifted = MoERagged(expert_tokens=tokens, capacity=structure.capacity)
    elif isinstance(structure, BlockSparse):
        grid = structure.k_blocks * structure.n_blocks
        live = max(1, min(grid, int(round(level))))
        drifted = BlockSparse(block_k=structure.block_k,
                              block_n=structure.block_n,
                              mask=even_spread_mask(structure.k_blocks,
                                                    structure.n_blocks, live))
    else:
        return None
    return Workload(name=workload.name, m=workload.m, n=workload.n,
                    k=workload.k, structure=drifted)


class DriftTracker:
    """EWMA watcher that notices a family's live level leaving its bucket.

    Every observed structured request folds its raw live level (routed
    tokens / live blocks) into a per-family exponentially weighted moving
    average.  :meth:`tick` re-buckets the smoothed level two ways:

    * **crossing** — the smoothed level now maps to a different signature
      than the bucket the family was planned under: traffic's center of
      mass has left that bucket, so the old entry is reported for
      invalidation and the new bucket for off-path re-planning.  Each
      crossing fires once (the planned bucket then follows the level), so a
      family hovering at an edge cannot flap the refresher.
    * **lookahead** — the level projected ``±lookahead`` (e.g. 10%) maps to
      a *neighboring* bucket: the family is approaching an edge, so the
      neighbor is pre-planned *before* the first request lands in it —
      gradual density drift then never produces a request-path cold plan.
    """

    def __init__(self, alpha: float = 0.3, lookahead: float = 0.1,
                 max_families: int = 256) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= lookahead < 1.0:
            raise ValueError(f"lookahead must be in [0, 1), got {lookahead}")
        if max_families < 1:
            raise ValueError("max_families must be >= 1")
        self.alpha = alpha
        self.lookahead = lookahead
        self.max_families = max_families
        self._families: "OrderedDict[str, _FamilyState]" = OrderedDict()

    def observe(self, key: str, workload: Workload, top_k: int) -> None:
        """Fold one raw structured request into its family's moving average."""
        level = _live_level(workload)
        if level is None:
            return
        family = _family_key(key, structured=True)
        assert family is not None
        state = self._families.get(family)
        if state is None:
            self._families[family] = _FamilyState(level, workload, key, top_k)
            while len(self._families) > self.max_families:
                self._families.popitem(last=False)
            return
        self._families.move_to_end(family)
        state.ewma += self.alpha * (level - state.ewma)
        state.workload = workload
        state.top_k = top_k

    def tick(self, signature_for) -> "_DriftReport":
        """Re-bucket every family's smoothed level; see the class docs.

        Args:
            signature_for: callable ``(workload, top_k) -> ProblemSignature``
                (the owning service's bucketing, so drift and serving can
                never disagree about bucket edges).

        Returns:
            A :class:`_DriftReport` with the fired crossings and lookahead
            pre-plans.
        """
        report = _DriftReport()
        for state in self._families.values():
            workload = _drifted_workload(state.workload, state.ewma)
            if workload is None:
                continue
            signature = signature_for(workload, state.top_k)
            key = signature.key()
            if key != state.planned_key:
                report.crossings.append((state.planned_key, signature,
                                         state.top_k))
                state.planned_key = key
                state.projected_key = None
            if self.lookahead <= 0.0:
                continue
            for direction in (1.0 + self.lookahead, 1.0 - self.lookahead):
                ahead = _drifted_workload(state.workload,
                                          state.ewma * direction)
                if ahead is None:
                    continue
                neighbor = signature_for(ahead, state.top_k)
                neighbor_key = neighbor.key()
                if neighbor_key == key or neighbor_key == state.projected_key:
                    continue
                state.projected_key = neighbor_key
                report.lookaheads.append((neighbor, state.top_k))
                break
        return report

    @property
    def num_families(self) -> int:
        """Structured families currently tracked."""
        return len(self._families)


@dataclass
class _DriftReport:
    """One :meth:`DriftTracker.tick` outcome (crossings + lookahead pre-plans)."""

    #: ``(old_key, new_signature, top_k)`` — invalidate old, plan new.
    crossings: List[Tuple[str, ProblemSignature, int]] = field(default_factory=list)
    #: ``(neighbor_signature, top_k)`` — pre-plan an approaching bucket.
    lookaheads: List[Tuple[ProblemSignature, int]] = field(default_factory=list)


class _Task:
    """One queued refresh: priority-ordered, deduplicated by signature key."""

    __slots__ = ("priority", "seq", "kind", "key", "signature", "top_k")

    def __init__(self, seq: int, kind: str, key: str,
                 signature: ProblemSignature, top_k: int) -> None:
        self.priority = _PRIORITY[kind]
        self.seq = seq
        self.kind = kind
        self.key = key
        self.signature = signature
        self.top_k = top_k

    def __lt__(self, other: "_Task") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class BackgroundRefresher:
    """Daemon refresh engine owned by one :class:`PlannerService`.

    Construction wires the observation hook
    (:meth:`PlannerService.set_observer`) but starts no threads;
    :meth:`start` spawns the scheduler and worker pool, and
    :meth:`run_once` drives everything synchronously instead when
    determinism matters more than concurrency.

    Args:
        service: the planner service whose cache this refresher keeps warm.
        interval_seconds: scheduler cadence for the periodic passes
            (pre-TTL, rollup, drift, prewarm); stale serves wake it early.
        num_threads: size of the planning worker pool (>= 1).  Searches are
            CPU-bound, so more than a couple only adds contention.
        max_queue: pending-task bound; on overflow the lowest-priority
            (then newest) pending task is dropped and counted.
        refresh_margin: fraction of the cache TTL treated as the pre-expiry
            refresh window — an entry older than ``ttl * (1 - margin)`` is
            re-planned ahead of expiry.  Ignored without a TTL.
        prewarm: enable transition-table prewarming of likely-next
            signatures.
        prewarm_top_n: successors enqueued per observed key.
        drift: enable drift-triggered re-planning of structured families.
        drift_alpha: EWMA smoothing factor for the drift metric.
        rollup_top_n: how many :meth:`PlannerService.refresh_candidates`
            entries each periodic pass considers.
        max_signatures: bound on the observed key -> signature map (least
            recently served evicted first; only observed signatures can be
            refreshed, since only they carry a plannable signature object).
    """

    def __init__(
        self,
        service,
        *,
        interval_seconds: float = 1.0,
        num_threads: int = 1,
        max_queue: int = 64,
        refresh_margin: float = 0.25,
        prewarm: bool = True,
        prewarm_top_n: int = 2,
        drift: bool = True,
        drift_alpha: float = 0.3,
        rollup_top_n: int = 8,
        max_signatures: int = 1024,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if not 0.0 < refresh_margin < 1.0:
            raise ValueError(f"refresh_margin must be in (0, 1), got {refresh_margin}")
        self.service = service
        self.interval_seconds = interval_seconds
        self.num_threads = num_threads
        self.max_queue = max_queue
        self.refresh_margin = refresh_margin
        self.prewarm_enabled = prewarm
        self.prewarm_top_n = prewarm_top_n
        self.drift_enabled = drift
        self.rollup_top_n = rollup_top_n
        self.max_signatures = max_signatures
        self.transitions = TransitionTable()
        self.drift = DriftTracker(alpha=drift_alpha) if drift else None

        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._wake = threading.Event()
        self._heap: List[_Task] = []
        self._enqueued: set = set()
        self._active: set = set()
        self._signatures: "OrderedDict[str, Tuple[ProblemSignature, int]]" = OrderedDict()
        self._last_key: Optional[str] = None
        self._seq = 0
        self._stats = RefreshStats(scheduled={kind: 0 for kind in _PRIORITY})
        self._threads: List[threading.Thread] = []
        self._stopping = False
        self._pid: Optional[int] = None

        registry = service.metrics_registry
        self._m_tasks = {
            kind: registry.counter(
                "repro_refresh_tasks_total",
                "Background refresh tasks scheduled, by kind.", kind=kind)
            for kind in _PRIORITY
        }
        self._m_completed = registry.counter(
            "repro_refresh_completed_total",
            "Background refreshes that installed a fresh plan.")
        self._m_skipped = registry.counter(
            "repro_refresh_skipped_total",
            "Refresh tasks skipped (already in flight or already fresh).")
        self._m_depth = registry.gauge(
            "repro_refresh_queue_depth", "Pending background refresh tasks.")
        self._m_latency = registry.histogram(
            "repro_refresh_latency_seconds",
            "Background refresh (search) latency in seconds.",
            buckets=DEFAULT_LATENCY_BUCKETS)
        service.set_observer(self)

    # ------------------------------------------------------------------ #
    # observation feed (called from the service's request path)
    # ------------------------------------------------------------------ #
    def observe_request(self, signature: ProblemSignature, top_k: int,
                        workload: Workload, *, stale: bool) -> None:
        """Fold one served request into the refresher's models.

        Cheap by design (dict/heap updates under one lock): remembers the
        signature so it can be re-planned later, feeds the transition table
        and drift tracker, and — when the request was served stale — enqueues
        an immediate refresh and wakes the scheduler.
        """
        key = signature.key()
        with self._lock:
            self._stats.observed_requests += 1
            self._signatures[key] = (signature, top_k)
            self._signatures.move_to_end(key)
            while len(self._signatures) > self.max_signatures:
                self._signatures.popitem(last=False)
            if self.prewarm_enabled and self._last_key is not None:
                self.transitions.observe(self._last_key, key)
            self._last_key = key
            if self.drift is not None and not workload.structure.is_dense:
                self.drift.observe(key, workload, top_k)
            if stale:
                self._enqueue_locked(KIND_STALE, key, signature, top_k)
        if stale:
            self._wake.set()

    def feed_request_log(self, target) -> int:
        """Seed the transition table from a recorded request log.

        Only transition *counts* can be learned from a log (records carry
        signature keys, not plannable signature objects), so predictions
        become actionable once live traffic has shown the keys to this
        process.  Returns how many records were consumed.
        """
        count = 0
        prev: Optional[str] = None
        with self._lock:
            for record in iter_records(target):
                if prev is not None:
                    self.transitions.observe(prev, record.signature)
                prev = record.signature
                count += 1
        return count

    # ------------------------------------------------------------------ #
    # queue
    # ------------------------------------------------------------------ #
    def _enqueue_locked(self, kind: str, key: str,
                        signature: ProblemSignature, top_k: int) -> bool:
        """Enqueue one task (caller holds the lock); False when deduplicated."""
        if key in self._enqueued or key in self._active:
            return False
        self._seq += 1
        heapq.heappush(self._heap,
                       _Task(self._seq, kind, key, signature, top_k))
        self._enqueued.add(key)
        self._stats.scheduled[kind] += 1
        self._m_tasks[kind].inc()
        if len(self._heap) > self.max_queue:
            victim = max(self._heap, key=lambda task: (task.priority, task.seq))
            self._heap.remove(victim)
            heapq.heapify(self._heap)
            self._enqueued.discard(victim.key)
            self._stats.dropped += 1
            if victim.key == key:
                self._m_depth.set(float(len(self._heap)))
                return False
        self._m_depth.set(float(len(self._heap)))
        self._work_ready.notify()
        return True

    def _pop_task_locked(self) -> Optional[_Task]:
        """Take the most urgent pending task (caller holds the lock)."""
        if not self._heap:
            return None
        task = heapq.heappop(self._heap)
        self._enqueued.discard(task.key)
        self._active.add(task.key)
        self._m_depth.set(float(len(self._heap)))
        return task

    def _execute(self, task: _Task) -> None:
        """Run one refresh task (no locks held; exceptions are absorbed)."""
        try:
            if task.kind in _SPECULATIVE and task.key in self.service.cache:
                with self._lock:
                    self._stats.skipped_fresh += 1
                self._m_skipped.inc()
                return
            started = time.perf_counter()
            computed = self.service.refresh(task.signature, top_k=task.top_k)
            elapsed = time.perf_counter() - started
            with self._lock:
                if computed:
                    self._stats.completed += 1
                else:
                    self._stats.skipped_inflight += 1
            if computed:
                self._m_completed.inc()
                self._m_latency.observe(elapsed)
            else:
                self._m_skipped.inc()
        except Exception as error:  # noqa: BLE001 - the pool must survive
            with self._lock:
                self._stats.failed += 1
            log_event(_LOG, "refresh.task.failed", kind=task.kind,
                      key=task.key, error=f"{type(error).__name__}: {error}")
        finally:
            with self._lock:
                self._active.discard(task.key)

    # ------------------------------------------------------------------ #
    # scheduling passes
    # ------------------------------------------------------------------ #
    def _schedule_pass(self) -> int:
        """Run every periodic scan once; returns how many tasks were enqueued.

        Order matters only for queue-bound pressure: drift first (it also
        invalidates), then pre-TTL, then rollup, then speculative prewarm.
        """
        scheduled = 0
        scheduled += self._schedule_drift()
        scheduled += self._schedule_ttl()
        scheduled += self._schedule_rollup()
        scheduled += self._schedule_prewarm()
        return scheduled

    def _schedule_ttl(self) -> int:
        """Enqueue observed entries inside the pre-expiry refresh window."""
        ttl = self.service.cache.ttl_seconds
        if ttl is None:
            return 0
        threshold = ttl * (1.0 - self.refresh_margin)
        scheduled = 0
        ages = self.service.cache.entry_ages()
        with self._lock:
            for key, age in ages.items():
                if age < threshold:
                    continue
                known = self._signatures.get(key)
                if known is None:
                    continue  # warm-start entry never observed here: no signature
                kind = KIND_STALE if age > ttl else KIND_TTL
                if self._enqueue_locked(kind, key, known[0], known[1]):
                    scheduled += 1
        return scheduled

    def _schedule_rollup(self) -> int:
        """Enqueue hot-by-telemetry signatures that are aging or missing."""
        ttl = self.service.cache.ttl_seconds
        min_age = ttl * (1.0 - self.refresh_margin) if ttl is not None else 0.0
        candidates = self.service.refresh_candidates(
            self.rollup_top_n, min_age_seconds=min_age)
        scheduled = 0
        with self._lock:
            for key, _requests, age in candidates:
                known = self._signatures.get(key)
                if known is None:
                    continue
                if age is None and key in self.service.cache:
                    continue  # raced: something repopulated it already
                if age is not None and ttl is None:
                    continue  # resident and unexpiring: nothing to refresh
                if self._enqueue_locked(KIND_ROLLUP, key, known[0], known[1]):
                    scheduled += 1
        return scheduled

    def _schedule_prewarm(self) -> int:
        """Enqueue predicted-next signatures that are not resident."""
        if not self.prewarm_enabled:
            return 0
        scheduled = 0
        with self._lock:
            last = self._last_key
            if last is None:
                return 0
            for key in self.transitions.predict(last, self.prewarm_top_n):
                known = self._signatures.get(key)
                if known is None or key in self.service.cache:
                    continue
                if self._enqueue_locked(KIND_PREWARM, key, known[0], known[1]):
                    scheduled += 1
        return scheduled

    def _schedule_drift(self) -> int:
        """Invalidate drifted families and pre-plan the buckets they enter."""
        if self.drift is None:
            return 0
        with self._lock:
            report = self.drift.tick(self.service.signature_for)
            scheduled = 0
            for old_key, signature, top_k in report.crossings:
                if self.service.cache.invalidate(old_key):
                    self._stats.drift_invalidations += 1
                new_key = signature.key()
                self._signatures[new_key] = (signature, top_k)
                if new_key not in self.service.cache and self._enqueue_locked(
                        KIND_DRIFT, new_key, signature, top_k):
                    scheduled += 1
                log_event(_LOG, "refresh.drift", old=old_key, new=new_key)
            for signature, top_k in report.lookaheads:
                key = signature.key()
                self._signatures[key] = (signature, top_k)
                if key in self.service.cache:
                    continue
                if self._enqueue_locked(KIND_DRIFT, key, signature, top_k):
                    scheduled += 1
        return scheduled

    # ------------------------------------------------------------------ #
    # synchronous drive (tests / benchmarks)
    # ------------------------------------------------------------------ #
    def run_once(self, *, drain: bool = True) -> int:
        """One synchronous schedule-and-drain cycle in the calling thread.

        Runs every periodic pass, then (with ``drain``) executes pending
        tasks inline until the queue is empty.  Usable whether or not the
        threads are running — with them running it simply competes for the
        same queue.  Returns how many tasks this call executed.
        """
        self._schedule_pass()
        executed = 0
        while drain:
            with self._lock:
                task = self._pop_task_locked()
            if task is None:
                break
            self._execute(task)
            executed += 1
        return executed

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        """True while this process's scheduler/worker threads are alive."""
        return bool(self._threads) and self._pid == os.getpid()

    def start(self) -> None:
        """Spawn the scheduler and worker threads (idempotent).

        A refresher inherited across ``fork()`` counts as stopped (threads
        never survive a fork); calling ``start()`` in the child spawns a
        fresh set for the child's own service.
        """
        with self._lock:
            if self.running:
                return
            self._threads = []
            self._stopping = False
            self._pid = os.getpid()
            scheduler = threading.Thread(target=self._scheduler_loop,
                                         name="plan-refresh-scheduler",
                                         daemon=True)
            self._threads.append(scheduler)
            for index in range(self.num_threads):
                worker = threading.Thread(target=self._worker_loop,
                                          name=f"plan-refresh-{index}",
                                          daemon=True)
                self._threads.append(worker)
        for thread in self._threads:
            thread.start()
        log_event(_LOG, "refresh.start", pid=os.getpid(),
                  threads=self.num_threads,
                  interval=self.interval_seconds)

    def stop(self) -> None:
        """Stop and join the threads (idempotent; safe after ``fork()``)."""
        with self._lock:
            threads, self._threads = self._threads, []
            self._stopping = True
            self._work_ready.notify_all()
        self._wake.set()
        same_process = self._pid == os.getpid()
        for thread in threads:
            if same_process and thread.is_alive():
                thread.join(timeout=10.0)
        self._pid = None
        if threads:
            log_event(_LOG, "refresh.stop", pid=os.getpid())

    def close(self) -> None:
        """Detach from the service and stop the threads."""
        self.stop()
        if getattr(self.service, "_observer", None) is self:
            self.service.set_observer(None)

    def __enter__(self) -> "BackgroundRefresher":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> RefreshStats:
        """Snapshot of the refresh counters."""
        with self._lock:
            snapshot = replace(self._stats, scheduled=dict(self._stats.scheduled))
            snapshot.queue_depth = len(self._heap)
            return snapshot

    # ------------------------------------------------------------------ #
    # threads
    # ------------------------------------------------------------------ #
    def _scheduler_loop(self) -> None:
        """Periodic pass driver: ticks every interval, earlier when woken."""
        while True:
            self._wake.wait(timeout=self.interval_seconds)
            self._wake.clear()
            with self._lock:
                if self._stopping:
                    return
            try:
                self._schedule_pass()
            except Exception as error:  # noqa: BLE001 - keep scheduling
                log_event(_LOG, "refresh.schedule.failed",
                          error=f"{type(error).__name__}: {error}")

    def _worker_loop(self) -> None:
        """Worker: drain the priority queue until told to stop."""
        while True:
            with self._lock:
                while not self._heap and not self._stopping:
                    self._work_ready.wait(timeout=self.interval_seconds)
                if self._stopping:
                    return
                task = self._pop_task_locked()
            if task is not None:
                self._execute(task)
