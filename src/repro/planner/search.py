"""Cost-bound-pruned search over the partitioning design space.

The exhaustive selector simulates every (scheme, replication, stationary)
candidate.  Simulation is the expensive part: the direct executor walks every
generated op through the per-engine clock.  This module keeps the exhaustive
enumeration but adds branch-and-bound pruning on top of
:meth:`repro.core.cost_model.CostModel.direct_lower_bound` — an *admissible*
bound (it never exceeds the simulated makespan), so:

* a candidate whose bound is already worse than the incumbent's **simulated**
  time cannot win and is skipped without simulating it;
* candidates are visited in ascending-bound order, so a strong incumbent is
  found early and prunes most of the space;
* strict inequality at the threshold guarantees the pruned search returns the
  *identical* ranked recommendations as the exhaustive search, ties included.

Pruning is only applied under the direct execution mode (the bound is proved
against the direct executor's reservation discipline); IR-mode searches fall
back to exhaustive automatically.
"""

from __future__ import annotations

import bisect
import heapq
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bench.schemes import PartitioningScheme, ua_schemes
from repro.bench.selector import PartitioningRecommendation
from repro.bench.sweep import run_ua_point, valid_replication_factors
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig, ExecutionMode
from repro.core.cost_model import CostModel
from repro.core.matmul import model_reduce_time
from repro.core.slicing import apply_iteration_offset, generate_all_ops
from repro.core.stationary import parse_stationary
from repro.core.structure import prune_structured_ops, resolve_structure
from repro.dist.matrix import DistributedMatrix
from repro.obs.tracing import NULL_TRACER
from repro.runtime.runtime import Runtime
from repro.sim.batch import BatchEvaluator
from repro.topology.machines import MachineSpec


@dataclass(frozen=True)
class Candidate:
    """One fully specified point of the design space."""

    #: Enumeration index — the exhaustive search's tie-break order.
    index: int
    scheme: PartitioningScheme
    replication: Tuple[int, int, int]
    stationary: str
    memory_per_device: int


#: The engine-occupancy bound (PR 2): per-engine summed busy time.
BOUND_OCCUPANCY = "occupancy"
#: The event-DAG bound: relaxed-engine makespan, floored by occupancy.
BOUND_CRITICAL_PATH = "critical_path"

_BOUNDS = (BOUND_OCCUPANCY, BOUND_CRITICAL_PATH)


@dataclass
class SearchStats:
    """Bookkeeping for one search run (pruning effectiveness, timings)."""

    num_candidates: int = 0
    num_memory_rejected: int = 0
    num_simulated: int = 0
    num_pruned: int = 0
    #: Candidates that survived the cheap occupancy gate and had the
    #: expensive critical-path bound computed for them.
    num_refined: int = 0
    #: Candidates pre-simulated from cross-fingerprint seeds (a subset of
    #: ``num_simulated``): another machine's winners, re-priced on *this*
    #: machine to establish the pruning threshold before the heap walk.
    num_seeded: int = 0
    pruning_enabled: bool = True
    bound_name: str = BOUND_CRITICAL_PATH
    #: Seconds compiling candidate op streams (batch evaluator only).
    opgen_seconds: float = 0.0
    #: Seconds pricing the eager occupancy bound for the frontier.
    bound_seconds: float = 0.0
    #: Seconds refining heap-top candidates with the critical-path bound.
    refine_seconds: float = 0.0
    simulate_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another run's counters into this one (service aggregation)."""
        self.num_candidates += other.num_candidates
        self.num_memory_rejected += other.num_memory_rejected
        self.num_simulated += other.num_simulated
        self.num_pruned += other.num_pruned
        self.num_refined += other.num_refined
        self.num_seeded += other.num_seeded
        self.opgen_seconds += other.opgen_seconds
        self.bound_seconds += other.bound_seconds
        self.refine_seconds += other.refine_seconds
        self.simulate_seconds += other.simulate_seconds


def memory_per_device(workload: Workload, replication: Tuple[int, int, int],
                      num_devices: int, itemsize: int = 4) -> int:
    """Worst-case bytes of A+B+C tile storage on one device.

    Structure-aware: a block-sparse B stores only its live blocks and a
    ragged A/C stores only its live token rows, so one device can never hold
    more than the matrix's total live bytes — but also never less than we
    can guarantee below its dense share (an adversarial mask can concentrate
    every live block on one device), hence the ``min`` of the two.  Dense
    workloads reduce to the historical envelope formula exactly.
    """
    (am, ak), (bk, bn), (cm, cn) = workload.shapes
    rep_a, rep_b, rep_c = replication
    structure = resolve_structure(workload.structure)
    per_device = 0
    for role, (rows, cols), factor in (("A", (am, ak), rep_a), ("B", (bk, bn), rep_b),
                                       ("C", (cm, cn), rep_c)):
        procs_per_replica = max(1, num_devices // factor)
        share = -(-rows * cols // procs_per_replica) * itemsize
        if structure is not None:
            share = min(share, structure.storage_bytes(role, rows, cols, itemsize))
        per_device += share
    return per_device


def enumerate_candidates(
    machine: MachineSpec,
    workload: Workload,
    memory_budget_bytes: float,
    schemes: Sequence[PartitioningScheme],
    factors: Sequence[int],
    stationary_options: Sequence[str],
    itemsize: int = 4,
) -> Tuple[List[Candidate], int]:
    """Enumerate the design space in the exhaustive selector's order.

    Returns the memory-feasible candidates plus the count of configurations
    rejected by the per-device budget.
    """
    candidates: List[Candidate] = []
    rejected = 0
    index = 0
    for scheme in schemes:
        for factor in factors:
            for c_factor in factors:
                replication = (factor, factor, c_factor)
                footprint = memory_per_device(workload, replication,
                                              machine.num_devices, itemsize)
                if footprint > memory_budget_bytes:
                    rejected += len(stationary_options)
                    continue
                for stationary in stationary_options:
                    candidates.append(
                        Candidate(index=index, scheme=scheme, replication=replication,
                                  stationary=stationary, memory_per_device=footprint)
                    )
                    index += 1
    return candidates, rejected


def _symbolic_matrices(
    machine: MachineSpec,
    workload: Workload,
    candidate: Candidate,
) -> Tuple[DistributedMatrix, DistributedMatrix, DistributedMatrix]:
    """Build unmaterialized operands for op generation (no data is allocated)."""
    runtime = Runtime(machine=machine)
    rep_a, rep_b, rep_c = candidate.replication
    p = machine.num_devices
    part_a, part_b, part_c = candidate.scheme.partitions(
        workload, p // rep_a, p // rep_b, p // rep_c
    )
    a_shape, b_shape, c_shape = workload.shapes
    a = DistributedMatrix.create(runtime, a_shape, part_a, replication=rep_a,
                                 name="A", materialize=False)
    b = DistributedMatrix.create(runtime, b_shape, part_b, replication=rep_b,
                                 name="B", materialize=False)
    c = DistributedMatrix.create(runtime, c_shape, part_c, replication=rep_c,
                                 name="C", materialize=False)
    return a, b, c


def candidate_lower_bound(
    machine: MachineSpec,
    workload: Workload,
    candidate: Candidate,
    config: Optional[ExecutionConfig] = None,
    bound: str = BOUND_CRITICAL_PATH,
) -> float:
    """Admissible lower bound on the candidate's simulated time (no full simulation).

    Generates the candidate's op lists and prices them with the requested
    bound: :data:`BOUND_OCCUPANCY` sums per-engine occupancy
    (:meth:`CostModel.direct_lower_bound`), while :data:`BOUND_CRITICAL_PATH`
    replays the event stream on the relaxed contention-free engine
    (:meth:`CostModel.critical_path_lower_bound`) — tighter on
    communication-bound problems because it sees fetch-before-GEMM chains.
    The replica-reduction term the simulator adds on top is modelled exactly,
    so the total stays a true lower bound of
    :func:`repro.bench.sweep.run_ua_point`'s simulated time.
    """
    if bound not in _BOUNDS:
        raise ValueError(f"unknown bound {bound!r}; available: {_BOUNDS}")
    config = config or ExecutionConfig(simulate_only=True)
    a, b, c = _symbolic_matrices(machine, workload, candidate)
    per_rank_ops = generate_all_ops(a, b, c, parse_stationary(candidate.stationary))
    structure = resolve_structure(workload.structure)
    if structure is not None:
        # Drop fully masked ops exactly as the simulation does, so the bound
        # prices the op stream the executor will actually run (counting a
        # skipped op's fetch would break admissibility).
        per_rank_ops = prune_structured_ops(per_rank_ops, structure)
    cost_model = CostModel(machine)
    if bound == BOUND_CRITICAL_PATH:
        # The relaxed replay is order-sensitive: hand it the exact execution
        # order, offset applied, as universal_matmul would run it.
        if config.iteration_offset:
            per_rank_ops = {
                rank: apply_iteration_offset(ops) for rank, ops in per_rank_ops.items()
            }
        value = cost_model.critical_path_lower_bound(a, b, c, per_rank_ops, config,
                                                     structure=structure)
    else:
        value = cost_model.direct_lower_bound(
            a, b, c, per_rank_ops, cache_remote_tiles=config.cache_remote_tiles,
            structure=structure,
        )
    return value + model_reduce_time(c, cost_model, structure=structure)


def search_partitionings(
    machine: MachineSpec,
    workload: Workload,
    *,
    memory_budget_bytes: Optional[float] = None,
    schemes: Optional[Sequence[PartitioningScheme]] = None,
    replication_factors: Optional[Sequence[int]] = None,
    stationary_options: Sequence[str] = ("A", "B", "C"),
    top_k: int = 1,
    itemsize: int = 4,
    config: Optional[ExecutionConfig] = None,
    prune: bool = True,
    bound: str = BOUND_CRITICAL_PATH,
    use_batch: bool = True,
    tracer=None,
    seed_candidates: Optional[Sequence[Tuple[str, Tuple[int, int, int], str]]] = None,
) -> Tuple[List[PartitioningRecommendation], SearchStats]:
    """Search the design space; returns (ranked recommendations, search stats).

    With ``prune=False`` this is exactly the exhaustive selector.  With
    ``prune=True`` (and direct execution mode) the result is guaranteed
    identical while strictly fewer candidates are simulated whenever any
    candidate's lower bound exceeds the eventual top-k threshold.  ``bound``
    selects the pruning bound; both options are admissible, so the ranking is
    identical under either — :data:`BOUND_CRITICAL_PATH` (the default) is
    tighter on communication-bound problems and prunes more.

    The bounds are staged by cost (lazy best-first refinement): the cheap
    occupancy bound is computed eagerly for every candidate, and candidates
    are visited through a min-heap keyed by their best-known bound.  When an
    *unrefined* candidate reaches the top under the critical-path setting,
    its expensive chain bound — a relaxed replay of the whole event stream,
    nearly as expensive as simulating — is computed and the candidate is
    pushed back; only candidates that surface again are simulated.  The visit
    order therefore converges to the tight-bound order (strong incumbents
    found early) while candidates prunable by the cheap bound never pay for
    the expensive one.

    ``use_batch`` (the default) routes all candidate evaluation through one
    :class:`repro.sim.batch.BatchEvaluator`: each candidate's op stream is
    compiled once and shared by the bound and the simulator, the eager
    occupancy pass prices the whole frontier as a single vectorized
    segment-sum, and critical-path refinements reuse cached relaxed-replay
    traces.  Every number the evaluator produces is bit-equal to the scalar
    path, so the recommendations (ties included) are identical either way —
    ``use_batch=False`` keeps the scalar path for verification.  The batch
    evaluator requires direct-mode ``simulate_only`` configs and is bypassed
    automatically otherwise.

    ``tracer`` (a :class:`repro.obs.tracing.Tracer`) opens child spans for the
    search phases — the eager frontier pricing plus every refinement and
    simulation — so a traced request shows where its planning time went.
    ``None`` (the default) uses the disabled tracer, which records nothing.

    ``seed_candidates`` warm-starts the branch and bound: each
    ``(scheme_name, replication, stationary)`` spec naming a member of the
    enumerated space is simulated *up front* (on this machine's cost model),
    installing an incumbent top-k threshold before the first heap pop.  A
    good seed — e.g. another machine's winner for the same problem shape,
    via :func:`repro.planner.cache.load_portable_seeds` — prunes most of the
    frontier without a single refinement.  The result is provably unchanged:
    seeds are candidates the search may only visit *earlier*, the admissible
    bounds and the strict-inequality prune rule still force every potential
    top-k member (ties included) through simulation, and the final
    deterministic sort is order-independent.  Specs naming candidates
    outside the space (unknown scheme, infeasible replication) are ignored;
    with pruning off, seeds are ignored entirely (everything is simulated
    anyway).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if memory_budget_bytes is None:
        memory_budget_bytes = machine.memory_capacity
    schemes = list(schemes) if schemes is not None else ua_schemes()
    factors = valid_replication_factors(machine.num_devices, replication_factors)
    config = config or ExecutionConfig(simulate_only=True)
    effective_k = max(1, top_k)

    candidates, rejected = enumerate_candidates(
        machine, workload, memory_budget_bytes, schemes, factors,
        stationary_options, itemsize,
    )
    if bound not in _BOUNDS:
        raise ValueError(f"unknown bound {bound!r}; available: {_BOUNDS}")
    prune = prune and config.mode is ExecutionMode.DIRECT
    stats = SearchStats(num_candidates=len(candidates), num_memory_rejected=rejected,
                        pruning_enabled=prune, bound_name=bound)
    if not candidates:
        raise ValueError(
            "no partitioning fits the per-device memory budget "
            f"({memory_budget_bytes / 1e9:.2f} GB)"
        )

    # The batch evaluator shares symbolic (data-free) matrices across
    # candidates, so it is only sound when nothing materializes data.
    evaluator: Optional[BatchEvaluator] = None
    if use_batch and config.mode is ExecutionMode.DIRECT and config.simulate_only:
        evaluator = BatchEvaluator(machine, workload, config)

    by_index = {candidate.index: candidate for candidate in candidates}
    if prune:
        started = time.perf_counter()
        # Cheap bound for everyone; `False` marks the bound as not yet
        # refined to the tight (expensive) one.  Heap order is (bound, index),
        # so ties fall back to enumeration order, deterministically.
        needs_refinement = bound == BOUND_CRITICAL_PATH
        with tracer.span("search.bound", candidates=len(candidates)):
            if evaluator is not None:
                eager = evaluator.frontier_occupancy_bounds(candidates)
                heap = [
                    (eager[i], candidate.index, not needs_refinement)
                    for i, candidate in enumerate(candidates)
                ]
            else:
                heap = [
                    (candidate_lower_bound(machine, workload, candidate,
                                           config, BOUND_OCCUPANCY),
                     candidate.index, not needs_refinement)
                    for candidate in candidates
                ]
            heapq.heapify(heap)
        elapsed = time.perf_counter() - started
        opgen_eager = evaluator.opgen_seconds if evaluator is not None else 0.0
        stats.opgen_seconds = opgen_eager
        stats.bound_seconds = elapsed - opgen_eager
    else:
        heap = [(0.0, candidate.index, True) for candidate in candidates]

    results: List[Tuple[int, PartitioningRecommendation]] = []
    best_times: List[float] = []  # k smallest simulated times seen so far
    threshold = float("inf")
    refine_seconds = 0.0
    opgen_loop_start = evaluator.opgen_seconds if evaluator is not None else 0.0
    started = time.perf_counter()

    def simulate(candidate: Candidate) -> None:
        """Simulate one candidate and fold it into the incumbent top-k."""
        nonlocal threshold
        with tracer.span("search.simulate", candidate=candidate.index):
            if evaluator is not None:
                point = evaluator.simulate(candidate)
            else:
                point = run_ua_point(machine, workload, candidate.scheme,
                                     candidate.replication, candidate.stationary,
                                     config)
        stats.num_simulated += 1
        results.append(
            (
                candidate.index,
                PartitioningRecommendation(
                    scheme=candidate.scheme,
                    replication=candidate.replication,
                    stationary=candidate.stationary,
                    percent_of_peak=point.percent_of_peak,
                    simulated_time=point.simulated_time,
                    memory_per_device=candidate.memory_per_device,
                ),
            )
        )
        bisect.insort(best_times, point.simulated_time)
        del best_times[effective_k:]
        if len(best_times) == effective_k:
            threshold = best_times[-1]

    # Cross-fingerprint warm start: simulate the seeded candidates first so
    # the threshold is tight before the heap walk begins.  Their heap
    # entries remain behind as bookkeeping and are skipped when popped.
    seeded_pending: set = set()
    if prune and seed_candidates:
        spec_index = {(c.scheme.name, c.replication, c.stationary): c
                      for c in candidates}
        for name, replication, stationary in seed_candidates:
            candidate = spec_index.get(
                (str(name), tuple(int(x) for x in replication), str(stationary)))
            if candidate is None or candidate.index in seeded_pending:
                continue
            seeded_pending.add(candidate.index)
            simulate(candidate)
            stats.num_seeded += 1

    while heap:
        value, index, refined = heapq.heappop(heap)
        if index in seeded_pending:
            # Simulated during seeding: the surviving heap entry is neither
            # work to do nor a pruned candidate.
            seeded_pending.discard(index)
            continue
        # Strict inequality keeps ties simulated, which is what makes the
        # pruned ranking provably identical to the exhaustive one.  Every
        # entry still in the heap carries an admissible bound >= this one,
        # so once the smallest exceeds the threshold the rest follow.
        if prune and value > threshold:
            stats.num_pruned += 1 + len(heap) - len(seeded_pending)
            break
        candidate = by_index[index]
        if prune and not refined:
            refine_started = time.perf_counter()
            with tracer.span("search.refine", candidate=index):
                if evaluator is not None:
                    tight = evaluator.critical_bound(candidate)
                else:
                    tight = candidate_lower_bound(machine, workload, candidate,
                                                  config, BOUND_CRITICAL_PATH)
            stats.num_refined += 1
            refine_seconds += time.perf_counter() - refine_started
            heapq.heappush(heap, (tight, index, True))
            continue
        simulate(candidate)
    # Refinements run inside the loop but are bound work, not simulation
    # work; likewise compile time incurred during the loop (exhaustive runs
    # compile lazily inside simulate) is op-gen work.
    loop_elapsed = time.perf_counter() - started
    loop_opgen = 0.0
    if evaluator is not None:
        loop_opgen = evaluator.opgen_seconds - opgen_loop_start
        stats.opgen_seconds += loop_opgen
    stats.refine_seconds = refine_seconds
    stats.simulate_seconds = loop_elapsed - refine_seconds - loop_opgen

    # Exhaustive order: percent-of-peak descending, enumeration order on ties.
    results.sort(key=lambda pair: (-pair[1].percent_of_peak, pair[0]))
    return [rec for _, rec in results[:effective_k]], stats
