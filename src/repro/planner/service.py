"""PlannerService: the serving brain in front of the design-space search.

``plan()`` answers "how should I partition this problem on this machine?"
with the same ranked recommendations the exhaustive selector would produce,
but production-shaped:

* **memoized** — answers come from the LRU plan cache keyed by canonical
  problem signatures (machine fingerprint + bucketed shape + budget +
  search-options digest), so near-identical requests cost one dict lookup;
* **pruned** — cache misses run the branch-and-bound search, simulating only
  candidates whose cost-model lower bound can still win;
* **single-flight** — concurrent identical requests are coalesced: one
  thread computes, the rest wait on the same in-flight result instead of
  duplicating the search;
* **warm-startable** — a JSON plan store persists the cache across
  processes (load at boot, save on demand or automatically per new plan);
* **observable** — serving counters (requests, hits, coalesced waits,
  simulations, pruning) are aggregated across the service's lifetime, and a
  service constructed with a metrics registry / tracer / request log
  (:mod:`repro.obs`) publishes per-request telemetry: outcome counters and
  latency histograms, one span tree per request, one log line per request;
* **adaptive** — :meth:`~PlannerService.apply_rollup` feeds compacted
  telemetry back into serving (traffic-weighted cache eviction), and
  :meth:`~PlannerService.refresh_candidates` names the hot signatures a
  background refresher should re-plan first.

``plan_many()`` fans a batch of requests over a thread pool, which both
exercises and benefits from single-flight dedup when the batch repeats
signatures.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.schemes import PartitioningScheme
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, NULL_REGISTRY
from repro.obs.reqlog import RequestRecord
from repro.obs.rollup import Rollup
from repro.obs.tracing import NULL_TRACER, current_trace_id
from repro.planner.cache import PlanCache, PlanEntry
from repro.planner.search import SearchStats, search_partitionings
from repro.planner.signature import (
    DEFAULT_BUCKET_RATIO,
    ProblemSignature,
    bucket_workload,
    machine_fingerprint,
    options_fingerprint,
)
from repro.topology.machines import MachineSpec


@dataclass
class PlanResponse:
    """One served planning answer."""

    signature: ProblemSignature
    recommendations: List[PartitioningRecommendation]
    #: True when the answer came from the plan cache (or the warm-start store).
    cache_hit: bool
    #: True when this request waited on an identical in-flight computation.
    coalesced: bool
    #: Wall-clock seconds this request spent being answered.
    planning_time: float
    #: Age in seconds of the served plan at serve time (0.0 for plans
    #: computed by — or coalesced onto — this very request).
    plan_age: float = 0.0
    #: Search bookkeeping; ``None`` for cache hits and coalesced waits.
    search_stats: Optional[SearchStats] = None

    @property
    def recommendation(self) -> PartitioningRecommendation:
        """The best plan."""
        return self.recommendations[0]


@dataclass
class ServiceStats:
    """Lifetime serving counters (snapshot via :meth:`PlannerService.stats`)."""

    requests: int = 0
    cache_hits: int = 0
    plans_computed: int = 0
    coalesced_requests: int = 0
    candidates_simulated: int = 0
    candidates_pruned: int = 0
    total_planning_time: float = 0.0
    #: Slowest single request observed (an extreme, not a sum — fleet
    #: aggregation must take the max of per-worker values).
    max_planning_time: float = 0.0
    warm_start_entries: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the plan cache (0.0 when idle)."""
        return self.cache_hits / self.requests if self.requests else 0.0


class _InFlight:
    """Rendezvous for one in-progress plan computation (single-flight)."""

    __slots__ = ("event", "entry", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.entry: Optional[PlanEntry] = None
        self.error: Optional[BaseException] = None


class _Telemetry:
    """Observability sink for one service (constructed only when enabled).

    Bundles the metrics instruments, the tracer, and the request log so the
    serving path pays exactly one ``is None`` check when observability is
    off, and holds pre-created instruments so the enabled path never pays a
    registry lookup per request.
    """

    __slots__ = ("registry", "tracer", "request_log", "worker_index",
                 "_requests", "_latency", "_phase")

    _OUTCOMES = ("hit", "computed", "coalesced")
    _PHASES = ("opgen", "bound", "refine", "simulate")

    def __init__(self, metrics, tracer, request_log, worker_index: int) -> None:
        self.registry = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.request_log = request_log
        self.worker_index = worker_index
        self._requests = {
            outcome: self.registry.counter(
                "repro_planner_requests_total",
                "Planning requests served, by outcome.", outcome=outcome)
            for outcome in self._OUTCOMES
        }
        self._latency = {
            outcome: self.registry.histogram(
                "repro_planner_latency_seconds",
                "End-to-end planning latency in seconds, by outcome.",
                buckets=DEFAULT_LATENCY_BUCKETS, outcome=outcome)
            for outcome in self._OUTCOMES
        }
        self._phase = {
            phase: self.registry.counter(
                "repro_search_phase_seconds_total",
                "Cumulative seconds spent per search phase.", phase=phase)
            for phase in self._PHASES
        }

    def record(self, response: "PlanResponse", workload_name: str) -> None:
        """Publish one served request to every enabled backend."""
        outcome = ("hit" if response.cache_hit
                   else "coalesced" if response.coalesced else "computed")
        self._requests[outcome].inc()
        self._latency[outcome].observe(response.planning_time)
        phases: Dict[str, float] = {}
        stats = response.search_stats
        if stats is not None:
            phases = {"opgen": stats.opgen_seconds,
                      "bound": stats.bound_seconds,
                      "refine": stats.refine_seconds,
                      "simulate": stats.simulate_seconds}
            for phase, seconds in phases.items():
                self._phase[phase].inc(seconds)
        if self.request_log is not None:
            self.request_log.append(RequestRecord(
                ts=time.time(),
                signature=response.signature.key(),
                workload=workload_name,
                outcome=outcome,
                plan_age=response.plan_age,
                latency=response.planning_time,
                phases=phases,
                worker=self.worker_index,
                pid=os.getpid(),
                trace_id=current_trace_id(),
            ))


class PlannerService:
    """Plan-serving facade over the cache + pruned search (see module docs)."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        top_k: int = 1,
        memory_budget_bytes: Optional[float] = None,
        schemes: Optional[Sequence[PartitioningScheme]] = None,
        replication_factors: Optional[Sequence[int]] = None,
        stationary_options: Sequence[str] = ("A", "B", "C"),
        itemsize: int = 4,
        dtype: str = "float32",
        bucket_ratio: float = DEFAULT_BUCKET_RATIO,
        prune: bool = True,
        config: Optional[ExecutionConfig] = None,
        cache_capacity: int = 256,
        cache_max_bytes: Optional[int] = None,
        cache_ttl_seconds: Optional[float] = None,
        store_path: Optional[str] = None,
        autosave: bool = False,
        max_workers: int = 4,
        metrics=None,
        tracer=None,
        request_log=None,
        worker_index: int = -1,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.machine = machine
        self.top_k = top_k
        self.memory_budget_bytes = memory_budget_bytes
        self.schemes = list(schemes) if schemes is not None else None
        self.replication_factors = (
            list(replication_factors) if replication_factors is not None else None
        )
        self.stationary_options = tuple(stationary_options)
        self.itemsize = itemsize
        self.dtype = dtype
        self.bucket_ratio = bucket_ratio
        self.prune = prune
        self.config = config or ExecutionConfig(simulate_only=True)
        self.cache = PlanCache(cache_capacity, max_bytes=cache_max_bytes,
                               ttl_seconds=cache_ttl_seconds, metrics=metrics)
        self.store_path = store_path
        self.autosave = autosave
        # One sink object when ANY observability backend is enabled; None
        # otherwise, so the serving path's disabled cost is a single check.
        self._telemetry: Optional[_Telemetry] = None
        if metrics is not None or tracer is not None or request_log is not None:
            self._telemetry = _Telemetry(metrics, tracer, request_log,
                                         worker_index)
        self._tracer = (self._telemetry.tracer if self._telemetry is not None
                        else NULL_TRACER)
        self._rollup: Optional[Rollup] = None
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._inflight: Dict[str, _InFlight] = {}
        self._stats = ServiceStats()
        # The machine and search options are fixed for the service's lifetime,
        # so their digests are computed once — the warm path must stay a dict
        # lookup, not an O(devices^2) hash per request.
        self._machine_digest = machine_fingerprint(machine)
        self._options_digests: Dict[int, str] = {}
        # Plans are priced by the search's default cost model for this
        # machine; its digest stamps every entry so a warm-start store written
        # under a different pricing build invalidates itself on load.
        self.cost_model_fingerprint = CostModel(machine).fingerprint()
        if store_path is not None:
            self._stats.warm_start_entries = self.cache.load(
                store_path, fingerprint=self.cost_model_fingerprint
            )

    # ------------------------------------------------------------------ #
    # signatures
    # ------------------------------------------------------------------ #
    def _options_digest(self, top_k: int) -> str:
        digest = self._options_digests.get(top_k)
        if digest is None:
            scheme_names = (
                tuple(s.name for s in self.schemes) if self.schemes is not None else "default"
            )
            digest = options_fingerprint(
                top_k=top_k,
                schemes=scheme_names,
                replication_factors=(
                    tuple(self.replication_factors)
                    if self.replication_factors is not None else "all"
                ),
                stationary=self.stationary_options,
                itemsize=self.itemsize,
                # The full frozen config: any field (prefetch depth, async
                # limits, tile caching, ...) can change simulated times and
                # therefore the winning plan, so none may alias in the cache.
                config=repr(self.config),
            )
            self._options_digests[top_k] = digest
        return digest

    def signature_for(self, workload: Workload, top_k: Optional[int] = None) -> ProblemSignature:
        """Canonical signature a request maps to (its cache identity).

        Structured workloads bucket their live geometry (density, expert
        capacity and routed tokens) alongside the envelope, so near-identical
        sparse requests share a plan computed for their bucket's corner.
        """
        effective_k = self.top_k if top_k is None else top_k
        m, n, k, structure = bucket_workload(workload, self.bucket_ratio)
        return ProblemSignature(
            m=m,
            n=n,
            k=k,
            dtype=self.dtype,
            machine=self._machine_digest,
            memory_budget=self.memory_budget_bytes,
            options=self._options_digest(effective_k),
            structure=structure,
        )

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def plan(self, workload: Workload, *, top_k: Optional[int] = None) -> PlanResponse:
        """Serve one planning request (cache -> single-flight -> search).

        With observability enabled the request runs inside a
        ``planner.plan`` span (joining any ambient trace context, e.g. the
        serving worker's) and is recorded to the metrics registry and the
        request log on completion.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._plan(workload, top_k=top_k)
        with telemetry.tracer.span("planner.plan",
                                   workload=workload.name) as span:
            response = self._plan(workload, top_k=top_k)
            span.set(signature=response.signature.key(),
                     outcome=("hit" if response.cache_hit else
                              "coalesced" if response.coalesced
                              else "computed"))
            telemetry.record(response, workload.name)
        return response

    def _plan(self, workload: Workload, *, top_k: Optional[int] = None) -> PlanResponse:
        started = time.perf_counter()
        effective_k = self.top_k if top_k is None else top_k
        signature = self.signature_for(workload, effective_k)
        key = signature.key()

        leader = False
        flight: Optional[_InFlight] = None
        with self._lock:
            self._stats.requests += 1
            found = self.cache.get_with_age(key)
            if found is None:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
        if found is not None:
            entry, plan_age = found
            elapsed = time.perf_counter() - started
            with self._lock:
                self._stats.cache_hits += 1
                self._stats.total_planning_time += elapsed
                if elapsed > self._stats.max_planning_time:
                    self._stats.max_planning_time = elapsed
            return PlanResponse(signature=signature,
                                recommendations=list(entry.recommendations),
                                cache_hit=True, coalesced=False,
                                planning_time=elapsed, plan_age=plan_age)

        assert flight is not None
        if not leader:
            flight.event.wait()
            elapsed = time.perf_counter() - started
            with self._lock:
                self._stats.coalesced_requests += 1
                self._stats.total_planning_time += elapsed
                if elapsed > self._stats.max_planning_time:
                    self._stats.max_planning_time = elapsed
            if flight.error is not None:
                raise flight.error
            assert flight.entry is not None
            return PlanResponse(signature=signature,
                                recommendations=list(flight.entry.recommendations),
                                cache_hit=False, coalesced=True,
                                planning_time=elapsed)

        search_stats: Optional[SearchStats] = None
        try:
            # Plan for the bucket's representative (its upper corner), not the
            # raw request: every member of the bucket then receives the same
            # deterministic answer regardless of arrival order, and the memory
            # budget was checked against the largest shape the bucket admits.
            planning_workload = signature.representative_workload(name=workload.name)
            recommendations, search_stats = search_partitionings(
                self.machine,
                planning_workload,
                memory_budget_bytes=self.memory_budget_bytes,
                schemes=self.schemes,
                replication_factors=self.replication_factors,
                stationary_options=self.stationary_options,
                top_k=effective_k,
                itemsize=self.itemsize,
                config=self.config,
                prune=self.prune,
                tracer=self._tracer,
            )
            entry = PlanEntry(recommendations=recommendations,
                              workload=planning_workload,
                              num_simulated=search_stats.num_simulated,
                              num_pruned=search_stats.num_pruned,
                              fingerprint=self.cost_model_fingerprint)
            self.cache.put(key, entry)
            flight.entry = entry
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()

        if self.autosave and self.store_path is not None:
            self.cache.save(self.store_path)

        elapsed = time.perf_counter() - started
        with self._lock:
            self._stats.plans_computed += 1
            self._stats.candidates_simulated += search_stats.num_simulated
            self._stats.candidates_pruned += search_stats.num_pruned
            self._stats.total_planning_time += elapsed
            if elapsed > self._stats.max_planning_time:
                self._stats.max_planning_time = elapsed
        return PlanResponse(signature=signature,
                            recommendations=list(entry.recommendations),
                            cache_hit=False, coalesced=False,
                            planning_time=elapsed, search_stats=search_stats)

    def plan_many(self, workloads: Sequence[Workload], *,
                  top_k: Optional[int] = None) -> List[PlanResponse]:
        """Serve a batch concurrently over the worker pool (order preserved)."""
        if not workloads:
            return []
        if len(workloads) == 1:
            return [self.plan(workloads[0], top_k=top_k)]
        pool = self._ensure_pool()
        return list(pool.map(lambda w: self.plan(w, top_k=top_k), workloads))

    # ------------------------------------------------------------------ #
    # lifecycle / observability
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="planner",
                )
            return self._pool

    def stats(self) -> ServiceStats:
        """Snapshot of the lifetime serving counters."""
        with self._lock:
            return replace(self._stats)

    # ------------------------------------------------------------------ #
    # telemetry feedback (adaptive planning)
    # ------------------------------------------------------------------ #
    def apply_rollup(self, rollup: Optional[Rollup]) -> None:
        """Feed compacted serving telemetry back into this service.

        Installs the rollup's per-signature traffic as the plan cache's
        eviction weights (hot signatures outlive cold ones under pressure)
        and retains it for :meth:`refresh_candidates`.  ``None`` clears both,
        restoring pure-LRU eviction.
        """
        with self._lock:
            self._rollup = rollup
        self.cache.set_traffic_weights(
            rollup.traffic_weights() if rollup is not None else None)

    def refresh_candidates(
        self, top_n: int = 5, *, min_age_seconds: float = 0.0,
    ) -> List[Tuple[str, int, Optional[float]]]:
        """The hottest signatures whose cached plan is stale or absent.

        Walks the applied rollup's signatures in descending traffic order and
        returns up to ``top_n`` tuples ``(signature_key, requests,
        age_seconds)`` whose resident plan is at least ``min_age_seconds``
        old — or missing entirely (``age_seconds`` is ``None``).  This is
        the work list a background refresher should re-plan first: recomputing
        these *before* TTL expiry keeps the hottest traffic on warm plans.
        Empty until :meth:`apply_rollup` has been called.
        """
        with self._lock:
            rollup = self._rollup
        if rollup is None:
            return []
        ages = self.cache.entry_ages()
        candidates: List[Tuple[str, int, Optional[float]]] = []
        for aggregate in rollup.top(len(rollup.signatures), by="requests"):
            age = ages.get(aggregate.signature)
            if age is None or age >= min_age_seconds:
                candidates.append((aggregate.signature, aggregate.requests, age))
            if len(candidates) >= top_n:
                break
        return candidates

    def cache_stats(self):
        """Snapshot of the underlying plan cache's counters."""
        return self.cache.stats()

    def save_store(self, path: Optional[str] = None) -> str:
        """Persist the plan cache to ``path`` (default: the configured store)."""
        target = path or self.store_path
        if target is None:
            raise ValueError("no store path configured and none given")
        return self.cache.save(target)

    def close(self) -> None:
        """Shut the worker pool down (and autosave the store if configured)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.autosave and self.store_path is not None:
            self.cache.save(self.store_path)

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
