"""PlannerService: the serving brain in front of the design-space search.

``plan()`` answers "how should I partition this problem on this machine?"
with the same ranked recommendations the exhaustive selector would produce,
but production-shaped:

* **memoized** — answers come from the LRU plan cache keyed by canonical
  problem signatures (machine fingerprint + bucketed shape + budget +
  search-options digest), so near-identical requests cost one dict lookup;
* **pruned** — cache misses run the branch-and-bound search, simulating only
  candidates whose cost-model lower bound can still win;
* **single-flight** — concurrent identical requests are coalesced: one
  thread computes, the rest wait on the same in-flight result instead of
  duplicating the search;
* **warm-startable** — a JSON plan store persists the cache across
  processes (load at boot, save on demand or automatically per new plan);
* **observable** — serving counters (requests, hits, coalesced waits,
  simulations, pruning) are aggregated across the service's lifetime, and a
  service constructed with a metrics registry / tracer / request log
  (:mod:`repro.obs`) publishes per-request telemetry: outcome counters and
  latency histograms, one span tree per request, one log line per request;
* **adaptive** — :meth:`~PlannerService.apply_rollup` feeds compacted
  telemetry back into serving (traffic-weighted cache eviction),
  :meth:`~PlannerService.refresh_candidates` names the hot signatures a
  background refresher should re-plan first, and
  :meth:`~PlannerService.refresh` recomputes one signature off the request
  path (sharing the single-flight table with foreground ``plan()`` calls).
  With a grace window configured (``cache_grace_seconds``) the service
  serves **stale-while-revalidate**: a just-expired plan answers
  immediately (``stale=True``) while the refresher recomputes it, and with
  ``refresh_options`` set the service owns a
  :class:`~repro.planner.refresh.BackgroundRefresher` that keeps hot plans
  warm before TTL expiry, prewarms predicted-next signatures, and re-plans
  drifted MoE/block-sparse buckets — so under steady traffic zero cold
  plans execute on the request path.

``plan_many()`` fans a batch of requests over a thread pool, which both
exercises and benefits from single-flight dedup when the batch repeats
signatures.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.schemes import PartitioningScheme
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, NULL_REGISTRY
from repro.obs.reqlog import RequestRecord
from repro.obs.rollup import Rollup
from repro.obs.tracing import NULL_TRACER, current_trace_id
from repro.core.graph import OpGraph
from repro.planner.cache import (
    PlanCache,
    PlanEntry,
    load_portable_seeds,
    portable_plan_key,
)
from repro.planner.graph import (
    DEFAULT_LATTICE_SIZE,
    GraphPlanEntry,
    op_workload,
    plan_graph_layouts,
)
from repro.planner.search import SearchStats, search_partitionings
from repro.planner.signature import (
    DEFAULT_BUCKET_RATIO,
    GraphSignature,
    ProblemSignature,
    SignatureFactory,
    machine_portability_profile,
)
from repro.topology.machines import MachineSpec


@dataclass
class PlanResponse:
    """One served planning answer."""

    signature: ProblemSignature
    recommendations: List[PartitioningRecommendation]
    #: True when the answer came from the plan cache (or the warm-start store).
    cache_hit: bool
    #: True when this request waited on an identical in-flight computation.
    coalesced: bool
    #: Wall-clock seconds this request spent being answered.
    planning_time: float
    #: Age in seconds of the served plan at serve time (0.0 for plans
    #: computed by — or coalesced onto — this very request).
    plan_age: float = 0.0
    #: True when the served plan's TTL had expired but the entry was still
    #: inside the cache's grace window (stale-while-revalidate): the answer
    #: is the previous plan, served immediately while a background refresh
    #: recomputes it off-path.  Always implies ``cache_hit``.
    stale: bool = False
    #: Search bookkeeping; ``None`` for cache hits and coalesced waits.
    search_stats: Optional[SearchStats] = None

    @property
    def recommendation(self) -> PartitioningRecommendation:
        """The best plan."""
        return self.recommendations[0]


@dataclass
class GraphPlanResponse:
    """One served joint graph-planning answer.

    Field-compatible with :class:`PlanResponse` everywhere the serving
    telemetry looks (``signature.key()``, outcome flags, timings,
    ``search_stats``), so graph requests flow through the same outcome
    counters, latency histograms, and request-log records as single-op ones.
    """

    signature: GraphSignature
    #: The chosen recommendation per op, aligned with ``graph.ops``.
    recommendations: List[PartitioningRecommendation]
    #: The (bucketed) graph the joint plan was computed for.
    graph: Optional[OpGraph]
    #: Chosen candidate index per op (into each op's layout lattice).
    assignment: Tuple[int, ...]
    #: End-to-end modelled makespan of the joint assignment.
    makespan: float
    #: Makespan of the per-op greedy baseline (every op's isolated winner).
    greedy_makespan: float
    #: Which solver produced the assignment (chain DP or branch-and-bound).
    method: str
    #: True when the answer came from the plan cache (or warm-start store).
    cache_hit: bool
    #: True when this request waited on an identical in-flight computation.
    coalesced: bool
    #: Wall-clock seconds this request spent being answered.
    planning_time: float
    #: Age in seconds of the served plan at serve time.
    plan_age: float = 0.0
    #: True when a grace-window (stale-while-revalidate) entry was served.
    stale: bool = False
    #: Accumulated per-op search bookkeeping; ``None`` unless computed here.
    search_stats: Optional[SearchStats] = None


@dataclass
class ServiceStats:
    """Lifetime serving counters (snapshot via :meth:`PlannerService.stats`)."""

    requests: int = 0
    cache_hits: int = 0
    plans_computed: int = 0
    coalesced_requests: int = 0
    candidates_simulated: int = 0
    candidates_pruned: int = 0
    total_planning_time: float = 0.0
    #: Slowest single request observed (an extreme, not a sum — fleet
    #: aggregation must take the max of per-worker values).
    max_planning_time: float = 0.0
    warm_start_entries: int = 0
    #: Cache hits that served an expired-but-in-grace plan (a subset of
    #: ``cache_hits``; each should have triggered a background refresh).
    stale_hits: int = 0
    #: Plans recomputed off the request path (:meth:`PlannerService.refresh`);
    #: a subset of ``plans_computed``.
    background_refreshes: int = 0
    #: Cross-fingerprint seed specs imported from portable plan stores
    #: (:meth:`PlannerService.import_portable_plans`).
    portable_seeds_loaded: int = 0
    #: Plans whose branch-and-bound was warm-started by at least one
    #: portable seed (a subset of ``plans_computed``; the recommendations
    #: are provably identical to a cold search).
    portable_seeded: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the plan cache (0.0 when idle)."""
        return self.cache_hits / self.requests if self.requests else 0.0


class _InFlight:
    """Rendezvous for one in-progress plan computation (single-flight)."""

    __slots__ = ("event", "entry", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.entry: Optional[PlanEntry] = None
        self.error: Optional[BaseException] = None


def _outcome_of(response: "PlanResponse") -> str:
    """The telemetry outcome label for one served response."""
    if response.cache_hit:
        return "stale" if response.stale else "hit"
    return "coalesced" if response.coalesced else "computed"


class _Telemetry:
    """Observability sink for one service (constructed only when enabled).

    Bundles the metrics instruments, the tracer, and the request log so the
    serving path pays exactly one ``is None`` check when observability is
    off, and holds pre-created instruments so the enabled path never pays a
    registry lookup per request.
    """

    __slots__ = ("registry", "tracer", "request_log", "worker_index", "clock",
                 "_requests", "_latency", "_phase")

    _OUTCOMES = ("hit", "stale", "computed", "coalesced")
    _PHASES = ("opgen", "bound", "refine", "simulate")

    def __init__(self, metrics, tracer, request_log, worker_index: int,
                 clock=time.time) -> None:
        self.registry = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.request_log = request_log
        self.worker_index = worker_index
        # The service's injected clock: request-log timestamps must tick on
        # the same clock as TTL/grace/plan-age accounting, or fake-clock
        # replays log wall-clock times the cache state never saw.
        self.clock = clock
        self._requests = {
            outcome: self.registry.counter(
                "repro_planner_requests_total",
                "Planning requests served, by outcome.", outcome=outcome)
            for outcome in self._OUTCOMES
        }
        self._latency = {
            outcome: self.registry.histogram(
                "repro_planner_latency_seconds",
                "End-to-end planning latency in seconds, by outcome.",
                buckets=DEFAULT_LATENCY_BUCKETS, outcome=outcome)
            for outcome in self._OUTCOMES
        }
        self._phase = {
            phase: self.registry.counter(
                "repro_search_phase_seconds_total",
                "Cumulative seconds spent per search phase.", phase=phase)
            for phase in self._PHASES
        }

    def record(self, response: "PlanResponse", workload_name: str) -> None:
        """Publish one served request to every enabled backend."""
        outcome = _outcome_of(response)
        self._requests[outcome].inc()
        self._latency[outcome].observe(response.planning_time)
        phases: Dict[str, float] = {}
        stats = response.search_stats
        if stats is not None:
            phases = {"opgen": stats.opgen_seconds,
                      "bound": stats.bound_seconds,
                      "refine": stats.refine_seconds,
                      "simulate": stats.simulate_seconds}
            for phase, seconds in phases.items():
                self._phase[phase].inc(seconds)
        if self.request_log is not None:
            self.request_log.append(RequestRecord(
                ts=self.clock(),
                signature=response.signature.key(),
                workload=workload_name,
                outcome=outcome,
                plan_age=response.plan_age,
                latency=response.planning_time,
                phases=phases,
                worker=self.worker_index,
                pid=os.getpid(),
                trace_id=current_trace_id(),
            ))


class PlannerService:
    """Plan-serving facade over the cache + pruned search (see module docs)."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        top_k: int = 1,
        memory_budget_bytes: Optional[float] = None,
        schemes: Optional[Sequence[PartitioningScheme]] = None,
        replication_factors: Optional[Sequence[int]] = None,
        stationary_options: Sequence[str] = ("A", "B", "C"),
        itemsize: int = 4,
        dtype: str = "float32",
        bucket_ratio: float = DEFAULT_BUCKET_RATIO,
        prune: bool = True,
        config: Optional[ExecutionConfig] = None,
        cache_capacity: int = 256,
        cache_max_bytes: Optional[int] = None,
        cache_ttl_seconds: Optional[float] = None,
        cache_grace_seconds: Optional[float] = None,
        clock=None,
        store_path: Optional[str] = None,
        autosave: bool = False,
        max_workers: int = 4,
        metrics=None,
        tracer=None,
        request_log=None,
        worker_index: int = -1,
        refresh_options: Optional[Dict[str, object]] = None,
        portable_store_paths: Optional[Sequence[str]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.machine = machine
        self.top_k = top_k
        self.memory_budget_bytes = memory_budget_bytes
        self.schemes = list(schemes) if schemes is not None else None
        self.replication_factors = (
            list(replication_factors) if replication_factors is not None else None
        )
        self.stationary_options = tuple(stationary_options)
        self.itemsize = itemsize
        self.dtype = dtype
        self.bucket_ratio = bucket_ratio
        self.prune = prune
        self.config = config or ExecutionConfig(simulate_only=True)
        self.clock = clock if clock is not None else time.time
        self.cache = PlanCache(cache_capacity, max_bytes=cache_max_bytes,
                               ttl_seconds=cache_ttl_seconds,
                               grace_seconds=cache_grace_seconds,
                               clock=self.clock, metrics=metrics)
        self.store_path = store_path
        self.autosave = autosave
        # One sink object when ANY observability backend is enabled; None
        # otherwise, so the serving path's disabled cost is a single check.
        self._telemetry: Optional[_Telemetry] = None
        if metrics is not None or tracer is not None or request_log is not None:
            self._telemetry = _Telemetry(metrics, tracer, request_log,
                                         worker_index, clock=self.clock)
        self._tracer = (self._telemetry.tracer if self._telemetry is not None
                        else NULL_TRACER)
        self._rollup: Optional[Rollup] = None
        # Observation hook for the background refresher (``set_observer``):
        # None when no refresher is attached, so the request path's cost for
        # the disabled feature is one attribute check — the same discipline
        # as the telemetry sink above.
        self._observer = None
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._inflight: Dict[str, _InFlight] = {}
        self._stats = ServiceStats()
        # The machine and search options are fixed for the service's lifetime,
        # so their digests are computed once — the warm path must stay a dict
        # lookup, not an O(devices^2) hash per request.  The factory is the
        # shared derivation a fleet router uses to compute identical keys
        # client-side (repro.serve.fleet), so serving and routing can never
        # disagree about a request's identity.
        self._signatures = SignatureFactory(
            machine,
            top_k=top_k,
            memory_budget_bytes=memory_budget_bytes,
            schemes=self.schemes,
            replication_factors=self.replication_factors,
            stationary_options=self.stationary_options,
            itemsize=itemsize,
            dtype=dtype,
            bucket_ratio=bucket_ratio,
            config=self.config,
        )
        self._machine_digest = self._signatures.machine_digest
        #: Coarse compatibility digest stamped on every computed plan so a
        #: profile-matching machine elsewhere in the fleet can seed from it.
        self.machine_profile = machine_portability_profile(machine)
        # Plans are priced by the search's default cost model for this
        # machine; its digest stamps every entry so a warm-start store written
        # under a different pricing build invalidates itself on load.
        self.cost_model_fingerprint = CostModel(machine).fingerprint()
        if store_path is not None:
            self._stats.warm_start_entries = self.cache.load(
                store_path, fingerprint=self.cost_model_fingerprint
            )
        # Cross-fingerprint warm starts: portable seeds harvested from other
        # machines' stores, keyed by portable_plan_key.  Never served —
        # only fed to search_partitionings as incumbent candidates.
        self._portable_seeds: Dict[str, List[tuple]] = {}
        for path in portable_store_paths or ():
            self.import_portable_plans(path)
        # The adaptive refresh engine is owned by the service when asked for:
        # ``refresh_options`` (kwargs for BackgroundRefresher) builds and
        # starts one, and close() stops it.  The import is lazy because
        # refresh.py drives *this* class — the one intentional cycle.
        self.refresher = None
        if refresh_options is not None:
            from repro.planner.refresh import BackgroundRefresher

            self.refresher = BackgroundRefresher(self, **refresh_options)  # type: ignore[arg-type]
            self.refresher.start()

    # ------------------------------------------------------------------ #
    # signatures
    # ------------------------------------------------------------------ #
    def _options_digest(self, top_k: int) -> str:
        return self._signatures.options_digest(top_k)

    def signature_for(self, workload: Workload, top_k: Optional[int] = None) -> ProblemSignature:
        """Canonical signature a request maps to (its cache identity).

        Delegates to the shared :class:`~repro.planner.signature.SignatureFactory`
        derivation — the same one a fleet router runs client-side — so
        routing keys and serving keys are byte-identical by construction.
        """
        return self._signatures.signature_for(workload, top_k)

    # ------------------------------------------------------------------ #
    # cross-fingerprint portability
    # ------------------------------------------------------------------ #
    def import_portable_plans(self, path: str) -> int:
        """Harvest branch-and-bound seeds from another machine's plan store.

        Entries whose :attr:`machine_profile` matches this machine's (same
        candidate space — see
        :func:`repro.planner.signature.machine_portability_profile`) become
        seed specs for future searches of the same problem shape: their
        named candidates are simulated first, establishing the incumbent
        pruning threshold before the frontier walk.  The foreign plans are
        **never served** — their simulated times came from a different cost
        model — so exact-fingerprint answers stay bit-identical; only the
        amount of search work changes.

        Args:
            path: a :meth:`~repro.planner.cache.PlanCache.save` store
                written by any machine (missing/malformed files are a no-op).

        Returns:
            How many seed specs were imported from this store.
        """
        seeds = load_portable_seeds(path, self.machine_profile)
        imported = 0
        with self._lock:
            for portable_key, specs in seeds.items():
                bucket = self._portable_seeds.setdefault(portable_key, [])
                for spec in specs:
                    if spec not in bucket:
                        bucket.append(spec)
                        imported += 1
            self._stats.portable_seeds_loaded += imported
        return imported

    def _search(self, planning_workload: Workload, top_k: int):
        """Run the design-space search for one representative workload.

        The single funnel every compute path (foreground miss, background
        refresh) goes through, so cross-fingerprint seeding applies
        identically everywhere: portable seeds filed under the workload's
        portable key warm-start the branch and bound as incumbents.
        """
        with self._lock:
            seeds = self._portable_seeds.get(portable_plan_key(planning_workload))
            seeds = list(seeds) if seeds else None
        return search_partitionings(
            self.machine,
            planning_workload,
            memory_budget_bytes=self.memory_budget_bytes,
            schemes=self.schemes,
            replication_factors=self.replication_factors,
            stationary_options=self.stationary_options,
            top_k=top_k,
            itemsize=self.itemsize,
            config=self.config,
            prune=self.prune,
            tracer=self._tracer,
            seed_candidates=seeds,
        )

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def plan(self, workload: Workload, *, top_k: Optional[int] = None) -> PlanResponse:
        """Serve one planning request (cache -> single-flight -> search).

        With observability enabled the request runs inside a
        ``planner.plan`` span (joining any ambient trace context, e.g. the
        serving worker's) and is recorded to the metrics registry and the
        request log on completion.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._plan(workload, top_k=top_k)
        with telemetry.tracer.span("planner.plan",
                                   workload=workload.name) as span:
            response = self._plan(workload, top_k=top_k)
            span.set(signature=response.signature.key(),
                     outcome=_outcome_of(response))
            telemetry.record(response, workload.name)
        return response

    def _plan(self, workload: Workload, *, top_k: Optional[int] = None) -> PlanResponse:
        started = time.perf_counter()
        effective_k = self.top_k if top_k is None else top_k
        signature = self.signature_for(workload, effective_k)
        key = signature.key()

        leader = False
        flight: Optional[_InFlight] = None
        with self._lock:
            self._stats.requests += 1
            found = self.cache.get_for_serving(key)
            if found is None:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
        observer = self._observer
        if found is not None:
            entry, plan_age, stale = found
            elapsed = time.perf_counter() - started
            with self._lock:
                self._stats.cache_hits += 1
                if stale:
                    self._stats.stale_hits += 1
                self._stats.total_planning_time += elapsed
                if elapsed > self._stats.max_planning_time:
                    self._stats.max_planning_time = elapsed
            if observer is not None:
                observer.observe_request(signature, effective_k, workload,
                                         stale=stale)
            return PlanResponse(signature=signature,
                                recommendations=list(entry.recommendations),
                                cache_hit=True, coalesced=False,
                                planning_time=elapsed, plan_age=plan_age,
                                stale=stale)

        assert flight is not None
        if not leader:
            flight.event.wait()
            elapsed = time.perf_counter() - started
            with self._lock:
                self._stats.coalesced_requests += 1
                self._stats.total_planning_time += elapsed
                if elapsed > self._stats.max_planning_time:
                    self._stats.max_planning_time = elapsed
            if flight.error is not None:
                raise flight.error
            assert flight.entry is not None
            if observer is not None:
                observer.observe_request(signature, effective_k, workload,
                                         stale=False)
            return PlanResponse(signature=signature,
                                recommendations=list(flight.entry.recommendations),
                                cache_hit=False, coalesced=True,
                                planning_time=elapsed)

        search_stats: Optional[SearchStats] = None
        try:
            # Plan for the bucket's representative (its upper corner), not the
            # raw request: every member of the bucket then receives the same
            # deterministic answer regardless of arrival order, and the memory
            # budget was checked against the largest shape the bucket admits.
            planning_workload = signature.representative_workload(name=workload.name)
            recommendations, search_stats = self._search(planning_workload,
                                                         effective_k)
            entry = PlanEntry(recommendations=recommendations,
                              workload=planning_workload,
                              num_simulated=search_stats.num_simulated,
                              num_pruned=search_stats.num_pruned,
                              fingerprint=self.cost_model_fingerprint,
                              machine_profile=self.machine_profile)
            self.cache.put(key, entry)
            flight.entry = entry
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()

        if self.autosave and self.store_path is not None:
            self.cache.save(self.store_path)

        elapsed = time.perf_counter() - started
        with self._lock:
            self._stats.plans_computed += 1
            self._stats.candidates_simulated += search_stats.num_simulated
            self._stats.candidates_pruned += search_stats.num_pruned
            if search_stats.num_seeded:
                self._stats.portable_seeded += 1
            self._stats.total_planning_time += elapsed
            if elapsed > self._stats.max_planning_time:
                self._stats.max_planning_time = elapsed
        if observer is not None:
            observer.observe_request(signature, effective_k, workload,
                                     stale=False)
        return PlanResponse(signature=signature,
                            recommendations=list(entry.recommendations),
                            cache_hit=False, coalesced=False,
                            planning_time=elapsed, search_stats=search_stats)

    def graph_signature_for(self, graph: OpGraph,
                            lattice_size: Optional[int] = None) -> GraphSignature:
        """Canonical signature of one joint graph-planning request.

        Each op buckets exactly like a single-op request (with the lattice
        size folded into the per-op options digest, so plans computed under
        different lattice widths never alias); the edge structure rides
        alongside.  Structurally identical graphs share a cache entry
        regardless of their display names.
        """
        effective = DEFAULT_LATTICE_SIZE if lattice_size is None else lattice_size
        return GraphSignature(
            ops=tuple(self.signature_for(op_workload(op), top_k=effective)
                      for op in graph.ops),
            edges=tuple((edge.src, edge.dst, edge.operand)
                        for edge in graph.edges),
            name=graph.name,
        )

    def plan_graph(self, graph: OpGraph, *,
                   lattice_size: Optional[int] = None) -> GraphPlanResponse:
        """Serve one joint graph-planning request (cache -> single-flight -> solve).

        Same serving discipline as :meth:`plan` — memoized on the graph
        signature, coalesced across concurrent identical requests, recorded
        to the metrics registry / request log / tracer when observability is
        enabled (span ``planner.plan_graph``).
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._plan_graph(graph, lattice_size=lattice_size)
        with telemetry.tracer.span("planner.plan_graph",
                                   graph=graph.name,
                                   ops=len(graph.ops)) as span:
            response = self._plan_graph(graph, lattice_size=lattice_size)
            span.set(signature=response.signature.key(),
                     outcome=_outcome_of(response),
                     method=response.method)
            telemetry.record(response, graph.name)
        return response

    def _graph_response(self, signature: GraphSignature, entry: GraphPlanEntry,
                        *, cache_hit: bool, coalesced: bool,
                        planning_time: float, plan_age: float = 0.0,
                        stale: bool = False,
                        search_stats: Optional[SearchStats] = None,
                        ) -> GraphPlanResponse:
        """Assemble the served response from a (new or cached) graph entry."""
        return GraphPlanResponse(
            signature=signature,
            recommendations=list(entry.recommendations),
            graph=entry.graph,
            assignment=entry.assignment,
            makespan=entry.makespan,
            greedy_makespan=entry.greedy_makespan,
            method=entry.method,
            cache_hit=cache_hit,
            coalesced=coalesced,
            planning_time=planning_time,
            plan_age=plan_age,
            stale=stale,
            search_stats=search_stats,
        )

    def _plan_graph(self, graph: OpGraph, *,
                    lattice_size: Optional[int] = None) -> GraphPlanResponse:
        started = time.perf_counter()
        effective = DEFAULT_LATTICE_SIZE if lattice_size is None else lattice_size
        signature = self.graph_signature_for(graph, effective)
        key = signature.key()

        leader = False
        flight: Optional[_InFlight] = None
        with self._lock:
            self._stats.requests += 1
            found = self.cache.get_for_serving(key)
            if found is None:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
        # Note: the refresher's request observer is deliberately not fed —
        # it refreshes single-op ProblemSignatures and cannot re-plan a
        # graph key; graph entries renew through the foreground path only.
        if found is not None:
            entry, plan_age, stale = found
            elapsed = time.perf_counter() - started
            with self._lock:
                self._stats.cache_hits += 1
                if stale:
                    self._stats.stale_hits += 1
                self._stats.total_planning_time += elapsed
                if elapsed > self._stats.max_planning_time:
                    self._stats.max_planning_time = elapsed
            return self._graph_response(signature, entry, cache_hit=True,
                                        coalesced=False,
                                        planning_time=elapsed,
                                        plan_age=plan_age, stale=stale)

        assert flight is not None
        if not leader:
            flight.event.wait()
            elapsed = time.perf_counter() - started
            with self._lock:
                self._stats.coalesced_requests += 1
                self._stats.total_planning_time += elapsed
                if elapsed > self._stats.max_planning_time:
                    self._stats.max_planning_time = elapsed
            if flight.error is not None:
                raise flight.error
            assert flight.entry is not None
            return self._graph_response(signature, flight.entry,
                                        cache_hit=False, coalesced=True,
                                        planning_time=elapsed)

        search_stats: Optional[SearchStats] = None
        try:
            # Plan for the bucket-corner graph, not the raw request — the
            # same representative discipline as single-op serving, so every
            # member of the bucket gets one deterministic joint plan.
            planning_graph = signature.representative_graph()
            plan, search_stats = plan_graph_layouts(
                self.machine,
                planning_graph,
                lattice_size=effective,
                memory_budget_bytes=self.memory_budget_bytes,
                schemes=self.schemes,
                replication_factors=self.replication_factors,
                stationary_options=self.stationary_options,
                itemsize=self.itemsize,
                config=self.config,
                prune=self.prune,
                tracer=self._tracer,
            )
            entry = GraphPlanEntry.from_plan(
                plan,
                num_simulated=search_stats.num_simulated,
                num_pruned=search_stats.num_pruned,
                fingerprint=self.cost_model_fingerprint,
            )
            self.cache.put(key, entry)
            flight.entry = entry
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()

        if self.autosave and self.store_path is not None:
            self.cache.save(self.store_path)

        elapsed = time.perf_counter() - started
        with self._lock:
            self._stats.plans_computed += 1
            self._stats.candidates_simulated += search_stats.num_simulated
            self._stats.candidates_pruned += search_stats.num_pruned
            self._stats.total_planning_time += elapsed
            if elapsed > self._stats.max_planning_time:
                self._stats.max_planning_time = elapsed
        return self._graph_response(signature, entry, cache_hit=False,
                                    coalesced=False, planning_time=elapsed,
                                    search_stats=search_stats)

    def plan_many(self, workloads: Sequence[Workload], *,
                  top_k: Optional[int] = None) -> List[PlanResponse]:
        """Serve a batch concurrently over the worker pool (order preserved)."""
        if not workloads:
            return []
        if len(workloads) == 1:
            return [self.plan(workloads[0], top_k=top_k)]
        pool = self._ensure_pool()
        return list(pool.map(lambda w: self.plan(w, top_k=top_k), workloads))

    # ------------------------------------------------------------------ #
    # lifecycle / observability
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="planner",
                )
            return self._pool

    def stats(self) -> ServiceStats:
        """Snapshot of the lifetime serving counters."""
        with self._lock:
            return replace(self._stats)

    @property
    def metrics_registry(self):
        """The registry requests are instrumented on (no-op when disabled)."""
        return (self._telemetry.registry if self._telemetry is not None
                else NULL_REGISTRY)

    def set_observer(self, observer) -> None:
        """Install (or clear, with ``None``) the request-observation hook.

        The observer sees every served request as
        ``observe_request(signature, top_k, workload, stale=...)`` — the feed
        a :class:`~repro.planner.refresh.BackgroundRefresher` uses for
        stale-triggered refreshes, transition-table prewarming, and drift
        tracking.  Calls happen outside the service lock, after the response
        is accounted; the observer must be cheap and must not call back into
        ``plan()``.
        """
        self._observer = observer

    # ------------------------------------------------------------------ #
    # telemetry feedback (adaptive planning)
    # ------------------------------------------------------------------ #
    def apply_rollup(self, rollup: Optional[Rollup]) -> None:
        """Feed compacted serving telemetry back into this service.

        Installs the rollup's per-signature traffic as the plan cache's
        eviction weights (hot signatures outlive cold ones under pressure)
        and retains it for :meth:`refresh_candidates`.  ``None`` clears both,
        restoring pure-LRU eviction.
        """
        with self._lock:
            self._rollup = rollup
        self.cache.set_traffic_weights(
            rollup.traffic_weights() if rollup is not None else None)

    def refresh_candidates(
        self, top_n: int = 5, *, min_age_seconds: float = 0.0,
    ) -> List[Tuple[str, int, Optional[float]]]:
        """The hottest signatures whose cached plan is stale or absent.

        Walks the applied rollup's signatures in descending traffic order and
        returns up to ``top_n`` tuples ``(signature_key, requests,
        age_seconds)`` whose resident plan is at least ``min_age_seconds``
        old — or missing entirely (``age_seconds`` is ``None``).  This is
        the work list a background refresher should re-plan first: recomputing
        these *before* TTL expiry keeps the hottest traffic on warm plans.
        Empty until :meth:`apply_rollup` has been called.

        Ordering is fully deterministic: descending traffic, ties broken by
        ascending signature key (see :meth:`repro.obs.rollup.Rollup.top`),
        so refresher behavior is reproducible run to run.
        """
        with self._lock:
            rollup = self._rollup
        if rollup is None:
            return []
        ages = self.cache.entry_ages()
        candidates: List[Tuple[str, int, Optional[float]]] = []
        for aggregate in rollup.top(len(rollup.signatures), by="requests"):
            age = ages.get(aggregate.signature)
            if age is None or age >= min_age_seconds:
                candidates.append((aggregate.signature, aggregate.requests, age))
            if len(candidates) >= top_n:
                break
        return candidates

    def refresh(self, signature: ProblemSignature, *,
                top_k: Optional[int] = None) -> bool:
        """Recompute one signature's plan off the request path.

        The background half of single-flight: the refresh registers itself
        in the same in-flight table foreground ``plan()`` calls rendezvous
        on, so a request arriving mid-refresh coalesces onto it instead of
        running a duplicate search — and a refresh finding the key already
        in flight (a foreground leader got there first) skips.  The computed
        entry replaces the cached one with a fresh TTL epoch; the search is
        deterministic per signature, so a refresh never changes *what* is
        recommended, only *when* it was computed.

        Args:
            signature: the (bucketed) signature to re-plan — its
                representative corner workload is searched, exactly as a
                foreground miss would.
            top_k: ranked plans to keep; must match the ``top_k`` the
                signature's options digest was built with (observers learn
                it from :meth:`set_observer` callbacks).

        Returns:
            True if this call computed the plan; False if it was skipped
            because an identical computation was already in flight.
        """
        key = signature.key()
        effective_k = self.top_k if top_k is None else top_k
        flight = _InFlight()
        with self._lock:
            if key in self._inflight:
                return False
            self._inflight[key] = flight
        search_stats: Optional[SearchStats] = None
        try:
            planning_workload = signature.representative_workload()
            recommendations, search_stats = self._search(planning_workload,
                                                         effective_k)
            entry = PlanEntry(recommendations=recommendations,
                              workload=planning_workload,
                              num_simulated=search_stats.num_simulated,
                              num_pruned=search_stats.num_pruned,
                              fingerprint=self.cost_model_fingerprint,
                              machine_profile=self.machine_profile)
            self.cache.put(key, entry)
            flight.entry = entry
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
        with self._lock:
            self._stats.plans_computed += 1
            self._stats.background_refreshes += 1
            self._stats.candidates_simulated += search_stats.num_simulated
            self._stats.candidates_pruned += search_stats.num_pruned
            if search_stats.num_seeded:
                self._stats.portable_seeded += 1
        if self.autosave and self.store_path is not None:
            self.cache.save(self.store_path)
        return True

    def cache_stats(self):
        """Snapshot of the underlying plan cache's counters."""
        return self.cache.stats()

    def save_store(self, path: Optional[str] = None) -> str:
        """Persist the plan cache to ``path`` (default: the configured store)."""
        target = path or self.store_path
        if target is None:
            raise ValueError("no store path configured and none given")
        return self.cache.save(target)

    def close(self) -> None:
        """Shut the refresher and worker pool down (autosaving if configured)."""
        if self.refresher is not None:
            self.refresher.close()
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.autosave and self.store_path is not None:
            self.cache.save(self.store_path)

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
