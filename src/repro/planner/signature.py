"""Canonical problem signatures: the planner's cache key.

A production planning service sees millions of near-identical requests — the
same transformer layer at slightly different batch sizes, the same machine
fleet, the same memory budget.  Two ingredients turn those into cache hits:

* a **machine fingerprint** — a stable digest of everything the cost model
  reads from a :class:`~repro.topology.machines.MachineSpec` (device count,
  peaks, bandwidths, the full link matrix), so plans never leak between
  machines that merely share a name;
* **geometric shape bucketing** — each of m/n/k is snapped to its geometric
  bucket's upper corner, so requests within ~±10% of each other share a
  bucket (and therefore a plan, computed for the corner so it stays
  memory-feasible for every member), while the paper's batch sweep
  (1024/2048/4096/8192 — factors of 2 apart) still lands in distinct buckets
  for any ratio below 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.structure import DENSE, WorkloadStructure, geometric_bucket
from repro.topology.machines import MachineSpec

#: Requests whose dimensions differ by less than ~±11% share a bucket.
DEFAULT_BUCKET_RATIO = 1.25


def bucket_dim(value: int, ratio: float = DEFAULT_BUCKET_RATIO) -> int:
    """Snap a dimension to its geometric bucket's *upper corner*.

    Bucket ``i`` covers ``(ratio**(i-1/2), ratio**(i+1/2)]``; the returned
    label is ``ceil(ratio**(i+1/2))`` — the largest dimension any member of
    the bucket can have.  Planning for the corner (rather than, say, the
    bucket's midpoint) keeps the served plan memory-feasible for *every*
    request that maps to the bucket, since tile footprints grow
    monotonically with the dimensions.

    ``ratio <= 1`` (or ``None``) disables bucketing and returns the exact
    dimension, which makes the signature exact-match only.

    Delegates to :func:`repro.core.structure.geometric_bucket` — the single
    rounding rule shared with live-count bucketing (block densities, expert
    capacities, routed-token totals), so envelope and structure corners can
    never drift apart.
    """
    return geometric_bucket(value, ratio)


def bucket_workload(workload: Workload,
                    ratio: Optional[float] = DEFAULT_BUCKET_RATIO
                    ) -> Tuple[int, int, int, WorkloadStructure]:
    """Bucket a request's envelope *and* structure to their corner.

    Dense requests bucket each dimension independently (the historical
    behaviour).  Structured requests additionally snap their live geometry —
    block-sparse live-block counts, MoE capacity and routed-token totals —
    to geometric upper corners, and the structure may adjust the envelope
    (an MoE batch keeps ``m`` expert-aligned by bucketing the capacity).
    The corner always dominates every member of its bucket, so the corner
    plan's memory-feasibility check covers the whole bucket.
    """
    m = bucket_dim(workload.m, ratio)
    n = bucket_dim(workload.n, ratio)
    k = bucket_dim(workload.k, ratio)
    structure = workload.structure
    if structure.is_dense:
        return m, n, k, DENSE
    return structure.bucket_envelope(m, n, k, ratio)


def machine_fingerprint(machine: MachineSpec) -> str:
    """Stable digest of every MachineSpec field the cost model consumes."""
    parts = [
        machine.name,
        machine.num_devices,
        machine.flops_peak,
        machine.memory_bandwidth,
        machine.memory_capacity,
        machine.device_link_bandwidth,
        machine.accumulate_efficiency,
        machine.accumulate_compute_interference,
        machine.gemm_efficiency,
        machine.kernel_launch_overhead,
    ]
    topology = machine.topology
    for src in range(topology.num_devices):
        for dst in range(topology.num_devices):
            link = topology.link(src, dst)
            parts.append(link.bandwidth)
            parts.append(link.latency)
    blob = "|".join(repr(part) for part in parts)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


def machine_portability_profile(machine: MachineSpec) -> str:
    """Coarse machine-compatibility digest for cross-fingerprint plan seeding.

    Deliberately much weaker than :func:`machine_fingerprint`: it hashes only
    what determines whether two machines *enumerate the same candidate
    space* — the device count (replication factors, partition grids, and
    per-device footprints all derive from it).  Two machines sharing a
    profile may still simulate to different winners (different peaks,
    bandwidths, link matrices), which is exactly why profile-compatible
    plans are only ever used as branch-and-bound **seeds** — incumbents that
    tighten the pruning threshold early — and never served directly.
    """
    blob = f"devices={machine.num_devices}"
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


def options_fingerprint(**options: object) -> str:
    """Digest of search options (top_k, schemes, factors, ...) folded into keys.

    Plans computed under different search spaces must never serve each other,
    so the service hashes its effective options into the signature.
    """
    blob = "|".join(f"{key}={options[key]!r}" for key in sorted(options))
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class ProblemSignature:
    """Canonical identity of one planning request (hashable, JSON-keyable)."""

    #: Bucketed problem dimensions (``C[m,n] = A[m,k] @ B[k,n]``).
    m: int
    n: int
    k: int
    #: Element type of the operands (affects footprints and transfer sizes).
    dtype: str
    #: Output of :func:`machine_fingerprint`.
    machine: str
    #: Per-device memory budget in bytes; ``None`` means the machine's capacity.
    memory_budget: Optional[float] = None
    #: Output of :func:`options_fingerprint` for the search options in force.
    options: str = ""
    #: The bucket-corner workload structure (dense, block-sparse, MoE-ragged).
    structure: WorkloadStructure = field(default=DENSE)

    @classmethod
    def from_request(
        cls,
        machine: MachineSpec,
        workload: Workload,
        *,
        dtype: str = "float32",
        memory_budget_bytes: Optional[float] = None,
        bucket_ratio: float = DEFAULT_BUCKET_RATIO,
        options: str = "",
    ) -> "ProblemSignature":
        """Build the signature for one (machine, workload) planning request."""
        m, n, k, structure = bucket_workload(workload, bucket_ratio)
        return cls(
            m=m,
            n=n,
            k=k,
            dtype=str(dtype),
            machine=machine_fingerprint(machine),
            memory_budget=memory_budget_bytes,
            options=options,
            structure=structure,
        )

    def key(self) -> str:
        """Stable string form used by the LRU cache and the JSON plan store.

        Dense keys keep their historical format (so existing plan stores
        stay valid); structured signatures append the structure token.
        """
        budget = "cap" if self.memory_budget is None else f"{float(self.memory_budget):.6g}"
        base = f"{self.m}x{self.n}x{self.k}|{self.dtype}|{self.machine}|{budget}|{self.options}"
        if self.structure.is_dense:
            return base
        return f"{base}|{self.structure.signature_token()}"

    def representative_workload(self, name: str = "bucket") -> Workload:
        """The bucket's canonical workload (what a fresh plan is computed for)."""
        return Workload(name=f"{name}_{self.m}x{self.n}x{self.k}",
                        m=self.m, n=self.n, k=self.k, structure=self.structure)


@dataclass(frozen=True)
class GraphSignature:
    """Canonical identity of one joint graph-planning request.

    An ordered tuple of per-op :class:`ProblemSignature` (each bucketed and
    stamped with the machine/options fingerprints exactly like a single-op
    request) plus the graph's edge structure.  Bucketing is per-dimension and
    deterministic, so dimensions that matched raw (the producer-output /
    consumer-operand constraint :class:`repro.core.graph.OpGraph` validates)
    still match at the bucket corner — the representative graph revalidates.

    The graph's display name is deliberately **excluded** from :meth:`key`:
    two structurally identical chains share one cached joint plan regardless
    of what the caller named them.
    """

    #: Per-op signatures, indexed like the graph's ops.
    ops: Tuple[ProblemSignature, ...]
    #: Edge structure as ``(src, dst, operand)`` triples.
    edges: Tuple[Tuple[int, int, str], ...]
    #: Display name of the graph (telemetry only; not part of the key).
    name: str = "graph"

    def key(self) -> str:
        """Stable cache-store key: the op keys joined with the edge tokens."""
        op_part = ";".join(sig.key() for sig in self.ops)
        edge_part = ",".join(f"{src}>{dst}:{operand}"
                             for src, dst, operand in self.edges)
        return f"graph|{op_part}|{edge_part}"

    def representative_graph(self):
        """The bucket-corner :class:`~repro.core.graph.OpGraph` to plan for.

        Rebuilds the graph from the bucketed per-op dimensions with the
        original edges; construction re-runs the full shape/acyclicity
        validation, which the deterministic bucketing guarantees still holds.
        """
        from repro.core.graph import GraphEdge, GraphOp, OpGraph

        ops = tuple(
            GraphOp(name=f"op{i}_{sig.m}x{sig.n}x{sig.k}",
                    m=sig.m, n=sig.n, k=sig.k)
            for i, sig in enumerate(self.ops)
        )
        edges = tuple(GraphEdge(src=src, dst=dst, operand=operand)
                      for src, dst, operand in self.edges)
        return OpGraph(name=self.name, ops=ops, edges=edges)


class SignatureFactory:
    """Server-independent signature computation (the routing half of serving).

    :class:`~repro.planner.service.PlannerService` derives each request's
    cache identity from its construction options; a fleet router
    (:class:`~repro.serve.fleet.FleetClient`) must derive the *same* key
    client-side — without building a service, its cache, or its search —
    so consistent hashing sends every signature to the one server whose
    warm cache holds it.  This factory is that shared derivation: construct
    it with the planning-relevant options the servers were given and
    :meth:`signature_for` / :meth:`graph_signature_for` produce keys
    byte-identical to the service's own.

    Extra keyword arguments (cache bounds, store paths, worker plumbing —
    anything in ``service_options`` that cannot change a signature) are
    accepted and ignored, so callers may pass a server's ``service_options``
    dict through verbatim.
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        top_k: int = 1,
        memory_budget_bytes: Optional[float] = None,
        schemes=None,
        replication_factors: Optional[Sequence[int]] = None,
        stationary_options: Sequence[str] = ("A", "B", "C"),
        itemsize: int = 4,
        dtype: str = "float32",
        bucket_ratio: float = DEFAULT_BUCKET_RATIO,
        config: Optional[ExecutionConfig] = None,
        **_ignored: object,
    ) -> None:
        self.machine = machine
        self.top_k = top_k
        self.memory_budget_bytes = memory_budget_bytes
        self.schemes = list(schemes) if schemes is not None else None
        self.replication_factors = (
            list(replication_factors) if replication_factors is not None else None
        )
        self.stationary_options = tuple(stationary_options)
        self.itemsize = itemsize
        self.dtype = dtype
        self.bucket_ratio = bucket_ratio
        self.config = config or ExecutionConfig(simulate_only=True)
        # Machine and options are fixed for the factory's lifetime; digests
        # are memoized so routing stays a dict lookup per request.
        self._machine_digest = machine_fingerprint(machine)
        self._options_digests: Dict[int, str] = {}

    @property
    def machine_digest(self) -> str:
        """The memoized :func:`machine_fingerprint` of this factory's machine."""
        return self._machine_digest

    def options_digest(self, top_k: int) -> str:
        """The options fingerprint folded into every key for ``top_k``.

        Must hash exactly what the service hashes — any divergence here
        silently routes every request to a cold cache.
        """
        digest = self._options_digests.get(top_k)
        if digest is None:
            scheme_names = (
                tuple(s.name for s in self.schemes) if self.schemes is not None else "default"
            )
            digest = options_fingerprint(
                top_k=top_k,
                schemes=scheme_names,
                replication_factors=(
                    tuple(self.replication_factors)
                    if self.replication_factors is not None else "all"
                ),
                stationary=self.stationary_options,
                itemsize=self.itemsize,
                # The full frozen config: any field (prefetch depth, async
                # limits, tile caching, ...) can change simulated times and
                # therefore the winning plan, so none may alias in the cache.
                config=repr(self.config),
            )
            self._options_digests[top_k] = digest
        return digest

    def signature_for(self, workload: Workload,
                      top_k: Optional[int] = None) -> ProblemSignature:
        """Canonical signature a request maps to (its cache identity).

        Structured workloads bucket their live geometry (density, expert
        capacity and routed tokens) alongside the envelope, so near-identical
        sparse requests share a plan computed for their bucket's corner.
        """
        effective_k = self.top_k if top_k is None else top_k
        m, n, k, structure = bucket_workload(workload, self.bucket_ratio)
        return ProblemSignature(
            m=m,
            n=n,
            k=k,
            dtype=self.dtype,
            machine=self._machine_digest,
            memory_budget=self.memory_budget_bytes,
            options=self.options_digest(effective_k),
            structure=structure,
        )

    def graph_signature_for(self, graph,
                            lattice_size: Optional[int] = None) -> GraphSignature:
        """Canonical signature of one joint graph-planning request.

        Each op buckets exactly like a single-op request (with the lattice
        size folded into the per-op options digest, so plans computed under
        different lattice widths never alias); the edge structure rides
        alongside.  Structurally identical graphs share a cache entry
        regardless of their display names.
        """
        # Lazy import: repro.planner.graph drives the planner stack that
        # imports this module — the same intentional cycle refresh.py has.
        from repro.planner.graph import DEFAULT_LATTICE_SIZE, op_workload

        effective = DEFAULT_LATTICE_SIZE if lattice_size is None else lattice_size
        return GraphSignature(
            ops=tuple(self.signature_for(op_workload(op), top_k=effective)
                      for op in graph.ops),
            edges=tuple((edge.src, edge.dst, edge.operand)
                        for edge in graph.edges),
            name=graph.name,
        )
