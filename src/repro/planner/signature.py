"""Canonical problem signatures: the planner's cache key.

A production planning service sees millions of near-identical requests — the
same transformer layer at slightly different batch sizes, the same machine
fleet, the same memory budget.  Two ingredients turn those into cache hits:

* a **machine fingerprint** — a stable digest of everything the cost model
  reads from a :class:`~repro.topology.machines.MachineSpec` (device count,
  peaks, bandwidths, the full link matrix), so plans never leak between
  machines that merely share a name;
* **geometric shape bucketing** — each of m/n/k is snapped to its geometric
  bucket's upper corner, so requests within ~±10% of each other share a
  bucket (and therefore a plan, computed for the corner so it stays
  memory-feasible for every member), while the paper's batch sweep
  (1024/2048/4096/8192 — factors of 2 apart) still lands in distinct buckets
  for any ratio below 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bench.workloads import Workload
from repro.core.structure import DENSE, WorkloadStructure, geometric_bucket
from repro.topology.machines import MachineSpec

#: Requests whose dimensions differ by less than ~±11% share a bucket.
DEFAULT_BUCKET_RATIO = 1.25


def bucket_dim(value: int, ratio: float = DEFAULT_BUCKET_RATIO) -> int:
    """Snap a dimension to its geometric bucket's *upper corner*.

    Bucket ``i`` covers ``(ratio**(i-1/2), ratio**(i+1/2)]``; the returned
    label is ``ceil(ratio**(i+1/2))`` — the largest dimension any member of
    the bucket can have.  Planning for the corner (rather than, say, the
    bucket's midpoint) keeps the served plan memory-feasible for *every*
    request that maps to the bucket, since tile footprints grow
    monotonically with the dimensions.

    ``ratio <= 1`` (or ``None``) disables bucketing and returns the exact
    dimension, which makes the signature exact-match only.

    Delegates to :func:`repro.core.structure.geometric_bucket` — the single
    rounding rule shared with live-count bucketing (block densities, expert
    capacities, routed-token totals), so envelope and structure corners can
    never drift apart.
    """
    return geometric_bucket(value, ratio)


def bucket_workload(workload: Workload,
                    ratio: Optional[float] = DEFAULT_BUCKET_RATIO
                    ) -> Tuple[int, int, int, WorkloadStructure]:
    """Bucket a request's envelope *and* structure to their corner.

    Dense requests bucket each dimension independently (the historical
    behaviour).  Structured requests additionally snap their live geometry —
    block-sparse live-block counts, MoE capacity and routed-token totals —
    to geometric upper corners, and the structure may adjust the envelope
    (an MoE batch keeps ``m`` expert-aligned by bucketing the capacity).
    The corner always dominates every member of its bucket, so the corner
    plan's memory-feasibility check covers the whole bucket.
    """
    m = bucket_dim(workload.m, ratio)
    n = bucket_dim(workload.n, ratio)
    k = bucket_dim(workload.k, ratio)
    structure = workload.structure
    if structure.is_dense:
        return m, n, k, DENSE
    return structure.bucket_envelope(m, n, k, ratio)


def machine_fingerprint(machine: MachineSpec) -> str:
    """Stable digest of every MachineSpec field the cost model consumes."""
    parts = [
        machine.name,
        machine.num_devices,
        machine.flops_peak,
        machine.memory_bandwidth,
        machine.memory_capacity,
        machine.device_link_bandwidth,
        machine.accumulate_efficiency,
        machine.accumulate_compute_interference,
        machine.gemm_efficiency,
        machine.kernel_launch_overhead,
    ]
    topology = machine.topology
    for src in range(topology.num_devices):
        for dst in range(topology.num_devices):
            link = topology.link(src, dst)
            parts.append(link.bandwidth)
            parts.append(link.latency)
    blob = "|".join(repr(part) for part in parts)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


def options_fingerprint(**options: object) -> str:
    """Digest of search options (top_k, schemes, factors, ...) folded into keys.

    Plans computed under different search spaces must never serve each other,
    so the service hashes its effective options into the signature.
    """
    blob = "|".join(f"{key}={options[key]!r}" for key in sorted(options))
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class ProblemSignature:
    """Canonical identity of one planning request (hashable, JSON-keyable)."""

    #: Bucketed problem dimensions (``C[m,n] = A[m,k] @ B[k,n]``).
    m: int
    n: int
    k: int
    #: Element type of the operands (affects footprints and transfer sizes).
    dtype: str
    #: Output of :func:`machine_fingerprint`.
    machine: str
    #: Per-device memory budget in bytes; ``None`` means the machine's capacity.
    memory_budget: Optional[float] = None
    #: Output of :func:`options_fingerprint` for the search options in force.
    options: str = ""
    #: The bucket-corner workload structure (dense, block-sparse, MoE-ragged).
    structure: WorkloadStructure = field(default=DENSE)

    @classmethod
    def from_request(
        cls,
        machine: MachineSpec,
        workload: Workload,
        *,
        dtype: str = "float32",
        memory_budget_bytes: Optional[float] = None,
        bucket_ratio: float = DEFAULT_BUCKET_RATIO,
        options: str = "",
    ) -> "ProblemSignature":
        """Build the signature for one (machine, workload) planning request."""
        m, n, k, structure = bucket_workload(workload, bucket_ratio)
        return cls(
            m=m,
            n=n,
            k=k,
            dtype=str(dtype),
            machine=machine_fingerprint(machine),
            memory_budget=memory_budget_bytes,
            options=options,
            structure=structure,
        )

    def key(self) -> str:
        """Stable string form used by the LRU cache and the JSON plan store.

        Dense keys keep their historical format (so existing plan stores
        stay valid); structured signatures append the structure token.
        """
        budget = "cap" if self.memory_budget is None else f"{float(self.memory_budget):.6g}"
        base = f"{self.m}x{self.n}x{self.k}|{self.dtype}|{self.machine}|{budget}|{self.options}"
        if self.structure.is_dense:
            return base
        return f"{base}|{self.structure.signature_token()}"

    def representative_workload(self, name: str = "bucket") -> Workload:
        """The bucket's canonical workload (what a fresh plan is computed for)."""
        return Workload(name=f"{name}_{self.m}x{self.n}x{self.k}",
                        m=self.m, n=self.n, k=self.k, structure=self.structure)


@dataclass(frozen=True)
class GraphSignature:
    """Canonical identity of one joint graph-planning request.

    An ordered tuple of per-op :class:`ProblemSignature` (each bucketed and
    stamped with the machine/options fingerprints exactly like a single-op
    request) plus the graph's edge structure.  Bucketing is per-dimension and
    deterministic, so dimensions that matched raw (the producer-output /
    consumer-operand constraint :class:`repro.core.graph.OpGraph` validates)
    still match at the bucket corner — the representative graph revalidates.

    The graph's display name is deliberately **excluded** from :meth:`key`:
    two structurally identical chains share one cached joint plan regardless
    of what the caller named them.
    """

    #: Per-op signatures, indexed like the graph's ops.
    ops: Tuple[ProblemSignature, ...]
    #: Edge structure as ``(src, dst, operand)`` triples.
    edges: Tuple[Tuple[int, int, str], ...]
    #: Display name of the graph (telemetry only; not part of the key).
    name: str = "graph"

    def key(self) -> str:
        """Stable cache-store key: the op keys joined with the edge tokens."""
        op_part = ";".join(sig.key() for sig in self.ops)
        edge_part = ",".join(f"{src}>{dst}:{operand}"
                             for src, dst, operand in self.edges)
        return f"graph|{op_part}|{edge_part}"

    def representative_graph(self):
        """The bucket-corner :class:`~repro.core.graph.OpGraph` to plan for.

        Rebuilds the graph from the bucketed per-op dimensions with the
        original edges; construction re-runs the full shape/acyclicity
        validation, which the deterministic bucketing guarantees still holds.
        """
        from repro.core.graph import GraphEdge, GraphOp, OpGraph

        ops = tuple(
            GraphOp(name=f"op{i}_{sig.m}x{sig.n}x{sig.k}",
                    m=sig.m, n=sig.n, k=sig.k)
            for i, sig in enumerate(self.ops)
        )
        edges = tuple(GraphEdge(src=src, dst=dst, operand=operand)
                      for src, dst, operand in self.edges)
        return OpGraph(name=self.name, ops=ops, edges=edges)
