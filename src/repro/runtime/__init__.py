"""A simulated PGAS / SHMEM-style runtime with one-sided communication.

The paper implements its algorithm on top of a C++ PGAS framework (a fork of
Distributed Ranges) whose tiles live in *symmetric memory* so that any device
can read (``get``), write (``put``), or atomically accumulate into any other
device's tiles without the target's participation.  This package provides the
Python equivalent:

* :class:`~repro.runtime.memory.SymmetricHeap` — per-rank symmetric
  allocations backed by NumPy arrays.
* :class:`~repro.runtime.memory.MemoryPool` — the paper's §4.2 optimisation:
  one up-front allocation, sub-allocated from the host side to avoid repeated
  device allocations.
* :class:`~repro.runtime.future.Future` — handles returned by asynchronous
  one-sided operations (``get_tile_async``-style).
* :class:`~repro.runtime.runtime.Runtime` — the facade that owns the ranks,
  the machine model, the traffic counters, and the one-sided primitives.
* Sequential and threaded execution backends for SPMD regions.

Data movement is *real* (NumPy copies between per-rank heaps), so algorithm
correctness is genuinely exercised; time is *modelled* (charged against the
machine's link bandwidths and FLOP peaks) so that the benchmark harness can
report percent-of-peak numbers comparable in shape to the paper's figures.
"""

from repro.runtime.future import Future, CompletedFuture
from repro.runtime.memory import MemoryPool, SymmetricHeap, SymmetricHandle
from repro.runtime.clock import DeviceTimeline, SimClock
from repro.runtime.traffic import TrafficCounter, TransferRecord
from repro.runtime.backend import Backend, SequentialBackend, ThreadedBackend
from repro.runtime.runtime import Runtime, RankContext

__all__ = [
    "Future",
    "CompletedFuture",
    "MemoryPool",
    "SymmetricHeap",
    "SymmetricHandle",
    "DeviceTimeline",
    "SimClock",
    "TrafficCounter",
    "TransferRecord",
    "Backend",
    "SequentialBackend",
    "ThreadedBackend",
    "Runtime",
    "RankContext",
]
