"""Execution backends for SPMD regions.

The universal algorithm is an SPMD program: every rank independently
generates and executes its own list of local matrix multiplies.  Two backends
run such regions:

* :class:`SequentialBackend` executes ranks one after another in rank order.
  This is deterministic and fast, and is correct for the algorithm because
  the one-sided operations it performs are order-insensitive (gets read
  immutable inputs; accumulates are commutative additions).
* :class:`ThreadedBackend` runs each rank on its own thread, providing real
  concurrency (and a genuine ``barrier``), which exercises the atomicity of
  remote accumulates and the thread-safety of the memory pool and traffic
  counters.
"""

from __future__ import annotations

import abc
import threading
from typing import Any, Callable, List, Optional, Sequence


class Backend(abc.ABC):
    """Strategy object deciding how per-rank functions are executed."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(self, functions: Sequence[Callable[[], Any]]) -> List[Any]:
        """Execute one zero-argument callable per rank and collect results."""

    @abc.abstractmethod
    def make_barrier(self, num_ranks: int) -> Callable[[], None]:
        """Return a barrier callable usable from inside SPMD functions."""


class SequentialBackend(Backend):
    """Run each rank's function to completion, in rank order.

    A barrier in this backend is a no-op: since ranks never interleave, all
    side effects of rank *r* are visible to rank *r+1* anyway.  SPMD code that
    relies on two-way synchronisation (rank 0 waiting for data rank 1 has not
    produced yet) must use the threaded backend; none of the algorithms in
    this library require that.
    """

    name = "sequential"

    def run(self, functions: Sequence[Callable[[], Any]]) -> List[Any]:
        return [function() for function in functions]

    def make_barrier(self, num_ranks: int) -> Callable[[], None]:
        def barrier() -> None:
            return None

        return barrier


class ThreadedBackend(Backend):
    """Run each rank's function on a dedicated thread.

    Exceptions raised by any rank are re-raised in the caller after all
    threads have been joined, with the failing rank identified.
    """

    name = "threaded"

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout

    def run(self, functions: Sequence[Callable[[], Any]]) -> List[Any]:
        results: List[Any] = [None] * len(functions)
        errors: List[Optional[BaseException]] = [None] * len(functions)

        def runner(index: int, function: Callable[[], Any]) -> None:
            try:
                results[index] = function()
            except BaseException as exc:  # noqa: BLE001 - propagated below
                errors[index] = exc

        threads = [
            threading.Thread(target=runner, args=(i, fn), name=f"rank-{i}", daemon=True)
            for i, fn in enumerate(functions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.timeout)
            if thread.is_alive():
                raise TimeoutError(f"SPMD thread {thread.name} did not finish")
        for rank, error in enumerate(errors):
            if error is not None:
                raise RuntimeError(f"rank {rank} failed in SPMD region") from error
        return results

    def make_barrier(self, num_ranks: int) -> Callable[[], None]:
        barrier = threading.Barrier(num_ranks)

        def wait() -> None:
            barrier.wait()

        return wait


def make_backend(name: str, **kwargs: Any) -> Backend:
    """Construct a backend by name (``"sequential"`` or ``"threaded"``)."""
    key = name.lower()
    if key == "sequential":
        return SequentialBackend()
    if key == "threaded":
        return ThreadedBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r}; expected 'sequential' or 'threaded'")
