"""Simulated time: per-resource timelines used to model overlap.

Each device owns a small set of engines, mirroring the execution resources
the paper's implementation uses:

* a **compute** engine (the GPU's GEMM pipeline),
* a **copy** engine (used by ``get_tile``/``get_tile_async`` transfers),
* an **accumulate** engine (the hand-written atomic accumulate kernel, which
  on real hardware contends with compute — modelled via the machine's
  ``accumulate_compute_interference`` factor at a higher level),
* an **ingress** and an **egress** engine modelling the device's aggregate
  unidirectional link bandwidth (the per-device number the paper's Table 2
  quotes): all data flowing into or out of a device shares this capacity, so
  many-to-one accumulate fan-in or one-to-many tile fan-out serialises here
  even though each pair-wise link is free.

A timeline is a single-server queue: work items are serialised on the engine
but may overlap with work on other engines, which is exactly the overlap
structure the direct-execution engine and IR schedules exploit.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

COMPUTE = "compute"
COPY = "copy"
ACCUMULATE = "accumulate"
INGRESS = "ingress"
EGRESS = "egress"

ENGINES = (COMPUTE, COPY, ACCUMULATE, INGRESS, EGRESS)


@dataclass
class TimelineEntry:
    """One scheduled occupancy interval on an engine."""

    start: float
    end: float
    label: str = ""


def _entry_start(entry: TimelineEntry) -> float:
    return entry.start


class DeviceTimeline:
    """Occupancy bookkeeping for one device's engines.

    Two reservation disciplines are offered:

    * :meth:`reserve` — FIFO/stream semantics: work starts no earlier than the
      engine's previous completion.  Used for per-rank execution streams
      (compute, the rank's own copy/accumulate queues), where program order is
      the real ordering constraint.
    * :meth:`reserve_slot` — capacity semantics: the work is placed into the
      earliest idle *gap* that fits, at or after its ready time.  Used for the
      shared ingress/egress bandwidth of a device, which serves whichever
      transfer has data available rather than the order requests were posted
      by the simulator's loop.
    """

    def __init__(self, device: int) -> None:
        self.device = device
        self._available: Dict[str, float] = {name: 0.0 for name in ENGINES}
        self._entries: Dict[str, List[TimelineEntry]] = {name: [] for name in ENGINES}

    def available_at(self, engine: str) -> float:
        """Earliest time the engine can start new work (FIFO discipline)."""
        return self._available[engine]

    def reserve(
        self, engine: str, duration: float, earliest_start: float = 0.0, label: str = ""
    ) -> Tuple[float, float]:
        """Schedule ``duration`` seconds of work on ``engine`` (FIFO discipline).

        The work begins no earlier than ``earliest_start`` (its dependencies)
        and no earlier than the engine's previous completion.  Returns the
        ``(start, end)`` interval and advances the engine.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(earliest_start, self._available[engine])
        end = start + duration
        self._available[engine] = end
        # FIFO starts are monotone (start >= available >= every prior end),
        # so a plain append preserves the sorted-by-start invariant that
        # find_slot relies on; the guard covers mixed-discipline engines
        # where an out-of-order slot insert could precede this start.
        entries = self._entries[engine]
        entry = TimelineEntry(start, end, label)
        if entries and start < entries[-1].start:
            insort(entries, entry, key=_entry_start)
        else:
            entries.append(entry)
        return start, end

    def find_slot(self, engine: str, duration: float, earliest_start: float = 0.0) -> float:
        """Earliest start >= ``earliest_start`` with an idle gap of ``duration``."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        cursor = earliest_start
        # _entries is kept sorted by start at insertion time, so the scan
        # needs no per-call sort (this used to re-sort on every reservation).
        for entry in self._entries[engine]:
            if entry.start - cursor >= duration:
                break
            cursor = max(cursor, entry.end)
        return cursor

    def reserve_slot(
        self, engine: str, duration: float, earliest_start: float = 0.0, label: str = ""
    ) -> Tuple[float, float]:
        """Place work into the earliest idle gap (capacity discipline)."""
        start = self.find_slot(engine, duration, earliest_start)
        end = start + duration
        insort(self._entries[engine], TimelineEntry(start, end, label), key=_entry_start)
        self._available[engine] = max(self._available[engine], end)
        return start, end

    def entries(self, engine: str) -> List[TimelineEntry]:
        return list(self._entries[engine])

    def busy_time(self, engine: str) -> float:
        """Total occupied time on the engine (no gaps counted)."""
        return sum(entry.end - entry.start for entry in self._entries[engine])

    def finish_time(self) -> float:
        """Completion time of the last work item across all engines."""
        return max(self._available.values())

    def reset(self) -> None:
        for name in ENGINES:
            self._available[name] = 0.0
            self._entries[name] = []


class SimClock:
    """Collection of device timelines for a whole machine plus link usage."""

    def __init__(self, num_devices: int) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.num_devices = num_devices
        self.devices = [DeviceTimeline(d) for d in range(num_devices)]
        # Directed link occupancy: serialising transfers that share a link
        # models link contention between prefetches.
        self._link_available: Dict[Tuple[int, int], float] = {}

    def device(self, index: int) -> DeviceTimeline:
        return self.devices[index]

    def reserve_link(
        self, src: int, dst: int, duration: float, earliest_start: float = 0.0
    ) -> Tuple[float, float]:
        """Occupy the directed link ``src -> dst`` for ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        key = (src, dst)
        start = max(earliest_start, self._link_available.get(key, 0.0))
        end = start + duration
        self._link_available[key] = end
        return start, end

    def makespan(self) -> float:
        """Finish time of the slowest device — the modelled wall-clock time."""
        return max(device.finish_time() for device in self.devices)

    def reset(self) -> None:
        for device in self.devices:
            device.reset()
        self._link_available.clear()
