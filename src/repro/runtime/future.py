"""Futures for asynchronous one-sided operations.

``get_tile_async`` in the paper returns a future that is waited on one or two
iterations later (prefetch depth 2).  In this reproduction the data movement
itself is performed eagerly (it is a NumPy copy), but the future records the
*modelled* completion time and the number of bytes moved so that execution
engines can reason about overlap, and so that tests can assert that prefetch
actually happens before the consuming iteration.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional


class Future:
    """A single-assignment result container with an optional completion callback."""

    def __init__(self, description: str = "") -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.description = description
        #: Modelled completion time (seconds on the simulated clock); set by
        #: the issuing engine, not by the runtime.
        self.sim_ready_time: float = 0.0
        #: Number of bytes whose transfer this future represents.
        self.nbytes: int = 0

    # ------------------------------------------------------------------ #
    def set_result(self, value: Any) -> None:
        """Fulfil the future.  May only be called once."""
        if self._event.is_set():
            raise RuntimeError("future already completed")
        self._value = value
        self._event.set()
        for callback in self._callbacks:
            callback(self)

    def set_exception(self, error: BaseException) -> None:
        """Fail the future.  ``wait()`` re-raises the stored exception."""
        if self._event.is_set():
            raise RuntimeError("future already completed")
        self._error = error
        self._event.set()
        for callback in self._callbacks:
            callback(self)

    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the result is available and return it."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"future {self.description!r} did not complete")
        if self._error is not None:
            raise self._error
        return self._value

    # ``result`` alias mirrors concurrent.futures naming.
    result = wait

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        if self.done():
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"Future({self.description!r}, {state})"


class CompletedFuture(Future):
    """A future that is already fulfilled at construction time.

    Used for local tiles: ``get_tile_async`` on a tile the caller already owns
    returns a view immediately, with zero modelled transfer time.
    """

    def __init__(self, value: Any, description: str = "local") -> None:
        super().__init__(description)
        self.set_result(value)
