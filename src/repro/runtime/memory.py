"""Symmetric heaps and the memory pool.

A *symmetric allocation* is an array that exists, with identical shape and
dtype, on every rank.  One-sided operations identify a remote buffer by its
symmetric handle plus a target rank, exactly like an (I)SHMEM symmetric-heap
pointer.  Tiles of distributed matrices are symmetric allocations sized to
each rank's local tile.

The :class:`MemoryPool` reproduces the paper's fourth direct-execution
optimisation: GPU allocations are expensive and can synchronise the device,
so the implementation grabs one large slab up front and sub-allocates
temporary tile buffers from the host side.  Here the pool recycles NumPy
buffers keyed by (shape, dtype), which both exercises the same code structure
and genuinely reduces allocator pressure for large benchmark runs.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.util.validation import check_non_negative_int


@dataclass(frozen=True, slots=True)
class SymmetricHandle:
    """Opaque identifier of a symmetric allocation.

    The same handle is valid on every rank; pairing it with a rank selects a
    concrete buffer.  Shape and dtype are carried for validation and for
    modelling transfer sizes without touching the data.
    """

    alloc_id: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    label: str = ""

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


class SymmetricHeap:
    """Per-rank storage for symmetric allocations.

    The heap of rank *r* maps allocation ids to NumPy arrays.  A
    :class:`Runtime` owns one heap per rank and guarantees that every
    ``allocate`` call creates the allocation in all heaps ("symmetric"
    semantics).  Per-allocation locks make remote accumulates atomic under the
    threaded backend.
    """

    def __init__(self, rank: int) -> None:
        self.rank = check_non_negative_int(rank, "rank")
        self._arrays: Dict[int, np.ndarray] = {}
        self._locks: Dict[int, threading.Lock] = {}

    def register(self, handle: SymmetricHandle, array: np.ndarray) -> None:
        if handle.alloc_id in self._arrays:
            raise ValueError(f"allocation {handle.alloc_id} already exists on rank {self.rank}")
        if tuple(array.shape) != tuple(handle.shape):
            raise ValueError(
                f"array shape {array.shape} does not match handle shape {handle.shape}"
            )
        self._arrays[handle.alloc_id] = array
        self._locks[handle.alloc_id] = threading.Lock()

    def deregister(self, handle: SymmetricHandle) -> None:
        self._arrays.pop(handle.alloc_id, None)
        self._locks.pop(handle.alloc_id, None)

    def array(self, handle: SymmetricHandle) -> np.ndarray:
        try:
            return self._arrays[handle.alloc_id]
        except KeyError:
            raise KeyError(
                f"allocation {handle.alloc_id} ({handle.label!r}) not present on rank {self.rank}"
            ) from None

    def lock(self, handle: SymmetricHandle) -> threading.Lock:
        return self._locks[handle.alloc_id]

    def __contains__(self, handle: SymmetricHandle) -> bool:
        return handle.alloc_id in self._arrays

    def __len__(self) -> int:
        return len(self._arrays)

    @property
    def allocated_bytes(self) -> int:
        return sum(arr.nbytes for arr in self._arrays.values())


class _HandleCounter:
    """Process-wide monotonically increasing allocation-id source."""

    _counter = itertools.count(1)
    _lock = threading.Lock()

    @classmethod
    def next_id(cls) -> int:
        with cls._lock:
            return next(cls._counter)


def make_handle(shape: Tuple[int, ...], dtype, label: str = "") -> SymmetricHandle:
    """Create a fresh symmetric handle (does not allocate storage)."""
    return SymmetricHandle(
        alloc_id=_HandleCounter.next_id(),
        shape=tuple(int(s) for s in shape),
        dtype=np.dtype(dtype),
        label=label,
    )


@dataclass
class _PoolStats:
    allocations: int = 0
    reuses: int = 0
    releases: int = 0
    outstanding: int = 0
    peak_outstanding: int = 0
    bytes_allocated: int = 0


class MemoryPool:
    """Reusable buffer pool for temporary tile copies.

    Buffers are keyed by ``(shape, dtype)``.  ``acquire`` hands out a zeroed
    or uninitialised buffer; ``release`` returns it to the free list.  A cap
    on retained buffers per key avoids unbounded growth during large sweeps.
    """

    def __init__(self, max_buffers_per_key: int = 16, zero_on_acquire: bool = False) -> None:
        if max_buffers_per_key < 0:
            raise ValueError("max_buffers_per_key must be non-negative")
        self._free: Dict[Tuple[Tuple[int, ...], np.dtype], List[np.ndarray]] = {}
        self._max_per_key = max_buffers_per_key
        self._zero = zero_on_acquire
        self._lock = threading.Lock()
        self.stats = _PoolStats()

    def acquire(self, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Obtain a buffer of the requested shape/dtype, reusing one if possible."""
        key = (tuple(int(s) for s in shape), np.dtype(dtype))
        with self._lock:
            free_list = self._free.get(key)
            if free_list:
                buffer = free_list.pop()
                self.stats.reuses += 1
            else:
                buffer = np.empty(key[0], dtype=key[1])
                self.stats.allocations += 1
                self.stats.bytes_allocated += buffer.nbytes
            self.stats.outstanding += 1
            self.stats.peak_outstanding = max(
                self.stats.peak_outstanding, self.stats.outstanding
            )
        if self._zero:
            buffer.fill(0)
        return buffer

    def release(self, buffer: np.ndarray) -> None:
        """Return a buffer to the pool."""
        key = (tuple(buffer.shape), buffer.dtype)
        with self._lock:
            self.stats.releases += 1
            self.stats.outstanding = max(0, self.stats.outstanding - 1)
            free_list = self._free.setdefault(key, [])
            if len(free_list) < self._max_per_key:
                free_list.append(buffer)

    def clear(self) -> None:
        """Drop all retained buffers."""
        with self._lock:
            self._free.clear()

    @property
    def retained_bytes(self) -> int:
        with self._lock:
            return sum(
                buf.nbytes for buffers in self._free.values() for buf in buffers
            )
