"""The PGAS runtime facade.

A :class:`Runtime` owns

* one :class:`~repro.runtime.memory.SymmetricHeap` per rank,
* one :class:`~repro.runtime.memory.MemoryPool` per rank,
* the machine model (:class:`~repro.topology.machines.MachineSpec`) whose
  topology prices every transfer,
* a :class:`~repro.runtime.traffic.TrafficCounter`, and
* an execution :class:`~repro.runtime.backend.Backend` for SPMD regions.

One-sided operations (`get`, `put`, `accumulate`) address a buffer by
``(handle, target_rank)`` and never require the target rank's participation,
matching the SHMEM/RDMA semantics the paper's implementation relies on.
Data movement is performed eagerly with NumPy; the modelled transfer time is
available from :meth:`Runtime.transfer_time` for the execution engines and
cost models to consume.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.runtime.backend import Backend, SequentialBackend, make_backend
from repro.runtime.clock import SimClock
from repro.runtime.future import CompletedFuture, Future
from repro.runtime.memory import MemoryPool, SymmetricHandle, SymmetricHeap, make_handle
from repro.runtime.traffic import ACCUMULATE, GET, PUT, TrafficCounter, TransferRecord
from repro.topology.machines import MachineSpec, uniform_system
from repro.util.indexing import Rect
from repro.util.validation import CommunicationError, check_in_range


class RankContext:
    """Per-rank view of the runtime handed to SPMD functions.

    All one-sided calls made through a context are attributed to its rank in
    the traffic counters, and local allocations / pool buffers come from that
    rank's resources.
    """

    def __init__(self, runtime: "Runtime", rank: int, barrier: Callable[[], None]) -> None:
        self.runtime = runtime
        self.rank = rank
        self._barrier = barrier

    # -- delegation helpers ------------------------------------------------
    def barrier(self) -> None:
        self._barrier()

    def get(self, handle: SymmetricHandle, target_rank: int, rect: Optional[Rect] = None,
            out: Optional[np.ndarray] = None) -> np.ndarray:
        return self.runtime.get(handle, target_rank, initiator=self.rank, rect=rect, out=out)

    def get_async(self, handle: SymmetricHandle, target_rank: int,
                  rect: Optional[Rect] = None) -> Future:
        return self.runtime.get_async(handle, target_rank, initiator=self.rank, rect=rect)

    def put(self, handle: SymmetricHandle, target_rank: int, data: np.ndarray,
            rect: Optional[Rect] = None) -> None:
        self.runtime.put(handle, target_rank, data, initiator=self.rank, rect=rect)

    def accumulate(self, handle: SymmetricHandle, target_rank: int, data: np.ndarray,
                   rect: Optional[Rect] = None) -> None:
        self.runtime.accumulate(handle, target_rank, data, initiator=self.rank, rect=rect)

    def local_view(self, handle: SymmetricHandle, rect: Optional[Rect] = None) -> np.ndarray:
        return self.runtime.local_view(handle, self.rank, rect=rect)

    @property
    def pool(self) -> MemoryPool:
        return self.runtime.pool(self.rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankContext(rank={self.rank})"


class Runtime:
    """Hosts ``num_ranks`` simulated processes with one-sided communication."""

    def __init__(
        self,
        machine: Optional[MachineSpec] = None,
        num_ranks: Optional[int] = None,
        backend: Union[str, Backend] = "sequential",
        keep_traffic_records: bool = True,
        pool_buffers_per_key: int = 16,
    ) -> None:
        if machine is None:
            if num_ranks is None:
                raise ValueError("either a machine spec or num_ranks is required")
            machine = uniform_system(num_ranks)
        if num_ranks is not None and num_ranks != machine.num_devices:
            machine = machine.with_devices(num_ranks)
        self.machine = machine
        self.num_ranks = machine.num_devices
        self.topology = machine.topology
        self.backend = backend if isinstance(backend, Backend) else make_backend(backend)
        self.traffic = TrafficCounter(keep_records=keep_traffic_records)
        self.clock = SimClock(self.num_ranks)
        self._heaps = [SymmetricHeap(rank) for rank in range(self.num_ranks)]
        self._pools = [MemoryPool(pool_buffers_per_key) for _ in range(self.num_ranks)]
        self._alloc_lock = threading.Lock()
        self._handles: Dict[int, SymmetricHandle] = {}

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #
    def allocate(self, shape: Sequence[int], dtype=np.float32, label: str = "",
                 fill: Optional[float] = 0.0) -> SymmetricHandle:
        """Create a symmetric allocation present on every rank."""
        handle = make_handle(tuple(shape), dtype, label)
        with self._alloc_lock:
            for heap in self._heaps:
                array = np.empty(handle.shape, dtype=handle.dtype)
                if fill is not None:
                    array.fill(fill)
                heap.register(handle, array)
            self._handles[handle.alloc_id] = handle
        return handle

    def allocate_on(self, ranks: Sequence[int], shape: Sequence[int], dtype=np.float32,
                    label: str = "", fill: Optional[float] = 0.0) -> SymmetricHandle:
        """Create an allocation present only on the given ranks.

        Distributed-matrix tiles use this: the tile buffer physically exists
        on its owner rank(s) (one per replica) while any rank may address it
        remotely through one-sided operations.
        """
        handle = make_handle(tuple(shape), dtype, label)
        unique_ranks = sorted(set(int(r) for r in ranks))
        with self._alloc_lock:
            for rank in unique_ranks:
                check_in_range(rank, 0, self.num_ranks, "rank")
                array = np.empty(handle.shape, dtype=handle.dtype)
                if fill is not None:
                    array.fill(fill)
                self._heaps[rank].register(handle, array)
            self._handles[handle.alloc_id] = handle
        return handle

    def free(self, handle: SymmetricHandle) -> None:
        """Release an allocation on every rank that holds it."""
        with self._alloc_lock:
            for heap in self._heaps:
                heap.deregister(handle)
            self._handles.pop(handle.alloc_id, None)

    def holds(self, handle: SymmetricHandle, rank: int) -> bool:
        """True if ``rank`` has local storage for ``handle``."""
        check_in_range(rank, 0, self.num_ranks, "rank")
        return handle in self._heaps[rank]

    def pool(self, rank: int) -> MemoryPool:
        check_in_range(rank, 0, self.num_ranks, "rank")
        return self._pools[rank]

    # ------------------------------------------------------------------ #
    # local access
    # ------------------------------------------------------------------ #
    def local_view(self, handle: SymmetricHandle, rank: int,
                   rect: Optional[Rect] = None) -> np.ndarray:
        """Return a view (no copy) of a locally held buffer."""
        check_in_range(rank, 0, self.num_ranks, "rank")
        array = self._heaps[rank].array(handle)
        if rect is None:
            return array
        self._check_rect(handle, rect)
        return array[rect.as_slices()]

    # ------------------------------------------------------------------ #
    # one-sided operations
    # ------------------------------------------------------------------ #
    def _check_rect(self, handle: SymmetricHandle, rect: Rect) -> None:
        if len(handle.shape) != 2:
            raise CommunicationError(
                f"rect access requires a 2-D allocation, got shape {handle.shape}"
            )
        full = Rect.full(handle.shape)
        if not full.contains(rect):
            raise CommunicationError(
                f"rect {rect} exceeds allocation bounds {handle.shape}"
            )

    def _resolve(self, handle: SymmetricHandle, target_rank: int,
                 rect: Optional[Rect]) -> np.ndarray:
        check_in_range(target_rank, 0, self.num_ranks, "target_rank")
        array = self._heaps[target_rank].array(handle)
        if rect is None:
            return array
        self._check_rect(handle, rect)
        return array[rect.as_slices()]

    def get(self, handle: SymmetricHandle, target_rank: int, *, initiator: int,
            rect: Optional[Rect] = None, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One-sided read of (a sub-rectangle of) a remote buffer into a local copy."""
        source = self._resolve(handle, target_rank, rect)
        if out is None:
            result = source.copy()
        else:
            if out.shape != source.shape:
                raise CommunicationError(
                    f"output buffer shape {out.shape} does not match source {source.shape}"
                )
            np.copyto(out, source)
            result = out
        self.traffic.record(TransferRecord(GET, initiator, target_rank, source.nbytes,
                                           handle.label))
        return result

    def get_async(self, handle: SymmetricHandle, target_rank: int, *, initiator: int,
                  rect: Optional[Rect] = None) -> Future:
        """Asynchronous one-sided read returning a :class:`Future`.

        If the target is the initiator itself a completed future wrapping a
        *view* is returned with zero modelled cost, mirroring the paper's
        ``tile()`` vs ``get_tile()`` distinction.
        """
        if target_rank == initiator:
            view = self.local_view(handle, initiator, rect=rect)
            future = CompletedFuture(view, description=f"local:{handle.label}")
            future.nbytes = 0
            return future
        data = self.get(handle, target_rank, initiator=initiator, rect=rect)
        future = CompletedFuture(data, description=f"get:{handle.label}@{target_rank}")
        future.nbytes = data.nbytes
        return future

    def put(self, handle: SymmetricHandle, target_rank: int, data: np.ndarray, *,
            initiator: int, rect: Optional[Rect] = None) -> None:
        """One-sided write of a local array into (a sub-rectangle of) a remote buffer."""
        destination = self._resolve(handle, target_rank, rect)
        data = np.asarray(data, dtype=handle.dtype)
        if destination.shape != data.shape:
            raise CommunicationError(
                f"put shape mismatch: destination {destination.shape}, data {data.shape}"
            )
        lock = self._heaps[target_rank].lock(handle)
        with lock:
            np.copyto(destination, data)
        self.traffic.record(TransferRecord(PUT, initiator, target_rank, data.nbytes,
                                           handle.label))

    def accumulate(self, handle: SymmetricHandle, target_rank: int, data: np.ndarray, *,
                   initiator: int, rect: Optional[Rect] = None) -> None:
        """One-sided atomic accumulate (+=) into a remote buffer.

        Under the threaded backend the per-allocation lock makes concurrent
        accumulates from different ranks linearise, mirroring the atomic
        accumulate kernel of the paper's implementation.
        """
        destination = self._resolve(handle, target_rank, rect)
        data = np.asarray(data)
        if destination.shape != data.shape:
            raise CommunicationError(
                f"accumulate shape mismatch: destination {destination.shape}, data {data.shape}"
            )
        lock = self._heaps[target_rank].lock(handle)
        with lock:
            destination += data
        self.traffic.record(TransferRecord(ACCUMULATE, initiator, target_rank, data.nbytes,
                                           handle.label))

    # ------------------------------------------------------------------ #
    # modelled timing helpers
    # ------------------------------------------------------------------ #
    def transfer_time(self, src_rank: int, dst_rank: int, nbytes: int,
                      accumulate: bool = False) -> float:
        """Modelled seconds to move ``nbytes`` between two ranks.

        Accumulates are charged at the machine's ``accumulate_efficiency``
        fraction of link bandwidth, reflecting the paper's measurement that
        the atomic accumulate kernel reaches ~80% of copy bandwidth.
        """
        time = self.topology.transfer_time(src_rank, dst_rank, nbytes)
        if accumulate and src_rank != dst_rank:
            efficiency = max(1.0e-6, self.machine.accumulate_efficiency)
            latency = self.topology.latency(src_rank, dst_rank)
            time = latency + (time - latency) / efficiency
        return time

    # ------------------------------------------------------------------ #
    # SPMD execution
    # ------------------------------------------------------------------ #
    def run_spmd(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``fn(ctx, *args, **kwargs)`` once per rank and return per-rank results."""
        barrier = self.backend.make_barrier(self.num_ranks)
        contexts = [RankContext(self, rank, barrier) for rank in range(self.num_ranks)]

        def make_call(ctx: RankContext) -> Callable[[], Any]:
            def call() -> Any:
                return fn(ctx, *args, **kwargs)

            return call

        return self.backend.run([make_call(ctx) for ctx in contexts])

    def reset_counters(self) -> None:
        """Clear traffic and simulated-clock state (allocations are kept)."""
        self.traffic.reset()
        self.clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Runtime(machine={self.machine.name!r}, num_ranks={self.num_ranks}, "
            f"backend={self.backend.name!r})"
        )
