"""Communication-traffic accounting.

Every one-sided operation executed through the runtime is recorded here, so
that tests can assert communication-volume properties (for example, that a
column-block MLP-1 multiply only moves the A matrix, or that replication
reduces the bytes fetched per rank) and so the benchmark harness can report
communication volumes alongside percent-of-peak.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

GET = "get"
PUT = "put"
ACCUMULATE = "accumulate"

KINDS = (GET, PUT, ACCUMULATE)


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One one-sided transfer: who initiated it, where the data lives, its size."""

    kind: str
    initiator: int
    target: int
    nbytes: int
    label: str = ""

    @property
    def is_local(self) -> bool:
        return self.initiator == self.target


class TrafficCounter:
    """Thread-safe accumulator of :class:`TransferRecord` entries."""

    def __init__(self, keep_records: bool = True) -> None:
        self._lock = threading.Lock()
        self._keep = keep_records
        self._records: List[TransferRecord] = []
        self._bytes_by_kind: Dict[str, int] = {kind: 0 for kind in KINDS}
        self._count_by_kind: Dict[str, int] = {kind: 0 for kind in KINDS}
        self._remote_bytes_by_kind: Dict[str, int] = {kind: 0 for kind in KINDS}
        self._bytes_by_initiator: Dict[int, int] = {}

    def record(self, record: TransferRecord) -> None:
        if record.kind not in KINDS:
            raise ValueError(f"unknown transfer kind {record.kind!r}")
        with self._lock:
            if self._keep:
                self._records.append(record)
            self._bytes_by_kind[record.kind] += record.nbytes
            self._count_by_kind[record.kind] += 1
            if not record.is_local:
                self._remote_bytes_by_kind[record.kind] += record.nbytes
            self._bytes_by_initiator[record.initiator] = (
                self._bytes_by_initiator.get(record.initiator, 0) + record.nbytes
            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> List[TransferRecord]:
        with self._lock:
            return list(self._records)

    def total_bytes(self, kind: Optional[str] = None, remote_only: bool = False) -> int:
        with self._lock:
            source = self._remote_bytes_by_kind if remote_only else self._bytes_by_kind
            if kind is None:
                return sum(source.values())
            return source.get(kind, 0)

    def operation_count(self, kind: Optional[str] = None) -> int:
        with self._lock:
            if kind is None:
                return sum(self._count_by_kind.values())
            return self._count_by_kind.get(kind, 0)

    def bytes_by_initiator(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._bytes_by_initiator)

    def remote_bytes(self) -> int:
        return self.total_bytes(remote_only=True)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            for kind in KINDS:
                self._bytes_by_kind[kind] = 0
                self._count_by_kind[kind] = 0
                self._remote_bytes_by_kind[kind] = 0
            self._bytes_by_initiator.clear()

    def summary(self) -> Dict[str, int]:
        """Flat dict suitable for printing in benchmark reports."""
        with self._lock:
            out = {}
            for kind in KINDS:
                out[f"{kind}_bytes"] = self._bytes_by_kind[kind]
                out[f"{kind}_remote_bytes"] = self._remote_bytes_by_kind[kind]
                out[f"{kind}_count"] = self._count_by_kind[kind]
            out["total_bytes"] = sum(self._bytes_by_kind.values())
            out["total_remote_bytes"] = sum(self._remote_bytes_by_kind.values())
            return out
