"""Multi-process plan serving: the shared-nothing front over the planner.

PR 2 made plan selection a thread-safe in-process service
(:class:`~repro.planner.service.PlannerService`); this package makes it a
*deployable* one.  :class:`~repro.serve.server.PlanServer` pre-forks N
workers — each owning a private planner service, plan cache, and simulated
runtimes — behind one Unix/TCP listening socket whose connections the parent
deals round-robin; :class:`~repro.serve.client.PlanClient` talks to it over
a length-prefixed JSON protocol (:mod:`repro.serve.protocol`) with
connection pooling and transport retries; :mod:`repro.serve.stats`
aggregates per-worker counters into the fleet-wide view.

See ``docs/serving.md`` for the quickstart, the protocol specification, and
the plan-store eviction knobs long-lived workers should set.
"""

from repro.serve.client import PlanClient, RemotePlanError
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    RemoteGraphPlanResponse,
    RemotePlanResponse,
    encode_frame,
    error_response,
    graph_plan_response_payload,
    ok_response,
    metrics_request,
    ping_request,
    plan_graph_request,
    plan_request,
    plan_response_payload,
    recv_message,
    send_frame,
    send_message,
    stats_request,
)
from repro.serve.server import PlanServer
from repro.serve.stats import ServerStats, WorkerStats, aggregate_service_stats

__all__ = [
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "ProtocolError",
    "RemoteGraphPlanResponse",
    "RemotePlanResponse",
    "encode_frame",
    "error_response",
    "graph_plan_response_payload",
    "ok_response",
    "metrics_request",
    "ping_request",
    "plan_graph_request",
    "plan_request",
    "plan_response_payload",
    "recv_message",
    "send_frame",
    "send_message",
    "stats_request",
    "PlanClient",
    "RemotePlanError",
    "PlanServer",
    "ServerStats",
    "WorkerStats",
    "aggregate_service_stats",
]
