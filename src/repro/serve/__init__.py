"""Multi-process plan serving: the shared-nothing front over the planner.

PR 2 made plan selection a thread-safe in-process service
(:class:`~repro.planner.service.PlannerService`); this package makes it a
*deployable* one.  :class:`~repro.serve.server.PlanServer` pre-forks N
workers — each owning a private planner service, plan cache, and simulated
runtimes — behind one Unix/TCP listening socket whose connections the parent
deals round-robin; :class:`~repro.serve.client.PlanClient` talks to it over
a length-prefixed JSON protocol (:mod:`repro.serve.protocol`) with
connection pooling and transport retries; :mod:`repro.serve.stats`
aggregates per-worker counters into the fleet-wide view.

PR 10 takes it cross-machine and makes it fault-tolerant:
:class:`~repro.serve.fleet.FleetRouter` /
:class:`~repro.serve.fleet.FleetClient` consistent-hash signature keys
across several servers so every workload lands on the one warm cache that
holds it; the server supervises its workers (auto-restart with
:class:`~repro.serve.server.RestartPolicy` backoff) and re-deals
connections whose worker died; and :mod:`repro.serve.faults` provides the
deterministic fault-injection seam the crash tests drive.

See ``docs/serving.md`` for the quickstart, the protocol specification, and
the plan-store eviction knobs long-lived workers should set.
"""

from repro.serve.client import PlanClient, RemotePlanError
from repro.serve.faults import (
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_EXIT,
    FAULT_EXIT_CODE,
    FAULT_TORN,
    FAULT_TORN_HANDOFF,
    Fault,
    FaultPlan,
)
from repro.serve.fleet import DEFAULT_REPLICAS, FleetClient, FleetRouter
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    RemoteGraphPlanResponse,
    RemotePlanResponse,
    encode_frame,
    error_response,
    graph_plan_response_payload,
    ok_response,
    metrics_request,
    ping_request,
    plan_graph_request,
    plan_request,
    plan_response_payload,
    recv_message,
    send_frame,
    send_message,
    stats_request,
)
from repro.serve.server import PlanServer, RestartPolicy
from repro.serve.stats import ServerStats, WorkerStats, aggregate_service_stats

__all__ = [
    "DEFAULT_REPLICAS",
    "FAULT_DELAY",
    "FAULT_DROP",
    "FAULT_EXIT",
    "FAULT_EXIT_CODE",
    "FAULT_TORN",
    "FAULT_TORN_HANDOFF",
    "Fault",
    "FaultPlan",
    "FleetClient",
    "FleetRouter",
    "RestartPolicy",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "ProtocolError",
    "RemoteGraphPlanResponse",
    "RemotePlanResponse",
    "encode_frame",
    "error_response",
    "graph_plan_response_payload",
    "ok_response",
    "metrics_request",
    "ping_request",
    "plan_graph_request",
    "plan_request",
    "plan_response_payload",
    "recv_message",
    "send_frame",
    "send_message",
    "stats_request",
    "PlanClient",
    "RemotePlanError",
    "PlanServer",
    "ServerStats",
    "WorkerStats",
    "aggregate_service_stats",
]
