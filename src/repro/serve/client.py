"""PlanClient: pooled, retrying access to a :class:`~repro.serve.server.PlanServer`.

The client keeps a small LIFO pool of connections (each pinned — by the
server's round-robin accept dispatch — to one worker), reuses them across
requests, and transparently reconnects-and-retries on transport failures.
Server-side failures (an exception raised while planning) are **not**
retried: they travel back as typed error responses and re-raise here as
:class:`RemotePlanError` — a deterministic planning error would fail
identically on every worker.

Thread-safe: concurrent callers draw distinct pooled connections, so a
multi-threaded client naturally exercises several workers at once.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, Optional, Tuple, Union

from repro.bench.workloads import Workload
from repro.obs.tracing import current_span_id, current_trace_id
from repro.serve import protocol
from repro.serve.protocol import RemoteGraphPlanResponse, RemotePlanResponse
from repro.serve.stats import WorkerStats

Address = Union[str, Tuple[str, int]]


class RemotePlanError(RuntimeError):
    """A failure raised server-side while answering a request.

    Attributes:
        error_type: the server-side exception's class name.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


class PlanClient:
    """Connection-pooled client for the plan-serving protocol.

    Args:
        address: the server's resolved endpoint — a Unix socket path or a
            ``(host, port)`` tuple (i.e. ``PlanServer.address``).
        pool_size: how many idle connections to retain for reuse; extra
            connections are opened under concurrency and closed on release.
        retries: how many times a request is retried on *transport* failures
            (connection refused/reset, truncated frames); each retry opens a
            fresh connection.  A failure on a pooled (possibly stale)
            connection additionally earns one free immediate retry per
            request that does not count against this budget — see
            :meth:`_request`.
        retry_delay: base back-off between retries, doubled per attempt.
        timeout: per-operation socket timeout in seconds.
        tracer: a :class:`~repro.obs.tracing.Tracer`; when given (and
            enabled), every :meth:`plan` runs inside a ``client.plan`` span
            whose trace id is stamped into the wire request, and the
            answering worker's spans are absorbed back — one request, one
            cross-process timeline.  ``None`` (default) disables tracing.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        address: Address,
        *,
        pool_size: int = 4,
        retries: int = 2,
        retry_delay: float = 0.05,
        timeout: float = 30.0,
        tracer=None,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.address = address
        self.pool_size = pool_size
        self.retries = retries
        self.retry_delay = retry_delay
        self.timeout = timeout
        # maxsize makes the retain-or-close decision atomic (a bare qsize()
        # check would race under concurrent releases and overfill the pool).
        self._pool: "queue.LifoQueue[socket.socket]" = queue.LifoQueue(maxsize=pool_size)
        self._lock = threading.Lock()
        self._closed = False
        self._transport_retries = 0
        self._tracer = tracer

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        """Open one fresh connection to the server."""
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.address)
        except OSError:
            sock.close()
            raise
        return sock

    def _acquire(self) -> Tuple[socket.socket, bool]:
        """A connection to use, plus whether it came from the pool.

        Pooled connections may be stale — their worker can have died and
        been restarted since the connection was pooled — so callers treat
        failures on them differently from failures on fresh sockets (see
        :meth:`_request`).
        """
        try:
            return self._pool.get_nowait(), True
        except queue.Empty:
            return self._connect(), False

    def _release(self, sock: socket.socket) -> None:
        if not self._closed:
            try:
                self._pool.put_nowait(sock)
            except queue.Full:
                self._close_socket(sock)
                return
            # close() may have drained the pool between our _closed check and
            # the put; drain again so no live fd survives in a closed client.
            if self._closed:
                self._drain_pool()
            return
        self._close_socket(sock)

    def _drain_pool(self) -> None:
        while True:
            try:
                sock = self._pool.get_nowait()
            except queue.Empty:
                return
            self._close_socket(sock)

    @staticmethod
    def _close_socket(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # ------------------------------------------------------------------ #
    # request plumbing
    # ------------------------------------------------------------------ #
    def _request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One request/response round trip with transport-failure retries.

        A failure on a *pooled* connection gets special treatment: the
        pooled socket may simply be stale (its worker died and was
        restarted since the connection was parked), which says nothing
        about the server's health.  The whole pool is discarded — every
        parked connection is equally suspect — and the request retries on
        a fresh socket immediately, without consuming one of the caller's
        ``retries`` or sleeping.  At most one such freebie is taken per
        request, so a genuinely dead server still fails after the
        configured attempts.
        """
        if self._closed:
            raise RuntimeError("PlanClient is closed")
        # Encode before the retry loop: an oversized payload is a caller
        # error, not a transport failure, and must raise immediately rather
        # than burn retries against healthy connections.
        frame = protocol.encode_frame(payload)
        last_error: Optional[BaseException] = None
        pool_freebie_available = True
        attempt = 0
        while attempt < self.retries + 1:
            if attempt:
                with self._lock:
                    self._transport_retries += 1
                time.sleep(self.retry_delay * (2 ** (attempt - 1)))
            try:
                sock, pooled = self._acquire()
            except OSError as error:
                last_error = error
                attempt += 1
                continue
            failure: Optional[BaseException] = None
            message: Optional[Dict[str, object]] = None
            try:
                protocol.send_frame(sock, frame, timeout=self.timeout)
                message = protocol.recv_message(sock)
            except (OSError, protocol.ProtocolError) as error:
                failure = error
            if failure is None and message is None:
                # Orderly close mid-conversation: same staleness signal as a
                # reset — a restarted worker's old sockets EOF cleanly.
                failure = protocol.ProtocolError(
                    "server closed the connection before answering")
            if failure is not None:
                self._close_socket(sock)
                last_error = failure
                if pooled and pool_freebie_available:
                    # Stale pool, not a sick server: drop every parked
                    # connection and go again on a fresh socket for free.
                    pool_freebie_available = False
                    self._drain_pool()
                    continue
                attempt += 1
                continue
            assert message is not None
            self._release(sock)
            if not message.get("ok"):
                detail = message.get("error") or {}
                raise RemotePlanError(str(detail.get("type", "Error")),  # type: ignore[union-attr]
                                      str(detail.get("message", "")))  # type: ignore[union-attr]
            return message["result"]  # type: ignore[return-value]
        raise ConnectionError(
            f"request failed after {self.retries + 1} attempts: {last_error}"
        ) from last_error

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #
    def plan(self, workload: Workload, *, top_k: Optional[int] = None) -> RemotePlanResponse:
        """Request a plan for ``workload`` (ranked recommendations).

        With a tracer configured, the request runs inside a ``client.plan``
        span whose context rides the wire; the worker's spans come back in
        the response and are absorbed into this client's tracer, so
        ``tracer.chrome_trace(trace_id)`` renders the whole request.

        Args:
            workload: the problem to partition (structure travels along).
            top_k: how many ranked plans to return (server default if None).

        Returns:
            The served plan plus which worker answered.
        """
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            result = self._request(protocol.plan_request(workload, top_k))
            return RemotePlanResponse.from_dict(result)
        with tracer.span("client.plan", workload=workload.name) as span:
            trace = {"trace_id": current_trace_id(),
                     "parent_span_id": current_span_id()}
            result = self._request(
                protocol.plan_request(workload, top_k, trace=trace))
            response = RemotePlanResponse.from_dict(result)
            span.set(worker=response.worker,
                     outcome=("hit" if response.cache_hit else
                              "coalesced" if response.coalesced
                              else "computed"))
            if response.spans:
                tracer.absorb(response.spans)
        return response

    def plan_graph(self, graph, *,
                   lattice_size: Optional[int] = None) -> RemoteGraphPlanResponse:
        """Request a joint layout plan for an op graph (protocol 1.3).

        Same pooling/retry/tracing discipline as :meth:`plan`; the traced
        request runs inside a ``client.plan_graph`` span.

        Args:
            graph: the :class:`repro.core.graph.OpGraph` to plan jointly.
            lattice_size: per-op layout candidates the joint planner weighs
                (server default if ``None``).

        Returns:
            The joint plan — chosen per-op layouts, assignment, joint and
            greedy makespans — plus which worker answered.
        """
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            result = self._request(protocol.plan_graph_request(graph, lattice_size))
            return RemoteGraphPlanResponse.from_dict(result)
        with tracer.span("client.plan_graph", graph=graph.name) as span:
            trace = {"trace_id": current_trace_id(),
                     "parent_span_id": current_span_id()}
            result = self._request(
                protocol.plan_graph_request(graph, lattice_size, trace=trace))
            response = RemoteGraphPlanResponse.from_dict(result)
            span.set(worker=response.worker,
                     outcome=("hit" if response.cache_hit else
                              "coalesced" if response.coalesced
                              else "computed"))
            if response.spans:
                tracer.absorb(response.spans)
        return response

    def ping(self) -> Dict[str, object]:
        """Liveness probe; returns the owning worker's ``{"worker", "pid"}``
        (plus its ``protocol`` version on 1.1+ servers)."""
        return self._request(protocol.ping_request())

    def metrics(self) -> Dict[str, object]:
        """Metrics snapshot of the single worker owning this connection.

        Fleet-merged snapshots live server-side
        (:meth:`repro.serve.server.PlanServer.aggregate_metrics`); this op
        exists so any client can scrape a worker through the public socket.
        """
        return self._request(protocol.metrics_request())

    def worker_stats(self) -> WorkerStats:
        """Counters of the single worker owning this request's connection.

        Fleet-wide totals live server-side
        (:meth:`repro.serve.server.PlanServer.aggregate_stats`).
        """
        return WorkerStats.from_dict(self._request(protocol.stats_request()))

    @property
    def transport_retries(self) -> int:
        """How many transport-failure retries this client has performed."""
        with self._lock:
            return self._transport_retries

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        self._closed = True
        self._drain_pool()

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
