"""Deterministic fault injection for the serving fleet (test seam).

Chaos testing a pre-forked server is usually a festival of sleeps and
signals; this module replaces that with a *deterministic* seam.  A
:class:`FaultPlan` is handed to :class:`~repro.serve.server.PlanServer` at
construction and rides the fork into every worker.  Faults are keyed by
**who** (worker index), **when** (the 0-based ordinal of the decoded request
within one worker incarnation, or of the connection hand-off attempt for
parent-side faults), and **which incarnation** (the worker's restart
generation) — so a test can say "worker 0, generation 0, kills itself on its
second request" and the failure happens at exactly that point in the
request stream, every run.

Worker-side actions (fire while handling a decoded request):

* :data:`FAULT_EXIT` — the worker process exits mid-request, *before*
  answering (``os._exit``), exactly like a crash between decode and reply;
* :data:`FAULT_DROP` — the worker closes the connection without answering
  (the client observes a clean EOF at a frame boundary and retries);
* :data:`FAULT_TORN` — the worker writes a torn frame (a length header
  promising more bytes than follow) and closes, so the client observes a
  mid-frame disconnect (:class:`~repro.serve.protocol.ProtocolError`);
* :data:`FAULT_DELAY` — the worker sleeps ``delay_seconds`` before
  answering (slow-worker emulation; the answer itself is unchanged).

Parent-side action (fires while dealing an accepted connection):

* :data:`FAULT_TORN_HANDOFF` — the parent sends the ``("conn",)``
  announcement but garbage bytes instead of the ``SCM_RIGHTS`` descriptor.
  The worker's ``recv_handle`` rejects the corrupt hand-off and the worker
  exits cleanly; the parent retires it and re-deals the same connection to
  a survivor, so no request is lost.

Matching is **pure** — a :class:`Fault` holds no mutable state.  "Fire
once" falls out of the ordinal key: a fault pinned to ``generation=0``
never fires again after the worker restarts, while ``generation=None``
(any incarnation) re-fires on every restart at the same ordinal — the
restart-storm driver.

Production servers simply pass no plan; the per-request cost of the
disabled seam is one ``is None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

#: Worker-side: exit the worker process mid-request (before answering).
FAULT_EXIT = "exit"
#: Worker-side: close the connection without answering (clean EOF).
FAULT_DROP = "drop"
#: Worker-side: send a truncated frame, then close (mid-frame disconnect).
FAULT_TORN = "torn"
#: Worker-side: sleep ``delay_seconds`` before answering normally.
FAULT_DELAY = "delay"
#: Parent-side: corrupt the fd hand-off to this worker (garbage instead of
#: the descriptor); the worker rejects it and exits, the parent re-deals.
FAULT_TORN_HANDOFF = "torn_handoff"

#: Every action a :class:`Fault` may carry, by side.
WORKER_ACTIONS = (FAULT_EXIT, FAULT_DROP, FAULT_TORN, FAULT_DELAY)
PARENT_ACTIONS = (FAULT_TORN_HANDOFF,)

#: Exit status a :data:`FAULT_EXIT` worker dies with (distinguishable from
#: a clean shutdown in process tables and test assertions).
FAULT_EXIT_CODE = 17


@dataclass(frozen=True)
class Fault:
    """One scheduled failure: what happens, to whom, and exactly when.

    Args:
        action: one of the module's ``FAULT_*`` action names.
        worker: index of the targeted worker.
        request: 0-based ordinal the fault fires at — the ordinal of the
            decoded request within one worker incarnation for worker-side
            actions, or of the hand-off attempt to that worker (counted per
            incarnation) for :data:`FAULT_TORN_HANDOFF`.
        generation: which incarnation of the worker the fault applies to
            (0 is the originally forked worker; each restart increments).
            ``None`` matches *every* incarnation — the restart-storm knob.
        delay_seconds: how long :data:`FAULT_DELAY` sleeps; ignored by the
            other actions.
    """

    action: str
    worker: int
    request: int = 0
    generation: Optional[int] = 0
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in WORKER_ACTIONS + PARENT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; available: "
                f"{WORKER_ACTIONS + PARENT_ACTIONS}")
        if self.request < 0:
            raise ValueError(f"request ordinal must be >= 0, got {self.request}")

    def matches(self, worker: int, generation: int, ordinal: int) -> bool:
        """True when this fault fires at ``(worker, generation, ordinal)``."""
        return (self.worker == worker
                and self.request == ordinal
                and (self.generation is None or self.generation == generation))


class FaultPlan:
    """An immutable schedule of :class:`Fault` injections.

    Picklable (it crosses the fork into every worker) and stateless: both
    the parent and each worker consult it with their own monotonically
    increasing ordinals, so the same plan object never needs cross-process
    coordination.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"expected Fault, got {type(fault).__name__}")

    def match(self, worker: int, generation: int, ordinal: int,
              actions: Tuple[str, ...]) -> Optional[Fault]:
        """The first scheduled fault firing at this point, if any.

        Args:
            worker: the consulting worker's index (or the hand-off target).
            generation: that worker's incarnation number.
            ordinal: the 0-based request (or hand-off) ordinal.
            actions: which action family the caller can execute —
                :data:`WORKER_ACTIONS` from inside a worker,
                :data:`PARENT_ACTIONS` from the dispatcher.
        """
        for fault in self.faults:
            if fault.action in actions and fault.matches(worker, generation, ordinal):
                return fault
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r})"
