"""Cross-machine fleet routing: consistent hashing over several PlanServers.

One :class:`~repro.serve.server.PlanServer` scales plan serving across the
cores of one host; this module scales it across hosts.  A
:class:`FleetRouter` places every endpoint on a consistent-hash ring (a
bounded number of sha1 virtual nodes per endpoint), and a
:class:`FleetClient` routes each request by its *signature key* — the same
canonical cache identity the servers themselves use
(:class:`~repro.planner.signature.SignatureFactory`) — so a given workload
always lands on the one server whose warm cache already holds its plan.

Consistent hashing gives the two properties a warm fleet needs:

* **stability** — the same signature key maps to the same endpoint for as
  long as membership is unchanged, so cache hits accumulate instead of
  spraying across the fleet;
* **minimal disruption** — adding an endpoint moves only the keys on the
  arcs its virtual nodes claim (roughly ``1/N`` of the space), and removing
  one remaps only the keys it owned; every other server keeps its warm
  cache intact.

The router is transport-agnostic (it maps strings to endpoint names); the
client wraps one pooled :class:`~repro.serve.client.PlanClient` per
endpoint and optionally fails a request over to the next distinct endpoint
on the ring when its home server is unreachable.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.workloads import Workload
from repro.planner.signature import SignatureFactory
from repro.serve.client import PlanClient
from repro.serve.protocol import RemoteGraphPlanResponse, RemotePlanResponse
from repro.serve.stats import WorkerStats
from repro.topology.machines import MachineSpec
from repro.util.logging import get_logger, log_event

_LOG = get_logger("serve.fleet")

Address = Union[str, Tuple[str, int]]

#: Virtual nodes placed on the ring per endpoint.  Bounded and modest: 64
#: replicas keeps the expected load imbalance within a few percent for
#: small fleets while the ring stays a few hundred entries — O(log R·N)
#: routing with trivial memory.
DEFAULT_REPLICAS = 64


class FleetRouter:
    """A consistent-hash ring mapping string keys to endpoint names.

    Each node contributes ``replicas`` virtual points, placed by sha1 of
    ``"<node>#<replica>"``; a key routes to the first virtual point at or
    clockwise-after sha1 of the key.  Ties (identical points from different
    nodes) break deterministically by node name.

    Args:
        nodes: initial endpoint names (order-independent).
        replicas: virtual nodes per endpoint (>= 1).
    """

    def __init__(self, nodes: Sequence[str] = (), *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        #: Sorted ``(point, node)`` pairs — the ring.
        self._ring: List[Tuple[int, str]] = []
        self._members: set = set()
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _point(label: str) -> int:
        """A label's position on the ring (first 8 bytes of its sha1)."""
        return int.from_bytes(
            hashlib.sha1(label.encode("utf-8")).digest()[:8], "big")

    def add_node(self, node: str) -> None:
        """Place ``node``'s virtual points on the ring.

        Only keys on the arcs those points claim move to the new node;
        every other key keeps its previous owner.
        """
        if node in self._members:
            raise ValueError(f"node already on the ring: {node!r}")
        self._members.add(node)
        for replica in range(self.replicas):
            bisect.insort(self._ring, (self._point(f"{node}#{replica}"), node))

    def remove_node(self, node: str) -> None:
        """Remove ``node``; only the keys it owned remap (to arc successors)."""
        if node not in self._members:
            raise KeyError(f"node not on the ring: {node!r}")
        self._members.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current ring membership, sorted by name."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        """Number of member nodes."""
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        """Whether ``node`` is currently on the ring."""
        return node in self._members

    def route(self, key: str) -> str:
        """The endpoint owning ``key`` under current membership."""
        if not self._ring:
            raise RuntimeError("cannot route on an empty ring")
        index = bisect.bisect_right(self._ring,
                                    (self._point(key), "")) % len(self._ring)
        return self._ring[index][1]

    def route_chain(self, key: str, count: Optional[int] = None) -> List[str]:
        """Distinct endpoints for ``key`` in ring order (failover order).

        The first entry is :meth:`route`'s answer; later entries are the
        next *distinct* owners walking clockwise — the servers a client
        should try, in order, when earlier ones are unreachable.

        Args:
            key: the routing key.
            count: maximum endpoints to return (all members if ``None``).
        """
        if not self._ring:
            raise RuntimeError("cannot route on an empty ring")
        limit = len(self._members) if count is None else min(count,
                                                            len(self._members))
        start = bisect.bisect_right(self._ring, (self._point(key), ""))
        chain: List[str] = []
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in chain:
                chain.append(node)
                if len(chain) >= limit:
                    break
        return chain


class FleetClient:
    """Signature-routed client over a named fleet of PlanServers.

    Computes each request's canonical signature key exactly as the servers
    do (via :class:`~repro.planner.signature.SignatureFactory`), routes the
    key on a :class:`FleetRouter`, and sends the request through that
    endpoint's pooled :class:`~repro.serve.client.PlanClient`.  The same
    workload therefore always reaches the same server's warm cache, and a
    fleet of N servers behaves — hit-rate-wise — like one server with an
    N-times-larger cache.

    Args:
        endpoints: mapping of endpoint name to resolved server address
            (``PlanServer.address``).  Names, not addresses, live on the
            ring, so a server can be moved without remapping its keys.
        machine: the machine the fleet plans for — **must** match the
            servers' machine, or client-side keys diverge from server-side
            cache identities and every request looks cold.
        service_options: the same planner options the servers were built
            with (``top_k``, ``replication_factors``, ...); folded into the
            options digest of every key.  Unknown serving-only keys are
            ignored, so the exact ``service_options`` dict handed to
            :class:`~repro.serve.server.PlanServer` can be passed verbatim.
        replicas: virtual nodes per endpoint on the ring.
        failover: when True (default), a request whose home endpoint is
            unreachable (``ConnectionError`` after the client's own
            retries) is retried on the next distinct endpoints along the
            ring instead of failing — warm-cache affinity is lost for that
            request, availability is not.
        client_options: keyword arguments forwarded to every per-endpoint
            :class:`~repro.serve.client.PlanClient` (``pool_size``,
            ``retries``, ``timeout``, ``tracer``, ...).

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        endpoints: Dict[str, Address],
        machine: MachineSpec,
        *,
        service_options: Optional[Dict[str, object]] = None,
        replicas: int = DEFAULT_REPLICAS,
        failover: bool = True,
        client_options: Optional[Dict[str, object]] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("FleetClient needs at least one endpoint")
        self.failover = failover
        options = dict(client_options or {})
        self._signatures = SignatureFactory(machine,
                                            **dict(service_options or {}))
        self._router = FleetRouter(sorted(endpoints), replicas=replicas)
        self._clients: Dict[str, PlanClient] = {
            name: PlanClient(address, **options)  # type: ignore[arg-type]
            for name, address in endpoints.items()}
        self._client_options = options
        self._lock = threading.Lock()
        self._requests_by_endpoint: Dict[str, int] = {}
        self._failovers = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    @property
    def endpoints(self) -> Tuple[str, ...]:
        """Current endpoint names, sorted."""
        return self._router.nodes

    def add_endpoint(self, name: str, address: Address) -> None:
        """Join a server to the fleet; only its ring arc's keys move to it."""
        with self._lock:
            if self._closed:
                raise RuntimeError("FleetClient is closed")
            self._router.add_node(name)  # validates duplicates first
            self._clients[name] = PlanClient(
                address, **self._client_options)  # type: ignore[arg-type]
        log_event(_LOG, "fleet.endpoint.join", endpoint=name)

    def remove_endpoint(self, name: str) -> None:
        """Remove a server; only the keys it owned remap to ring successors."""
        with self._lock:
            self._router.remove_node(name)
            client = self._clients.pop(name)
        client.close()
        log_event(_LOG, "fleet.endpoint.leave", endpoint=name)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, workload: Workload, *,
              top_k: Optional[int] = None) -> str:
        """The endpoint name a workload's signature key routes to."""
        return self._router.route(
            self._signatures.signature_for(workload, top_k).key())

    def route_graph(self, graph, *,
                    lattice_size: Optional[int] = None) -> str:
        """The endpoint name an op graph's signature key routes to."""
        return self._router.route(
            self._signatures.graph_signature_for(graph, lattice_size).key())

    def _send(self, key: str, call):
        """Route ``key``, invoke ``call(client)`` there, fail over if allowed."""
        with self._lock:
            if self._closed:
                raise RuntimeError("FleetClient is closed")
            chain = self._router.route_chain(
                key, None if self.failover else 1)
            clients = [(name, self._clients[name]) for name in chain]
        last_error: Optional[BaseException] = None
        for position, (name, client) in enumerate(clients):
            try:
                result = call(client)
            except ConnectionError as error:
                last_error = error
                log_event(_LOG, "fleet.endpoint.unreachable", endpoint=name)
                continue
            with self._lock:
                self._requests_by_endpoint[name] = (
                    self._requests_by_endpoint.get(name, 0) + 1)
                if position:
                    self._failovers += 1
            return result
        raise ConnectionError(
            f"no endpoint answered for key {key!r} "
            f"(tried {[name for name, _ in clients]})") from last_error

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #
    def plan(self, workload: Workload, *,
             top_k: Optional[int] = None) -> RemotePlanResponse:
        """Request a plan from the server owning this workload's signature.

        Args:
            workload: the problem to partition.
            top_k: how many ranked plans to return (server default if None).

        Returns:
            The served plan plus which worker (and endpoint arc) answered.
        """
        key = self._signatures.signature_for(workload, top_k).key()
        return self._send(key, lambda client: client.plan(workload,
                                                          top_k=top_k))

    def plan_graph(self, graph, *,
                   lattice_size: Optional[int] = None
                   ) -> RemoteGraphPlanResponse:
        """Request a joint graph plan from the graph signature's owner.

        Args:
            graph: the :class:`repro.core.graph.OpGraph` to plan jointly.
            lattice_size: per-op layout candidates the joint planner weighs
                (server default if ``None``).

        Returns:
            The joint plan plus which worker answered.
        """
        key = self._signatures.graph_signature_for(graph, lattice_size).key()
        return self._send(
            key, lambda client: client.plan_graph(graph,
                                                  lattice_size=lattice_size))

    def ping_all(self) -> Dict[str, Dict[str, object]]:
        """Ping every endpoint; returns ``{endpoint: ping payload}``.

        Unreachable endpoints are absent from the result rather than
        raising — this is a liveness sweep, not a health gate.
        """
        with self._lock:
            clients = list(self._clients.items())
        answers: Dict[str, Dict[str, object]] = {}
        for name, client in clients:
            try:
                answers[name] = client.ping()
            except ConnectionError:
                continue
        return answers

    def worker_stats(self) -> Dict[str, WorkerStats]:
        """One worker's counters per endpoint (a cheap fleet health sample).

        Each endpoint answers through whichever worker owns the pooled
        connection; fleet-accurate totals live server-side
        (:meth:`repro.serve.server.PlanServer.aggregate_stats`).
        """
        with self._lock:
            clients = list(self._clients.items())
        answers: Dict[str, WorkerStats] = {}
        for name, client in clients:
            try:
                answers[name] = client.worker_stats()
            except ConnectionError:
                continue
        return answers

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def requests_by_endpoint(self) -> Dict[str, int]:
        """Successful requests served per endpoint (includes failovers)."""
        with self._lock:
            return dict(self._requests_by_endpoint)

    @property
    def failovers(self) -> int:
        """Requests answered by a non-home endpoint after their home failed."""
        with self._lock:
            return self._failovers

    def close(self) -> None:
        """Close every per-endpoint client (idempotent)."""
        with self._lock:
            self._closed = True
            clients = list(self._clients.values())
        for client in clients:
            client.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
