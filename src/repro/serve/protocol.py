"""Wire protocol of the plan-serving front: length-prefixed JSON frames.

Every message — request or response, either direction — is one *frame*:

* a 4-byte big-endian unsigned length header (``struct`` format ``!I``),
* followed by exactly that many bytes of UTF-8 JSON encoding one object.

JSON keeps the protocol debuggable (``socat`` + eyeballs) and reuses the
serializers the persistent plan store already has
(:func:`repro.planner.cache.recommendation_to_dict`,
:meth:`repro.bench.workloads.Workload.to_dict`); the length prefix makes
framing trivial on both blocking sockets (:func:`recv_message`) and
non-blocking event loops (:class:`FrameDecoder`).

Requests are objects with an ``"op"`` discriminator:

* ``{"op": "plan", "workload": <Workload.to_dict()>, "top_k": <int|null>}`` —
  optionally carrying ``"trace": {"trace_id", "parent_span_id"}``, the
  client's tracing context; a tracing-enabled worker adopts it and returns
  its recorded spans in the response payload (``"spans"``), so one request
  renders as a single cross-process timeline
* ``{"op": "plan_graph", "graph": <OpGraph.to_dict()>, "lattice_size":
  <int|null>}`` — joint layout planning over an op chain/DAG (protocol 1.3);
  accepts the same optional ``"trace"`` context as ``plan``
* ``{"op": "ping"}`` — identify the worker owning this connection (the reply
  carries the worker's :data:`PROTOCOL_VERSION`)
* ``{"op": "stats"}`` — that worker's serving/cache counters
* ``{"op": "metrics"}`` — that worker's metrics-registry snapshot
  (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`; empty when the fleet
  runs with metrics disabled)

Responses are ``{"ok": true, "result": ...}`` on success or
``{"ok": false, "error": {"type": ..., "message": ...}}`` on failure; the
client re-raises failures as :class:`~repro.serve.client.RemotePlanError`.

Versioning: new request fields are optional and new response fields default
cleanly, so minor versions interoperate both ways — an old client simply
never sends ``trace`` and ignores ``plan_age``/``spans``; an old server
ignores unknown request keys.  :data:`PROTOCOL_VERSION` names the dialect a
build speaks (minor bumps are additive; a major bump would break framing or
required fields).

Frames larger than :data:`MAX_MESSAGE_BYTES` are rejected on both send and
receive — a corrupt length header must fail fast, not allocate gigabytes.
"""

from __future__ import annotations

import json
import select
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload
from repro.planner.cache import recommendation_from_dict, recommendation_to_dict
from repro.planner.service import PlanResponse

#: The protocol dialect this build speaks, as ``(major, minor)``.  1.0 was
#: the original plan/ping/stats protocol; 1.1 added the optional ``trace``
#: request field, the ``metrics`` op, and the ``plan_age``/``trace_id``/
#: ``spans`` response fields; 1.2 added the ``stale`` response flag (a plan
#: served from an expired-but-in-grace cache entry while a background
#: refresh recomputes it); 1.3 added the ``plan_graph`` op (joint layout
#: planning over an op chain/DAG, carrying the graph as
#: ``OpGraph.to_dict()``); 1.4 added the ``generation`` response field on
#: ``plan``/``plan_graph``/``ping`` — the answering worker's restart
#: incarnation (0 for the originally forked worker, +1 per supervised
#: restart), so clients and tests can tell a fresh-cache restarted worker
#: from its predecessor.  All additive — 1.x peers interoperate.
PROTOCOL_VERSION = (1, 4)

#: Frame header: one network-order unsigned 32-bit payload length.
HEADER = struct.Struct("!I")

#: Upper bound on a single frame's JSON payload (sanity guard, not a tuning
#: knob: the largest legitimate message — a top-k plan response — is a few
#: kilobytes).
MAX_MESSAGE_BYTES = 64 << 20

#: How long a send may wait for a congested peer before giving up (seconds).
SEND_TIMEOUT = 30.0


class ProtocolError(RuntimeError):
    """A malformed, truncated, or oversized frame (or a mid-frame disconnect)."""


def encode_frame(payload: Dict[str, object]) -> bytes:
    """Serialize one message object to its on-wire frame (header + JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(body)} bytes exceeds "
                            f"MAX_MESSAGE_BYTES={MAX_MESSAGE_BYTES}")
    return HEADER.pack(len(body)) + body


def send_message(sock: socket.socket, payload: Dict[str, object],
                 timeout: float = SEND_TIMEOUT) -> None:
    """Encode ``payload`` and write it as one frame (see :func:`send_frame`)."""
    send_frame(sock, encode_frame(payload), timeout)


def send_frame(sock: socket.socket, frame: bytes,
               timeout: float = SEND_TIMEOUT) -> None:
    """Write one pre-encoded frame to ``sock``, tolerating non-blocking sockets.

    Args:
        sock: a connected stream socket (blocking or non-blocking).
        frame: the :func:`encode_frame` output to send.
        timeout: ceiling on total time spent waiting for writability.

    Raises:
        ProtocolError: if the peer stays unwritable past ``timeout``.
        OSError: on a broken connection.
    """
    view = memoryview(frame)
    deadline = time.monotonic() + timeout
    while view:
        # select-before-send enforces the deadline on *blocking* sockets too
        # (a bare blocking send() could wait on a full peer buffer forever);
        # once writable, send() returns promptly with a partial count.
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ProtocolError("send timed out waiting for a writable peer")
        _, writable, _ = select.select([], [sock], [], min(remaining, 1.0))
        if not writable:
            continue
        try:
            sent = sock.send(view)
        except (BlockingIOError, InterruptedError):
            continue
        if sent == 0:
            raise ProtocolError("connection closed mid-frame during send")
        view = view[sent:]


def _recv_exact(sock: socket.socket, count: int, *, at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``count`` bytes from a blocking socket.

    Returns ``None`` on a clean EOF at a frame boundary (``at_boundary``);
    raises :class:`ProtocolError` if the peer disconnects mid-frame.
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                return None
            raise ProtocolError(f"connection closed mid-frame ({remaining} of "
                                f"{count} bytes outstanding)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame from a blocking socket; ``None`` on clean EOF.

    Raises:
        ProtocolError: on truncated frames, oversized lengths, or bad JSON.
    """
    header = _recv_exact(sock, HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds "
                            f"MAX_MESSAGE_BYTES={MAX_MESSAGE_BYTES}")
    return _decode_body(_recv_exact(sock, length, at_boundary=False))


def _decode_body(body: bytes) -> Dict[str, object]:
    """Parse and validate one frame body (shared by both read paths)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"undecodable frame body: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


class FrameDecoder:
    """Incremental frame parser for non-blocking reads (the server side).

    Feed whatever bytes ``recv`` produced; complete messages pop out in
    order, partial frames wait in the buffer for the next feed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, object]]:
        """Absorb ``data`` and return every message it completed.

        Raises:
            ProtocolError: on oversized lengths or undecodable bodies.
        """
        self._buffer.extend(data)
        messages: List[Dict[str, object]] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return messages
            (length,) = HEADER.unpack(bytes(self._buffer[:HEADER.size]))
            if length > MAX_MESSAGE_BYTES:
                raise ProtocolError(f"frame of {length} bytes exceeds "
                                    f"MAX_MESSAGE_BYTES={MAX_MESSAGE_BYTES}")
            end = HEADER.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            messages.append(_decode_body(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (observability hook)."""
        return len(self._buffer)


# ---------------------------------------------------------------------- #
# request / response constructors
# ---------------------------------------------------------------------- #
def plan_request(workload: Workload, top_k: Optional[int] = None,
                 trace: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Build the ``plan`` request for one workload (structure included).

    Args:
        workload: the problem to partition.
        top_k: ranked plans wanted (``None``: server default).
        trace: optional tracing context to propagate —
            ``{"trace_id": ..., "parent_span_id": ...}`` (omitted from the
            wire when ``None``, keeping 1.0-compatible frames byte-identical).
    """
    message: Dict[str, object] = {"op": "plan", "workload": workload.to_dict(),
                                  "top_k": top_k}
    if trace is not None:
        message["trace"] = trace
    return message


def plan_graph_request(graph, lattice_size: Optional[int] = None,
                       trace: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Build the ``plan_graph`` request for one op graph (protocol 1.3).

    Args:
        graph: the :class:`repro.core.graph.OpGraph` to plan jointly.
        lattice_size: per-op layout candidates to consider (``None``: server
            default).
        trace: optional tracing context to propagate, exactly as in
            :func:`plan_request`.
    """
    message: Dict[str, object] = {"op": "plan_graph", "graph": graph.to_dict(),
                                  "lattice_size": lattice_size}
    if trace is not None:
        message["trace"] = trace
    return message


def ping_request() -> Dict[str, object]:
    """Build the ``ping`` request (worker identification / liveness)."""
    return {"op": "ping"}


def stats_request() -> Dict[str, object]:
    """Build the ``stats`` request (the owning worker's counters)."""
    return {"op": "stats"}


def metrics_request() -> Dict[str, object]:
    """Build the ``metrics`` request (the owning worker's registry snapshot)."""
    return {"op": "metrics"}


def ok_response(result: object) -> Dict[str, object]:
    """Wrap a successful dispatch result."""
    return {"ok": True, "result": result}


def error_response(error: BaseException) -> Dict[str, object]:
    """Wrap a server-side failure (type name + message travel to the client)."""
    return {"ok": False,
            "error": {"type": type(error).__name__, "message": str(error)}}


# ---------------------------------------------------------------------- #
# plan response payloads
# ---------------------------------------------------------------------- #
@dataclass
class RemotePlanResponse:
    """A served plan as seen by the client, plus which worker answered.

    Mirrors :class:`repro.planner.service.PlanResponse` (ranked
    recommendations, hit/coalesced flags, planning latency, search counters)
    with the process-boundary extras: the answering worker's index and pid,
    and the signature key the plan is cached under.
    """

    recommendations: List[PartitioningRecommendation]
    signature_key: str
    cache_hit: bool
    coalesced: bool
    planning_time: float
    num_simulated: int
    num_pruned: int
    worker: int
    pid: int
    #: Age in seconds of the served plan at serve time (0.0 when computed;
    #: protocol 1.1, defaults for 1.0 servers).
    plan_age: float = 0.0
    #: True when the plan came from an expired-but-in-grace cache entry
    #: (stale-while-revalidate; protocol 1.2, defaults for older servers).
    stale: bool = False
    #: The answering worker's restart incarnation (protocol 1.4; 0 both for
    #: never-restarted workers and when talking to older servers).
    generation: int = 0
    #: Trace id the worker served under (``None`` when tracing was off).
    trace_id: Optional[str] = None
    #: Wire-form span dicts the worker recorded for this request (protocol
    #: 1.1; the client absorbs them into its own tracer).
    spans: List[Dict[str, object]] = field(default_factory=list)

    @property
    def recommendation(self) -> PartitioningRecommendation:
        """The best plan."""
        return self.recommendations[0]

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RemotePlanResponse":
        """Rebuild from the wire form produced by :func:`plan_response_payload`."""
        trace_id = payload.get("trace_id")
        return cls(
            recommendations=[recommendation_from_dict(item)
                             for item in payload["recommendations"]],  # type: ignore[union-attr]
            signature_key=str(payload["signature_key"]),
            cache_hit=bool(payload["cache_hit"]),
            coalesced=bool(payload["coalesced"]),
            planning_time=float(payload["planning_time"]),  # type: ignore[arg-type]
            num_simulated=int(payload.get("num_simulated", 0)),  # type: ignore[arg-type]
            num_pruned=int(payload.get("num_pruned", 0)),  # type: ignore[arg-type]
            worker=int(payload.get("worker", -1)),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            plan_age=float(payload.get("plan_age", 0.0)),  # type: ignore[arg-type]
            stale=bool(payload.get("stale", False)),
            generation=int(payload.get("generation", 0)),  # type: ignore[arg-type]
            trace_id=str(trace_id) if trace_id is not None else None,
            spans=list(payload.get("spans") or []),  # type: ignore[arg-type]
        )


@dataclass
class RemoteGraphPlanResponse:
    """A served joint graph plan as seen by the client (protocol 1.3).

    Mirrors :class:`repro.planner.service.GraphPlanResponse` — the chosen
    per-op recommendations, the joint assignment, and the joint-vs-greedy
    makespans — plus the process-boundary extras (worker index, pid,
    signature key, recorded spans).
    """

    #: The chosen recommendation per op, in op order.
    recommendations: List[PartitioningRecommendation]
    signature_key: str
    #: Chosen candidate index per op (into each op's layout lattice).
    assignment: List[int]
    #: End-to-end modelled makespan of the joint assignment.
    makespan: float
    #: Makespan of the per-op greedy baseline.
    greedy_makespan: float
    #: Which solver produced the assignment (chain DP or branch-and-bound).
    method: str
    cache_hit: bool
    coalesced: bool
    planning_time: float
    num_simulated: int
    num_pruned: int
    worker: int
    pid: int
    #: Age in seconds of the served plan at serve time.
    plan_age: float = 0.0
    #: True when a grace-window (stale-while-revalidate) entry was served.
    stale: bool = False
    #: The answering worker's restart incarnation (protocol 1.4).
    generation: int = 0
    #: Trace id the worker served under (``None`` when tracing was off).
    trace_id: Optional[str] = None
    #: Wire-form span dicts the worker recorded for this request.
    spans: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RemoteGraphPlanResponse":
        """Rebuild from the wire form of :func:`graph_plan_response_payload`."""
        trace_id = payload.get("trace_id")
        return cls(
            recommendations=[recommendation_from_dict(item)
                             for item in payload["recommendations"]],  # type: ignore[union-attr]
            signature_key=str(payload["signature_key"]),
            assignment=[int(x) for x in payload.get("assignment", [])],  # type: ignore[union-attr]
            makespan=float(payload.get("makespan", 0.0)),  # type: ignore[arg-type]
            greedy_makespan=float(payload.get("greedy_makespan", 0.0)),  # type: ignore[arg-type]
            method=str(payload.get("method", "")),
            cache_hit=bool(payload["cache_hit"]),
            coalesced=bool(payload["coalesced"]),
            planning_time=float(payload["planning_time"]),  # type: ignore[arg-type]
            num_simulated=int(payload.get("num_simulated", 0)),  # type: ignore[arg-type]
            num_pruned=int(payload.get("num_pruned", 0)),  # type: ignore[arg-type]
            worker=int(payload.get("worker", -1)),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            plan_age=float(payload.get("plan_age", 0.0)),  # type: ignore[arg-type]
            stale=bool(payload.get("stale", False)),
            generation=int(payload.get("generation", 0)),  # type: ignore[arg-type]
            trace_id=str(trace_id) if trace_id is not None else None,
            spans=list(payload.get("spans") or []),  # type: ignore[arg-type]
        )


def graph_plan_response_payload(response, worker: int, pid: int,
                                trace_id: Optional[str] = None,
                                spans: Optional[List[Dict[str, object]]] = None,
                                generation: int = 0,
                                ) -> Dict[str, object]:
    """Wire form of one :class:`~repro.planner.service.GraphPlanResponse`.

    The same shape discipline as :func:`plan_response_payload`: optional
    tracing fields stay off the wire when absent, and every numeric field
    defaults cleanly for forward compatibility.
    """
    stats = response.search_stats
    payload: Dict[str, object] = {
        "recommendations": [recommendation_to_dict(r) for r in response.recommendations],
        "signature_key": response.signature.key(),
        "assignment": list(response.assignment),
        "makespan": response.makespan,
        "greedy_makespan": response.greedy_makespan,
        "method": response.method,
        "cache_hit": response.cache_hit,
        "coalesced": response.coalesced,
        "planning_time": response.planning_time,
        "num_simulated": stats.num_simulated if stats is not None else 0,
        "num_pruned": stats.num_pruned if stats is not None else 0,
        "worker": worker,
        "pid": pid,
        "plan_age": response.plan_age,
        "stale": response.stale,
        "generation": generation,
    }
    if trace_id is not None:
        payload["trace_id"] = trace_id
    if spans is not None:
        payload["spans"] = spans
    return payload


def plan_response_payload(response: PlanResponse, worker: int, pid: int,
                          trace_id: Optional[str] = None,
                          spans: Optional[List[Dict[str, object]]] = None,
                          generation: int = 0,
                          ) -> Dict[str, object]:
    """Wire form of one :class:`~repro.planner.service.PlanResponse`.

    Args:
        response: the in-process service's answer.
        worker: index of the worker that computed/served it.
        pid: that worker's OS process id.
        trace_id: the trace the worker served under, when tracing was on.
        spans: the worker's recorded spans for this request (wire-form
            dicts); omitted from the payload when ``None``.
        generation: the worker's restart incarnation (protocol 1.4).
    """
    stats = response.search_stats
    payload: Dict[str, object] = {
        "recommendations": [recommendation_to_dict(r) for r in response.recommendations],
        "signature_key": response.signature.key(),
        "cache_hit": response.cache_hit,
        "coalesced": response.coalesced,
        "planning_time": response.planning_time,
        "num_simulated": stats.num_simulated if stats is not None else 0,
        "num_pruned": stats.num_pruned if stats is not None else 0,
        "worker": worker,
        "pid": pid,
        "plan_age": response.plan_age,
        "stale": response.stale,
        "generation": generation,
    }
    if trace_id is not None:
        payload["trace_id"] = trace_id
    if spans is not None:
        payload["spans"] = spans
    return payload
