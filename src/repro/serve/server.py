"""PlanServer: a shared-nothing multi-process front over the PlannerService.

The ROADMAP's serving target ("heavy traffic from millions of users") needs
plan selection to scale past one process.  :class:`PlanServer` is the first
process boundary in the codebase:

* the **parent** binds one listening socket (Unix-domain by default, TCP on
  request), accepts connections, and deals each accepted descriptor to a
  worker **round-robin** over a per-worker control pipe (``SCM_RIGHTS`` fd
  passing via :mod:`multiprocessing.reduction`) — deterministic spread, no
  thundering herd, and the parent never touches request bytes;
* each **worker** is a forked process owning a private
  :class:`~repro.planner.service.PlannerService` (and therefore its own plan
  cache, search, and simulated runtimes) — shared-nothing: workers never
  exchange state, so there are no cross-process locks on the hot path;
* a worker runs a :mod:`selectors` event loop multiplexing its control pipe
  and every connection it owns, decoding frames with
  :class:`~repro.serve.protocol.FrameDecoder` and answering ``plan`` /
  ``ping`` / ``stats`` requests;
* the parent aggregates per-worker counters on demand
  (:meth:`PlanServer.aggregate_stats`) by round-tripping a stats request on
  each control pipe — the only cross-worker communication, and it never
  blocks serving;
* a **supervisor** thread in the parent (on by default, see
  ``auto_restart``) detects dead workers and re-forks them in place with a
  bumped ``generation``, backing off exponentially per
  :class:`RestartPolicy` and abandoning a worker whose restarts storm; a
  connection whose hand-off fails because its worker died is re-dealt to a
  survivor, so accepted requests are not lost to crashes;
* deterministic fault injection (``fault_plan``, see
  :mod:`repro.serve.faults`) lets tests crash, delay, or corrupt exactly
  one request at an exact ``(worker, generation, ordinal)`` coordinate —
  no sleeps, no signal races.

Workers warm-start independently: point ``service_options["store_path"]`` at
a shared plan store and every worker loads it at boot; the bounded cache
(``cache_capacity`` / ``cache_max_bytes`` / ``cache_ttl_seconds``) keeps
long-lived workers from growing without bound.

Worker processes are created with the ``fork`` start method (the listening
parent's state — ``sys.path``, loaded modules — carries over and fd passing
stays cheap); this is the platform norm for pre-fork servers and matches the
Linux/macOS CI targets.
"""

from __future__ import annotations

import multiprocessing
import os
import selectors
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import reduction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.workloads import Workload
from repro.core.graph import OpGraph
from repro.obs.metrics import MetricsRegistry, empty_snapshot, merge_snapshots
from repro.obs.reqlog import RequestLog
from repro.obs.tracing import Tracer
from repro.planner.service import PlannerService
from repro.serve import protocol
from repro.serve.faults import (
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_EXIT,
    FAULT_EXIT_CODE,
    FAULT_TORN,
    FAULT_TORN_HANDOFF,
    PARENT_ACTIONS,
    WORKER_ACTIONS,
    FaultPlan,
)
from repro.serve.stats import ServerStats, WorkerStats
from repro.topology.machines import MachineSpec
from repro.util.logging import get_logger, log_event

_LOG = get_logger("serve.server")

#: Accepted address forms: ``None`` (auto Unix socket), a Unix socket path,
#: or a ``(host, port)`` TCP endpoint (``port=0`` auto-assigns).
Address = Union[None, str, Tuple[str, int]]

#: Ceiling on buffered-but-unread response bytes per connection.  A client
#: that pipelines requests while never reading replies is hoarding, not
#: slow; past this the worker closes the connection instead of growing
#: without bound.
MAX_CONNECTION_BACKLOG_BYTES = 8 << 20


def _remove_stale_unix_socket(path: str) -> None:
    """Unlink a leftover socket file from a crashed server, if truly dead.

    A SIGKILLed server never reaches the ``os.unlink`` in ``stop()``, so its
    socket file would make every restart fail with EADDRINUSE.  Probe it: a
    refused connect means nothing is listening, so the file is stale and
    safe to remove; an accepted connect means a live server owns the address
    (leave it — bind() will report the conflict).  Non-socket files are
    never touched.
    """
    import stat

    try:
        if not stat.S_ISSOCK(os.stat(path).st_mode):
            return
    except OSError:
        return  # nothing there: the normal fresh-start path
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(path)
        return  # a live server answered; let bind() surface the conflict
    except OSError:
        pass
    finally:
        probe.close()
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - raced with another starter
        pass


def _fork_context():
    """The multiprocessing context workers are spawned from (pre-fork model)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError as error:  # pragma: no cover - non-POSIX platforms
        raise RuntimeError(
            "PlanServer requires the 'fork' start method (POSIX pre-fork model)"
        ) from error


@dataclass(frozen=True)
class RestartPolicy:
    """How aggressively the parent revives dead workers.

    Restarts are backed off exponentially per consecutive death
    (``backoff_base * backoff_multiplier ** n``, capped at ``backoff_cap``)
    so a worker that crashes on its very first request cannot spin the fork
    path; a quiet period of ``window_seconds`` resets the backoff.  When
    ``max_restarts_per_window`` is set and a worker dies more often than
    that within one window, the parent *abandons* it — the storm is treated
    as a persistent fault, not bad luck — and the remaining workers carry
    the traffic.
    """

    #: Delay before the first restart after a quiet period, seconds.
    backoff_base: float = 0.05
    #: Growth factor applied per consecutive death.
    backoff_multiplier: float = 2.0
    #: Ceiling on any single restart delay, seconds.
    backoff_cap: float = 2.0
    #: Sliding window for storm detection (and backoff reset), seconds.
    window_seconds: float = 30.0
    #: Deaths tolerated per window before the worker is abandoned
    #: (``None`` = never abandon, keep backing off forever).
    max_restarts_per_window: Optional[int] = None


class _RestartState:
    """Per-worker restart bookkeeping (backoff and storm detection).

    Pure and clock-injectable: every decision flows through
    :meth:`record_death`, so tests can drive the backoff schedule with a
    fake clock instead of sleeping through it.
    """

    def __init__(self, policy: RestartPolicy, clock=time.monotonic) -> None:
        self.policy = policy
        self.clock = clock
        #: Death timestamps inside the current window (pruned on record).
        self.deaths: List[float] = []
        #: Consecutive deaths since the last quiet period.
        self.consecutive = 0
        #: True once the storm limit tripped; the worker stays down.
        self.abandoned = False

    def record_death(self) -> Optional[float]:
        """Note one death; return the restart delay, or None to abandon.

        Deaths older than the policy window are forgotten first; an empty
        window means the worker had been stable, so the backoff restarts
        from ``backoff_base``.
        """
        now = self.clock()
        self.deaths = [t for t in self.deaths
                       if now - t < self.policy.window_seconds]
        if not self.deaths:
            self.consecutive = 0
        self.deaths.append(now)
        limit = self.policy.max_restarts_per_window
        if limit is not None and len(self.deaths) > limit:
            self.abandoned = True
            return None
        delay = min(self.policy.backoff_cap,
                    self.policy.backoff_base
                    * self.policy.backoff_multiplier ** self.consecutive)
        self.consecutive += 1
        return delay


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process (one incarnation)."""

    index: int
    process: "multiprocessing.process.BaseProcess"
    pipe: "multiprocessing.connection.Connection"
    #: Which incarnation of this worker slot the process is: 0 at boot,
    #: +1 per supervised restart.  Echoed in responses so clients and the
    #: fault plan can tell incarnations apart.
    generation: int = 0
    #: Connection hand-off attempts made to this incarnation (the ordinal
    #: parent-side faults match against).
    handoffs: int = 0
    #: Serializes parent *writes* to ``pipe`` (connection hand-offs from the
    #: dispatcher thread, stats requests from caller threads).  Held only
    #: for the duration of a send, never across a reply wait, so monitoring
    #: can never stall dispatch.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Serializes stats *round-trips* (the only parent-side reads) so two
    #: concurrent aggregations cannot steal each other's replies.
    stats_lock: threading.Lock = field(default_factory=threading.Lock)
    #: Set when the control pipe failed; the worker is no longer routable.
    dead: bool = False

    def mark_dead(self) -> None:
        """Retire the worker: closing the pipe unblocks a worker waiting on
        it (EOF) so a half-delivered hand-off cannot wedge it forever."""
        self.dead = True
        try:
            self.pipe.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class PlanServer:
    """Serve partitioning plans from ``num_workers`` forked planner processes.

    Args:
        machine: the machine the workers plan for.
        num_workers: size of the pre-forked worker fleet (>= 1).
        address: where to listen — ``None`` picks a fresh Unix socket under a
            private temp directory; a string is used as a Unix socket path;
            an ``(host, port)`` tuple listens on TCP (``port=0`` auto-picks,
            the resolved port appears in :attr:`address` after start).
        backlog: listen backlog for the accept socket.
        service_options: keyword arguments forwarded verbatim to each
            worker's :class:`~repro.planner.service.PlannerService`
            (replication factors, cache bounds, store path, ...).
        enable_metrics: give each worker a live
            :class:`~repro.obs.metrics.MetricsRegistry`; per-worker snapshots
            are scrapeable via the ``metrics`` op and fleet-mergeable via
            :meth:`aggregate_metrics`.  Off by default (no measurable cost).
        enable_tracing: give each worker a
            :class:`~repro.obs.tracing.Tracer` (role ``worker-<i>``); traced
            ``plan`` requests adopt the client's context and return their
            spans in the response.  Off by default.
        reqlog_dir: directory for the serving telemetry log; each worker
            appends to its own ``requests-<i>.jsonl`` there (shared-nothing:
            one writer per file).  ``None`` (default) disables request
            logging.
        refresh_options: when given, each worker starts its own
            :class:`~repro.planner.refresh.BackgroundRefresher` (constructed
            *after* the fork, so its threads live in the worker) with these
            keyword arguments — stale-while-revalidate revalidation, pre-TTL
            refresh, prewarming, and drift re-planning all happen inside the
            worker, off its request path.  ``None`` (default) serves without
            background refresh, at zero added cost.
        auto_restart: when True (default) the parent runs a supervisor
            thread that detects dead workers and re-forks them in place —
            same worker index, fresh process, ``generation`` bumped by one —
            with stats, metrics, request logging, and background refresh
            re-attached exactly as at boot.  Restart storms are rate-limited
            by ``restart_policy``.
        restart_policy: backoff/abandonment knobs for supervision; the
            default :class:`RestartPolicy` backs off exponentially and never
            abandons.
        fault_plan: a deterministic :class:`~repro.serve.faults.FaultPlan`
            injected into the fleet for testing — worker-side faults (exit /
            drop / torn / delay) fire inside workers keyed on
            ``(worker, generation, request ordinal)``; the parent-side
            ``torn_handoff`` fault corrupts a connection hand-off so the
            worker dies mid-transfer and the parent re-deals the same
            connection to a survivor.  ``None`` (default) injects nothing.

    Use as a context manager or call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        num_workers: int = 2,
        address: Address = None,
        backlog: int = 128,
        service_options: Optional[Dict[str, object]] = None,
        enable_metrics: bool = False,
        enable_tracing: bool = False,
        reqlog_dir: Optional[str] = None,
        refresh_options: Optional[Dict[str, object]] = None,
        auto_restart: bool = True,
        restart_policy: Optional[RestartPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.machine = machine
        self.num_workers = num_workers
        self.backlog = backlog
        self.service_options = dict(service_options or {})
        self.enable_metrics = enable_metrics
        self.enable_tracing = enable_tracing
        self.reqlog_dir = reqlog_dir
        self.refresh_options = (dict(refresh_options)
                                if refresh_options is not None else None)
        self.auto_restart = auto_restart
        self.restart_policy = restart_policy or RestartPolicy()
        self._fault_plan = fault_plan
        self._requested_address = address
        #: The resolved listening endpoint (set by :meth:`start`): the Unix
        #: socket path, or the bound ``(host, port)`` tuple.
        self.address: Union[str, Tuple[str, int], None] = None
        self._listener: Optional[socket.socket] = None
        self._workers: List[_WorkerHandle] = []
        self._dispatcher: Optional[threading.Thread] = None
        self._supervisor: Optional[threading.Thread] = None
        self._restart_states: Dict[int, _RestartState] = {}
        self._pending_restarts: Dict[int, float] = {}
        self._restart_counts: Dict[int, int] = {}
        self._supervisor_lock = threading.Lock()
        #: Parent-side registry holding supervision metrics (restart counts);
        #: merged into :meth:`aggregate_metrics` output.
        self._parent_metrics = MetricsRegistry() if enable_metrics else None
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._unix_path: Optional[str] = None
        self._stats_seq = 0
        self._stats_seq_lock = threading.Lock()
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Union[str, Tuple[str, int]]:
        """Bind, fork the workers, and begin dispatching connections.

        Returns:
            The resolved address clients should connect to.
        """
        if self._started:
            raise RuntimeError("PlanServer already started")
        self._started = True
        self._listener = self._bind()
        for index in range(self.num_workers):
            self._workers.append(self._spawn_worker(index, generation=0))
            self._restart_states[index] = _RestartState(self.restart_policy)
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="plan-dispatch", daemon=True)
        self._dispatcher.start()
        if self.auto_restart:
            self._supervisor = threading.Thread(target=self._supervise_loop,
                                                name="plan-supervisor",
                                                daemon=True)
            self._supervisor.start()
        assert self.address is not None
        return self.address

    def _spawn_worker(self, index: int, generation: int) -> _WorkerHandle:
        """Fork one worker process (initial boot and supervised restarts).

        A forked child inherits copies of every fd open at fork time: the
        listener and the parent ends of every *live* sibling pipe.  Each of
        those copies is handed to the child as ``unwanted`` so it can close
        them immediately — a surviving copy would defeat EOF delivery when
        the parent closes or drops a pipe.  (Sibling *child* ends are closed
        in the parent right after each fork, so they are never inherited.)
        """
        ctx = _fork_context()
        parent_end, child_end = ctx.Pipe(duplex=True)
        unwanted = [parent_end]
        unwanted.extend(h.pipe for h in self._workers if not h.dead)
        process = ctx.Process(
            target=_worker_main,
            args=(index, child_end, unwanted, self._listener,
                  self.machine, self.service_options),
            kwargs={"enable_metrics": self.enable_metrics,
                    "enable_tracing": self.enable_tracing,
                    "reqlog_dir": self.reqlog_dir,
                    "refresh_options": self.refresh_options,
                    "generation": generation,
                    "fault_plan": self._fault_plan},
            daemon=True,
            name=f"plan-worker-{index}",
        )
        process.start()
        child_end.close()
        return _WorkerHandle(index=index, process=process, pipe=parent_end,
                             generation=generation)

    def _bind(self) -> socket.socket:
        address = self._requested_address
        if address is None or isinstance(address, str):
            if address is None:
                self._tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
                address = os.path.join(self._tempdir.name, "plan-server.sock")
            _remove_stale_unix_socket(address)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                listener.bind(address)
            except OSError:
                listener.close()
                raise
            self._unix_path = address
            self.address = address
        else:
            host, port = address
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, port))
            except OSError:
                listener.close()
                raise
            self.address = listener.getsockname()[:2]
        listener.listen(self.backlog)
        return listener

    def _dispatch_loop(self) -> None:
        """Accept connections and deal each to the next live worker."""
        assert self._listener is not None
        turn = 0
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            turn, handed_off = self._deal_connection(conn, turn)
            conn.close()  # worker holds its own duplicate now (or no one will)
            if handed_off:
                continue
            if all(h.dead or not h.process.is_alive()
                   for h in self._workers) and not self._restart_possible():
                return  # nobody can ever serve again

    def _deal_connection(self, conn: socket.socket,
                         turn: int) -> Tuple[int, bool]:
        """Deal one accepted connection to a live worker (round-robin).

        A failed hand-off — the worker died between the announcement and the
        fd transfer, or a ``torn_handoff`` fault corrupted the transfer —
        retires that worker and moves the *same* connection to the next
        survivor, so an accepted request is never lost to a worker death.
        When no worker is currently live but supervision may yet revive one,
        the dealer waits (bounded) instead of dropping the connection.

        Returns:
            ``(next_turn, handed_off)``.
        """
        deadline = time.monotonic() + 5.0
        while True:
            workers = self._workers
            for offset in range(len(workers)):
                handle = workers[(turn + offset) % len(workers)]
                if handle.dead or not handle.process.is_alive():
                    continue
                fault = None
                if self._fault_plan:
                    fault = self._fault_plan.match(
                        handle.index, handle.generation, handle.handoffs,
                        actions=PARENT_ACTIONS)
                handle.handoffs += 1
                if fault is not None and fault.action == FAULT_TORN_HANDOFF:
                    # Announce a connection, then send plain pipe bytes where
                    # the worker expects SCM_RIGHTS ancillary data: its
                    # recv_handle fails, it exits, and this loop re-deals the
                    # connection to the next survivor.
                    log_event(_LOG, "serve.fault.torn_handoff",
                              worker=handle.index,
                              generation=handle.generation)
                    try:
                        with handle.lock:
                            handle.pipe.send(("conn",))
                            handle.pipe.send(("torn",))
                    except (OSError, ValueError):
                        pass
                    with handle.lock:
                        handle.mark_dead()
                    continue
                try:
                    with handle.lock:
                        handle.pipe.send(("conn",))
                        reduction.send_handle(handle.pipe, conn.fileno(),
                                              handle.process.pid)
                except (OSError, ValueError):
                    # The hand-off may have failed between the announcement
                    # and the fd transfer; retire the worker so it cannot sit
                    # blocked waiting for an fd that will never arrive.
                    with handle.lock:
                        handle.mark_dead()
                    continue
                return (turn + offset + 1) % len(workers), True
            # No live worker this pass: wait for supervision to revive one
            # (bounded), unless nothing can come back.
            if (self._stopped or not self._restart_possible()
                    or time.monotonic() >= deadline):
                return turn, False
            time.sleep(0.005)

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #
    def _restart_possible(self) -> bool:
        """Whether supervision may yet bring a worker back."""
        if not self.auto_restart or self._stopped:
            return False
        return any(not state.abandoned
                   for state in self._restart_states.values())

    def _supervise_loop(self) -> None:
        """Detect dead workers and re-fork them, storm-limited by policy."""
        while not self._stopped:
            for slot, handle in enumerate(list(self._workers)):
                if self._stopped:
                    break
                state = self._restart_states[handle.index]
                if state.abandoned:
                    continue
                if not handle.dead and handle.process.is_alive():
                    continue
                due = self._pending_restarts.get(handle.index)
                if due is None:
                    delay = state.record_death()
                    with handle.lock:
                        handle.mark_dead()
                    if delay is None:
                        log_event(_LOG, "serve.worker.abandoned",
                                  worker=handle.index,
                                  generation=handle.generation,
                                  deaths=len(state.deaths))
                        continue
                    self._pending_restarts[handle.index] = (
                        time.monotonic() + delay)
                elif time.monotonic() >= due:
                    del self._pending_restarts[handle.index]
                    self._restart_worker(slot, handle)
            time.sleep(0.02)

    def _restart_worker(self, slot: int, old: _WorkerHandle) -> None:
        """Replace one dead worker with a fresh fork of the next generation."""
        try:
            old.process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already reaped
            pass
        old.process.join(timeout=1.0)
        handle = self._spawn_worker(old.index, generation=old.generation + 1)
        self._workers[slot] = handle
        with self._supervisor_lock:
            self._restart_counts[old.index] = (
                self._restart_counts.get(old.index, 0) + 1)
        if self._parent_metrics is not None:
            self._parent_metrics.counter(
                "repro_serve_worker_restarts_total",
                help="Workers re-forked by the parent supervisor.",
                worker=str(old.index)).inc()
        log_event(_LOG, "serve.worker.restart", worker=old.index,
                  generation=handle.generation, pid=handle.process.pid or 0)

    def restart_counts(self) -> Dict[int, int]:
        """Supervised restarts per worker index (empty when none happened)."""
        with self._supervisor_lock:
            return dict(self._restart_counts)

    def abandoned_workers(self) -> List[int]:
        """Worker indices supervision gave up on (storm limit tripped)."""
        return sorted(index for index, state in self._restart_states.items()
                      if state.abandoned)

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the fleet down: stop accepting, drain workers, reap processes.

        Args:
            timeout: per-worker grace period before a hard terminate.

        Safe to call more than once.
        """
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopped = True
        # Supervision must wind down before workers are told to exit, or a
        # shutting-down worker would be "detected dead" and resurrected.
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        if self._listener is not None:
            # shutdown() before close(): a bare close() does not wake a thread
            # blocked in accept() on Linux, which would stall stop() until the
            # join timeout.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        for handle in self._workers:
            try:
                with handle.lock:
                    handle.pipe.send(("shutdown",))
            except (OSError, ValueError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            try:
                handle.pipe.close()
            except OSError:
                pass
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "PlanServer":
        """Start on entry (no-op if :meth:`start` was already called)."""
        if not self._started:
            self.start()
        return self

    def __exit__(self, *_exc) -> None:
        """Stop the fleet on exit."""
        self.stop()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def alive_workers(self) -> List[int]:
        """Indices of workers that are alive and still routable."""
        return [h.index for h in self._workers
                if not h.dead and h.process.is_alive()]

    def aggregate_stats(self, timeout: float = 10.0) -> ServerStats:
        """Collect and sum every live worker's serving/cache counters.

        Each worker answers a stats round-trip on its control pipe between
        requests; a worker that stays busy past ``timeout`` (or died) is
        simply absent from the snapshot.

        Args:
            timeout: per-worker ceiling on waiting for the reply, seconds.

        Returns:
            The fleet-wide :class:`~repro.serve.stats.ServerStats`.
        """
        if not self._started:
            raise RuntimeError("PlanServer not started")
        snapshots: List[WorkerStats] = []
        for handle in self._workers:
            if handle.dead or not handle.process.is_alive():
                continue
            with self._stats_seq_lock:
                self._stats_seq += 1
                seq = self._stats_seq
            try:
                # stats_lock serializes whole round-trips (reply reads);
                # handle.lock covers only the send, so the dispatcher's
                # connection hand-offs are never blocked behind a slow
                # worker's reply wait.
                with handle.stats_lock:
                    with handle.lock:
                        handle.pipe.send(("stats", seq))
                    # One deadline for the whole wait: draining a stale reply
                    # (from a timed-out earlier round-trip) must not restart
                    # the window, or ``timeout`` stops being a ceiling.
                    deadline = time.monotonic() + timeout
                    while True:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not handle.pipe.poll(remaining):
                            break
                        message = handle.pipe.recv()
                        if message[0] == "stats" and message[1] == seq:
                            snapshots.append(WorkerStats.from_dict(message[2]))
                            break
            except (OSError, EOFError, ValueError):
                continue
        return ServerStats.from_workers(snapshots,
                                        restarts=self.restart_counts())

    def aggregate_metrics(self, timeout: float = 10.0) -> Dict[str, object]:
        """Collect and merge every live worker's metrics-registry snapshot.

        Same control-pipe round-trip discipline as :meth:`aggregate_stats`;
        per-worker snapshots merge by summation
        (:func:`repro.obs.metrics.merge_snapshots`), so counters and
        histograms read as fleet totals.  The parent's own supervision
        counters (``repro_serve_worker_restarts_total``) merge in too.  A
        fleet started without ``enable_metrics`` returns an empty snapshot.

        Args:
            timeout: per-worker ceiling on waiting for the reply, seconds.

        Returns:
            One merged snapshot dict (render with
            :func:`repro.obs.metrics.render_prometheus`).
        """
        if not self._started:
            raise RuntimeError("PlanServer not started")
        snapshots: List[Dict[str, object]] = []
        for handle in self._workers:
            if handle.dead or not handle.process.is_alive():
                continue
            with self._stats_seq_lock:
                self._stats_seq += 1
                seq = self._stats_seq
            try:
                with handle.stats_lock:
                    with handle.lock:
                        handle.pipe.send(("metrics", seq))
                    deadline = time.monotonic() + timeout
                    while True:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not handle.pipe.poll(remaining):
                            break
                        message = handle.pipe.recv()
                        if message[0] == "metrics" and message[1] == seq:
                            snapshots.append(message[2])
                            break
            except (OSError, EOFError, ValueError):
                continue
        if self._parent_metrics is not None:
            snapshots.append(self._parent_metrics.snapshot())
        return merge_snapshots(snapshots)


# ---------------------------------------------------------------------- #
# worker process
# ---------------------------------------------------------------------- #
class _Connection:
    """One client connection a worker owns: socket, frame decoder, write buffer.

    Responses are queued into ``outbuf`` and flushed opportunistically, so a
    slow-reading client never blocks the worker's event loop (no head-of-line
    blocking across connections); the selector watches for writability only
    while there is buffered output.
    """

    __slots__ = ("sock", "decoder", "outbuf")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.decoder = protocol.FrameDecoder()
        self.outbuf = bytearray()

    def flush(self) -> bool:
        """Write as much buffered output as the socket accepts right now.

        Returns False when the connection failed and must be closed.
        """
        while self.outbuf:
            try:
                sent = self.sock.send(self.outbuf)
            except (BlockingIOError, InterruptedError):
                return True  # kernel buffer full: wait for EVENT_WRITE
            except OSError:
                return False
            if sent == 0:  # pragma: no cover - send() returning 0 is rare
                return False
            del self.outbuf[:sent]
        return True

    def events(self) -> int:
        """The selector interest set for the current buffer state."""
        interest = selectors.EVENT_READ
        if self.outbuf:
            interest |= selectors.EVENT_WRITE
        return interest


def _worker_main(index: int, ctrl, unwanted, listener,
                 machine: MachineSpec,
                 service_options: Dict[str, object],
                 *,
                 enable_metrics: bool = False,
                 enable_tracing: bool = False,
                 reqlog_dir: Optional[str] = None,
                 refresh_options: Optional[Dict[str, object]] = None,
                 generation: int = 0,
                 fault_plan: Optional[FaultPlan] = None) -> None:
    """Entry point of one forked worker (runs until told to shut down).

    Args:
        index: the worker's position in the fleet.
        ctrl: this worker's end of its control pipe.
        unwanted: inherited pipe ends belonging to the parent or siblings —
            closed immediately so pipe EOFs actually deliver fleet-wide.
        listener: the parent's accept socket — closed too; workers never
            accept.
        machine: the machine plans are computed for.
        service_options: forwarded to this worker's PlannerService.
        enable_metrics: build a live per-worker metrics registry.
        enable_tracing: build a per-worker tracer (role ``worker-<index>``).
        reqlog_dir: when set, append served requests to
            ``<reqlog_dir>/requests-<index>.jsonl``.
        refresh_options: when set, the service starts (and owns) a
            per-worker background refresher with these kwargs — constructed
            here, after the fork, so its daemon threads belong to this
            process.
        generation: which incarnation of this worker slot this process is
            (0 at boot; bumped per supervised restart).  Echoed in every
            response so clients can observe restarts.
        fault_plan: deterministic faults to inject while serving — matched
            per decoded request against ``(index, generation, ordinal)``.
    """
    for conn in unwanted:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
    try:
        listener.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass
    metrics = MetricsRegistry() if enable_metrics else None
    tracer = Tracer(role=f"worker-{index}") if enable_tracing else None
    request_log = (RequestLog(os.path.join(reqlog_dir, f"requests-{index}.jsonl"))
                   if reqlog_dir is not None else None)
    service = PlannerService(machine, metrics=metrics, tracer=tracer,
                             request_log=request_log, worker_index=index,
                             refresh_options=refresh_options,
                             **service_options)  # type: ignore[arg-type]
    log_event(_LOG, "serve.worker.start", worker=index, pid=os.getpid(),
              generation=generation, metrics=enable_metrics,
              tracing=enable_tracing, reqlog=reqlog_dir or "",
              refresh=refresh_options is not None)
    selector = selectors.DefaultSelector()
    selector.register(ctrl, selectors.EVENT_READ, data="ctrl")
    connections: Dict[int, _Connection] = {}
    running = True
    # Per-incarnation request ordinal: the deterministic coordinate faults
    # are keyed on.  Counts every decoded client request, answered or not.
    request_ordinal = 0

    def close_connection(fd: int) -> None:
        conn = connections.pop(fd)
        try:
            selector.unregister(conn.sock)
        except KeyError:  # pragma: no cover - defensive
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def pump(fd: int, conn: _Connection) -> None:
        """Flush buffered output and keep the interest set in sync."""
        if not conn.flush():
            close_connection(fd)
            return
        if len(conn.outbuf) > MAX_CONNECTION_BACKLOG_BYTES:
            log_event(_LOG, "serve.connection.backlog_closed", worker=index,
                      buffered=len(conn.outbuf))
            close_connection(fd)  # hoarding client: answers piling up unread
            return
        selector.modify(conn.sock, conn.events(), data="client")

    try:
        while running:
            for key, events in selector.select(timeout=1.0):
                if key.data == "ctrl":
                    running = _drain_control(index, ctrl, service, selector,
                                             connections, metrics=metrics)
                    continue
                sock = key.fileobj
                assert isinstance(sock, socket.socket)
                fd = sock.fileno()
                conn = connections.get(fd)
                if conn is None:  # pragma: no cover - closed earlier this round
                    continue
                if events & selectors.EVENT_WRITE:
                    pump(fd, conn)
                    if fd not in connections:
                        continue
                if not events & selectors.EVENT_READ:
                    continue
                try:
                    data = sock.recv(1 << 16)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    close_connection(fd)
                    continue
                if not data:
                    close_connection(fd)
                    continue
                try:
                    messages = conn.decoder.feed(data)
                except protocol.ProtocolError:
                    close_connection(fd)
                    continue
                for message in messages:
                    fault = None
                    if fault_plan:
                        fault = fault_plan.match(index, generation,
                                                 request_ordinal,
                                                 actions=WORKER_ACTIONS)
                    request_ordinal += 1
                    if fault is not None:
                        log_event(_LOG, "serve.fault.fire", worker=index,
                                  generation=generation, action=fault.action,
                                  ordinal=request_ordinal - 1)
                        if fault.action == FAULT_EXIT:
                            # Simulated crash: no reply, no cleanup, a
                            # distinctive exit code the supervisor test can
                            # assert on.  os._exit skips the finally block
                            # on purpose — that is what dying looks like.
                            os._exit(FAULT_EXIT_CODE)
                        if fault.action == FAULT_DROP:
                            close_connection(fd)
                            break
                        if fault.action == FAULT_TORN:
                            # A header promising more bytes than follow: the
                            # client's decoder sees a truncated frame when
                            # the close lands.
                            torn = protocol.HEADER.pack(64) + b"\x00" * 10
                            try:
                                conn.sock.setblocking(True)
                                conn.sock.sendall(torn)
                            except OSError:
                                pass
                            close_connection(fd)
                            break
                        if fault.action == FAULT_DELAY:
                            time.sleep(fault.delay_seconds)
                    response = _dispatch(index, service, message,
                                         tracer=tracer, metrics=metrics,
                                         generation=generation)
                    try:
                        conn.outbuf.extend(protocol.encode_frame(response))
                    except protocol.ProtocolError:  # pragma: no cover - oversized
                        close_connection(fd)
                        break
                else:
                    pump(fd, conn)
    finally:
        for fd in list(connections):
            close_connection(fd)
        selector.close()
        service.close()
        if request_log is not None:
            request_log.close()
        log_event(_LOG, "serve.worker.stop", worker=index, pid=os.getpid())
        try:
            ctrl.close()
        except OSError:
            pass


def _drain_control(index: int, ctrl, service: PlannerService,
                   selector: selectors.BaseSelector,
                   connections: Dict[int, _Connection],
                   metrics: Optional[MetricsRegistry] = None,
                   ) -> bool:
    """Handle every pending parent command; returns False on shutdown."""
    while True:
        try:
            if not ctrl.poll(0):
                return True
            message = ctrl.recv()
        except (OSError, EOFError):
            return False  # parent went away: exit rather than serve orphaned
        op = message[0]
        if op == "conn":
            # The fd rides the same pipe as ancillary data right behind the
            # announcement, so receive it before looking at further commands.
            # If the parent's send_handle failed after the announcement it
            # closes the pipe, which surfaces here as EOF/OSError — treat the
            # control channel as gone rather than blocking forever.
            try:
                fd = reduction.recv_handle(ctrl)
            except (OSError, EOFError, RuntimeError):
                return False
            sock = socket.socket(fileno=fd)
            sock.setblocking(False)
            connections[sock.fileno()] = _Connection(sock)
            selector.register(sock, selectors.EVENT_READ, data="client")
        elif op == "stats":
            try:
                ctrl.send(("stats", message[1],
                           _worker_snapshot(index, service).to_dict()))
            except (OSError, ValueError):
                return False
        elif op == "metrics":
            try:
                ctrl.send(("metrics", message[1],
                           metrics.snapshot() if metrics is not None
                           else empty_snapshot()))
            except (OSError, ValueError):
                return False
        elif op == "shutdown":
            return False


def _worker_snapshot(index: int, service: PlannerService) -> WorkerStats:
    """This worker's identity + counters (the one source for both stats paths)."""
    return WorkerStats(worker=index, pid=os.getpid(),
                       service=service.stats(), cache=service.cache_stats())


def _dispatch(index: int, service: PlannerService,
              message: Dict[str, object],
              tracer: Optional[Tracer] = None,
              metrics: Optional[MetricsRegistry] = None,
              generation: int = 0) -> Dict[str, object]:
    """Answer one decoded request; failures become error responses.

    A ``plan`` request carrying a ``trace`` context on a tracing-enabled
    worker runs inside an adopted remote context under a ``worker.plan``
    span, and the spans recorded for that trace ride back in the payload
    (drained, so the worker's tracer does not accumulate exported spans).

    Only :class:`Exception` is converted — ``KeyboardInterrupt`` /
    ``SystemExit`` propagate so an interrupted worker exits instead of
    answering with the interrupt and serving on.
    """
    try:
        op = message.get("op")
        if op == "plan":
            workload = Workload.from_dict(message["workload"])  # type: ignore[arg-type]
            raw_k = message.get("top_k")
            top_k = None if raw_k is None else int(raw_k)  # type: ignore[arg-type]
            trace = message.get("trace")
            if tracer is not None and isinstance(trace, dict):
                trace_id = str(trace.get("trace_id") or "")
                parent = trace.get("parent_span_id")
                with tracer.remote_context(
                        trace_id, str(parent) if parent is not None else None):
                    with tracer.span("worker.plan", worker=index):
                        response = service.plan(workload, top_k=top_k)
                return protocol.ok_response(protocol.plan_response_payload(
                    response, index, os.getpid(), trace_id=trace_id,
                    spans=tracer.drain(trace_id), generation=generation))
            response = service.plan(workload, top_k=top_k)
            return protocol.ok_response(
                protocol.plan_response_payload(response, index, os.getpid(),
                                               generation=generation))
        if op == "plan_graph":
            graph = OpGraph.from_dict(message["graph"])  # type: ignore[arg-type]
            raw_lattice = message.get("lattice_size")
            lattice = None if raw_lattice is None else int(raw_lattice)  # type: ignore[arg-type]
            trace = message.get("trace")
            if tracer is not None and isinstance(trace, dict):
                trace_id = str(trace.get("trace_id") or "")
                parent = trace.get("parent_span_id")
                with tracer.remote_context(
                        trace_id, str(parent) if parent is not None else None):
                    with tracer.span("worker.plan_graph", worker=index):
                        response = service.plan_graph(graph,
                                                      lattice_size=lattice)
                return protocol.ok_response(protocol.graph_plan_response_payload(
                    response, index, os.getpid(), trace_id=trace_id,
                    spans=tracer.drain(trace_id), generation=generation))
            response = service.plan_graph(graph, lattice_size=lattice)
            return protocol.ok_response(
                protocol.graph_plan_response_payload(response, index,
                                                     os.getpid(),
                                                     generation=generation))
        if op == "ping":
            return protocol.ok_response({"worker": index, "pid": os.getpid(),
                                         "generation": generation,
                                         "protocol": list(protocol.PROTOCOL_VERSION)})
        if op == "stats":
            return protocol.ok_response(_worker_snapshot(index, service).to_dict())
        if op == "metrics":
            return protocol.ok_response(metrics.snapshot() if metrics is not None
                                        else empty_snapshot())
        raise ValueError(f"unknown op: {op!r}")
    except Exception as error:  # noqa: BLE001 - every failure must answer
        return protocol.error_response(error)
