"""Cross-worker serving statistics: per-worker snapshots and their aggregate.

Each :class:`~repro.serve.server.PlanServer` worker is shared-nothing — it
owns a private :class:`~repro.planner.service.PlannerService` whose counters
(:class:`~repro.planner.service.ServiceStats`) and plan-cache counters
(:class:`~repro.planner.cache.CacheStats`) describe only that worker's
traffic.  This module carries those snapshots across the process boundary
(plain-dict serialization, reusing the dataclass field layout) and sums them
into the fleet-wide view the ROADMAP's "millions of users" target needs:
total requests, total hits, how the warm traffic spread across workers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.planner.cache import CacheStats
from repro.planner.service import ServiceStats


@dataclass
class WorkerStats:
    """One worker's identity plus its serving and cache counter snapshots."""

    worker: int
    pid: int
    service: ServiceStats
    cache: CacheStats

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "worker": self.worker,
            "pid": self.pid,
            "service": dataclasses.asdict(self.service),
            "cache": dataclasses.asdict(self.cache),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WorkerStats":
        """Rebuild a snapshot from :meth:`to_dict` output.

        Unknown counter fields (a newer worker reporting to an older parent)
        are dropped rather than failing the aggregation.
        """
        service_fields = {f.name for f in dataclasses.fields(ServiceStats)}
        cache_fields = {f.name for f in dataclasses.fields(CacheStats)}
        service_raw: Dict[str, object] = dict(payload.get("service") or {})  # type: ignore[arg-type]
        cache_raw: Dict[str, object] = dict(payload.get("cache") or {})  # type: ignore[arg-type]
        return cls(
            worker=int(payload.get("worker", -1)),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            service=ServiceStats(**{k: v for k, v in service_raw.items()
                                    if k in service_fields}),
            cache=CacheStats(**{k: v for k, v in cache_raw.items() if k in cache_fields}),
        )


#: ServiceStats fields that are extremes, not sums — aggregating them by
#: addition would fabricate a latency no single worker ever observed.
_MAX_FIELDS = frozenset({"max_planning_time"})


def aggregate_service_stats(parts: Sequence[ServiceStats]) -> ServiceStats:
    """Combine serving counters across workers.

    Additive counters (requests, hits, planning time totals...) sum;
    extremes (``max_planning_time``) take the max, so the fleet view
    preserves the slowest single request any worker actually served.

    Args:
        parts: per-worker :class:`ServiceStats` snapshots.

    Returns:
        One :class:`ServiceStats` holding the fleet totals (the derived
        ``hit_rate`` property then reads as the fleet-wide rate).
    """
    total = ServiceStats()
    for part in parts:
        for field in dataclasses.fields(ServiceStats):
            if field.name in _MAX_FIELDS:
                setattr(total, field.name,
                        max(getattr(total, field.name), getattr(part, field.name)))
            else:
                setattr(total, field.name,
                        getattr(total, field.name) + getattr(part, field.name))
    return total


@dataclass
class ServerStats:
    """The fleet view: per-worker snapshots plus their summed totals."""

    workers: List[WorkerStats]
    totals: ServiceStats
    #: Supervised restarts per worker index (parent-side accounting: a
    #: restarted worker starts its counters from zero, so its deaths are
    #: only visible here).  Empty when supervision never restarted anyone.
    restarts: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_workers(cls, workers: Sequence[WorkerStats],
                     restarts: Optional[Dict[int, int]] = None) -> "ServerStats":
        """Aggregate a set of per-worker snapshots.

        Args:
            workers: the per-worker counter snapshots that answered.
            restarts: the parent's per-worker restart counts, when the
                server runs supervised (``None`` keeps the field empty).
        """
        ordered = sorted(workers, key=lambda w: w.worker)
        return cls(workers=list(ordered),
                   totals=aggregate_service_stats([w.service for w in ordered]),
                   restarts=dict(restarts or {}))

    @property
    def num_workers(self) -> int:
        """How many workers reported."""
        return len(self.workers)

    @property
    def total_restarts(self) -> int:
        """Supervised worker restarts across the fleet's lifetime."""
        return sum(self.restarts.values())

    @property
    def workers_with_hits(self) -> int:
        """How many workers served at least one cache hit (traffic spread)."""
        return sum(1 for w in self.workers if w.service.cache_hits > 0)

    @property
    def workers_with_requests(self) -> int:
        """How many workers served at least one request."""
        return sum(1 for w in self.workers if w.service.requests > 0)

    @property
    def max_planning_time(self) -> float:
        """Slowest single request any worker served (a fleet extreme)."""
        return self.totals.max_planning_time

    @property
    def oldest_plan_age(self) -> Optional[float]:
        """Age of the oldest plan resident on any worker (``None`` when all
        caches are empty or predate age reporting)."""
        ages = [w.cache.oldest_age_seconds for w in self.workers
                if w.cache.oldest_age_seconds is not None]
        return max(ages) if ages else None

    def describe(self) -> str:
        """Human-readable multi-line summary (one row per worker + totals)."""
        lines = []
        for snap in self.workers:
            svc = snap.service
            restarted = self.restarts.get(snap.worker, 0)
            suffix = f", {restarted} restarts" if restarted else ""
            lines.append(
                f"worker {snap.worker} (pid {snap.pid}): {svc.requests} requests, "
                f"{svc.plans_computed} planned, {svc.cache_hits} hits "
                f"({svc.hit_rate:.0%}), {svc.coalesced_requests} coalesced, "
                f"cache {snap.cache.size}/{snap.cache.capacity} entries{suffix}"
            )
        totals = self.totals
        restart_note = (f", {self.total_restarts} worker restarts"
                        if self.total_restarts else "")
        lines.append(
            f"fleet ({self.num_workers} workers): {totals.requests} requests, "
            f"{totals.plans_computed} planned, {totals.cache_hits} hits "
            f"({totals.hit_rate:.0%}), {totals.candidates_pruned} of "
            f"{totals.candidates_pruned + totals.candidates_simulated} "
            f"candidate simulations pruned{restart_note}"
        )
        return "\n".join(lines)
