"""repro.sim — the unified discrete-event simulation engine.

Every time path in the library prices through this package: the direct
executor and the IR executor emit typed events instead of charging clocks
inline, the classical baselines emit event traces alongside their retained
closed-form models, and the planner's critical-path pruning bound is the
makespan of the same event stream scheduled on a relaxed (contention-free)
engine.

Quickstart — record a trace of a real execution::

    from repro.sim import EventEngine, InMemoryTraceRecorder

    recorder = InMemoryTraceRecorder()
    engine = EventEngine(num_devices=rt.num_ranks, recorder=recorder)
    executor = DirectExecutor(a, b, c, cost_model, config, engine=engine)
    executor.execute(per_rank_ops)
    recorder.dump_chrome_trace("matmul_trace.json")  # open in Perfetto
"""

from repro.sim.engine import EventEngine
from repro.sim.events import EventKind, ScheduledEvent
from repro.sim.graphtime import GraphTiming, dag_makespan
from repro.sim.trace import InMemoryTraceRecorder, TraceRecorder

__all__ = [
    "EventEngine",
    "EventKind",
    "ScheduledEvent",
    "GraphTiming",
    "dag_makespan",
    "InMemoryTraceRecorder",
    "TraceRecorder",
    "BatchEvaluator",
    "CandidateProgram",
]


def __getattr__(name: str):
    # repro.sim.batch imports the bench/core layers, which import this
    # package back for the engine — resolve the batch evaluator lazily so
    # the cycle never bites at import time.
    if name in ("BatchEvaluator", "CandidateProgram"):
        from repro.sim import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
