"""Vectorized + incremental candidate evaluation for the planner search.

The planner's cold path used to pay three full op-generation passes per
candidate (eager occupancy bound, lazy critical-path refinement, final
simulation), each one rebuilding ``Runtime``/``DistributedMatrix`` objects
and walking Python ``LocalMatmulOp`` dataclasses.  This module collapses all
of that into a compile-once / price-vectorized / replay-incremental pipeline:

1. **Candidate compilation** (:meth:`BatchEvaluator.compile`) — each
   (scheme, replication, stationary) candidate is compiled exactly once into
   a :class:`CandidateProgram`: a flat numpy event table (one row per
   generated op, columns for rank, shape, operand owners/tiles/bytes and the
   remote/first-fetch flags) produced by a primitive-int re-implementation of
   the slicing op generator that allocates no per-op objects.  Symbolic
   matrices, the tile-byte memo, and the replica-reduction term are cached
   per (scheme, replication) class and shared by every stationary variant.

2. **Vectorized frontier pricing**
   (:meth:`BatchEvaluator.frontier_occupancy_bounds`) — the eager occupancy
   bound for the whole enumerated frontier is one array program: every
   candidate's event table is priced with the cost model's formulas
   elementwise (identical operation order, so the results are bit-equal to
   the scalar path), stacked into (slot, value) pairs in the scalar loop's
   emission order, and reduced with a single grouped segment-sum
   (``np.bincount``) followed by a per-device max.  The replica-reduction
   term is computed once per (scheme, replication) class, not per candidate.

3. **Delta re-simulation** (:meth:`BatchEvaluator.critical_bound`) — the
   critical-path refinement replays the executor's event stream on the
   relaxed (contention-free) engine.  Relaxed ranks are independent, so the
   replay decomposes into per-rank folds over the event table; each fold
   records periodic checkpoints, and a later candidate whose per-rank stream
   shares a prefix with a cached trace resumes from the deepest valid
   checkpoint instead of replaying from zero (checkpoint-and-recompute).

Correctness bar: every number this module produces is **bit-equal** to the
scalar path (``candidate_lower_bound`` / ``run_ua_point``).  That is achieved
by mirroring the exact arithmetic (operation and association order) of
:class:`repro.core.cost_model.CostModel` and by emitting summation terms in
the exact order of the scalar accumulation loops — ``np.bincount`` adds its
weights sequentially in input order, so per-slot partial sums round
identically.  The property suite pins this across dense, block-sparse, and
MoE-ragged workloads.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.sweep import SweepPoint
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.core.direct import DirectExecutor
from repro.core.matmul import model_reduce_time
from repro.core.slicing import apply_iteration_offset, check_coverage, generate_all_ops
from repro.core.stationary import Stationary, parse_stationary
from repro.core.structure import (
    ROLE_A,
    ROLE_B,
    ROLE_C,
    prune_structured_ops,
    resolve_structure,
)
from repro.dist.matrix import DistributedMatrix
from repro.runtime.runtime import Runtime
from repro.sim.engine import EventEngine
from repro.topology.machines import MachineSpec
from repro.util.indexing import Interval
from repro.util.validation import check_matmul_shapes

#: Engine slot layout inside one device's occupancy vector.  The order is
#: arbitrary (the bound takes a max over engines) but must stay fixed.
_E_COMPUTE, _E_COPY, _E_ACCUMULATE, _E_INGRESS, _E_EGRESS = range(5)
_NUM_ENGINES = 5

#: Checkpoint interval of the relaxed replay fold (ops between snapshots).
_CHECKPOINT_EVERY = 8
#: Cached relaxed-replay traces kept per rank (oldest evicted first).
_TRACES_PER_RANK = 8

#: Row layout of the enumeration: one flat tuple per op, split into typed
#: columns once at the end (every value — tile indices, extents, byte counts
#: — is far below 2**53, so the float64 staging is exact).
_INT_COLUMNS = ("rank", "m", "n", "k",
                "a_owner", "b_owner", "c_owner", "a_key", "b_key",
                "stat_i", "stat_j")
_BOOL_COLUMNS = ("a_remote", "b_remote", "c_remote", "a_first", "b_first")
_FLOAT_COLUMNS = ("a_bytes", "b_bytes", "c_bytes", "gemm")
_ROW_COLUMNS = _INT_COLUMNS + _BOOL_COLUMNS + _FLOAT_COLUMNS


class _OpView:
    """Minimal op stand-in accepted by ``CostModel.structured_op_compute_time``."""

    __slots__ = ("m_bound", "k_bound", "n_bound", "itemsize")

    def __init__(self, m_bound: Interval, k_bound: Interval, n_bound: Interval,
                 itemsize: int) -> None:
        self.m_bound = m_bound
        self.k_bound = k_bound
        self.n_bound = n_bound
        self.itemsize = itemsize

    @property
    def m(self) -> int:
        return self.m_bound.extent

    @property
    def n(self) -> int:
        return self.n_bound.extent

    @property
    def k(self) -> int:
        return self.k_bound.extent


class _MatrixGeom:
    """Flat geometry of one distributed operand: splits, owners, tile bytes."""

    __slots__ = ("matrix", "label", "row_splits", "col_splits", "ncols",
                 "positions", "rpr", "itemsize", "tiles_by_position",
                 "tile_bytes")

    def __init__(self, matrix: DistributedMatrix, label: str) -> None:
        self.matrix = matrix
        self.label = label
        self.row_splits = matrix.grid.row_splits
        self.col_splits = matrix.grid.col_splits
        self.ncols = matrix.grid.num_col_tiles
        # Position (per-replica owner slot) of each tile, row-major.
        self.positions = [int(p) for p in matrix._owners.ravel()]
        self.rpr = matrix.replication.ranks_per_replica
        self.itemsize = matrix.dtype.itemsize
        # Same insertion order as the matrix's own position index (row-major
        # grid walk), which is what ``my_tiles`` iterates.
        self.tiles_by_position: Dict[int, List[Tuple[int, int]]] = {}
        for flat, position in enumerate(self.positions):
            self.tiles_by_position.setdefault(position, []).append(
                divmod(flat, self.ncols)
            )
        self.tile_bytes: Dict[int, float] = {}

    def full_tile_bytes(self, flat: int, structure) -> float:
        """Whole-tile fetch bytes (structure-scaled), memoized per tile."""
        cached = self.tile_bytes.get(flat)
        if cached is None:
            i, j = divmod(flat, self.ncols)
            r0, r1 = self.row_splits[i], self.row_splits[i + 1]
            c0, c1 = self.col_splits[j], self.col_splits[j + 1]
            cached = (r1 - r0) * (c1 - c0) * self.itemsize
            if structure is not None:
                cached *= structure.live_fraction(self.label, Interval(r0, r1),
                                                  Interval(c0, c1))
            self.tile_bytes[flat] = cached
        return cached


def _axis_range(splits: Tuple[int, ...], start: int, stop: int) -> range:
    """Tile-index range overlapping ``[start, stop)`` (TileGrid._axis_range)."""
    lo = start if start > 0 else 0
    extent = splits[-1]
    hi = stop if stop < extent else extent
    if hi <= lo:
        return range(0)
    return range(bisect_right(splits, lo) - 1, bisect_left(splits, hi))


@dataclass
class _ClassData:
    """State shared by every stationary variant of one (scheme, replication)."""

    a: DistributedMatrix
    b: DistributedMatrix
    c: DistributedMatrix
    a_geom: _MatrixGeom
    b_geom: _MatrixGeom
    c_geom: _MatrixGeom
    reduce_time: float


def _split_columns(table: np.ndarray) -> Dict[str, np.ndarray]:
    """Split a flat ``(num_ops, 20)`` float64 table into typed named columns.

    All values are staged exactly in float64 (tile indices, extents, and byte
    counts are far below 2**53), so the int64/bool round-trips here are
    lossless and the split can run lazily — or once over a whole stacked
    frontier — without changing a single bit.
    """
    columns: Dict[str, np.ndarray] = {}
    for pos, name in enumerate(_ROW_COLUMNS):
        raw = table[:, pos]
        if name in _FLOAT_COLUMNS:
            columns[name] = raw
        elif name in _BOOL_COLUMNS:
            columns[name] = raw != 0.0
        else:
            columns[name] = raw.astype(np.int64)
    return columns


class CandidateProgram:
    """One compiled candidate: the flat event table plus lazy derived views.

    The raw table is in *generation* order (the slicing generator's emission
    order, rank-major).  Typed column views are split lazily — the eager
    frontier pass works on one stacked table instead, so only candidates that
    reach refinement pay for their own split.  Priced duration columns are
    attached by the evaluator's vectorized pricing pass; execution-order
    views (iteration offset applied) are derived lazily as well.
    """

    def __init__(self, candidate, cls: _ClassData, table: np.ndarray,
                 rank_starts: np.ndarray) -> None:
        self.candidate = candidate
        self.cls = cls
        self.table = table
        self.rank_starts = rank_starts
        self.num_ops = int(table.shape[0])
        self.priced = False
        #: Occupancy bound term (pre reduce-time), generation order.
        self.occupancy: Optional[float] = None
        #: Occupancy floor summed in execution order — the critical-path
        #: bound recomputes its floor over the offset stream, whose different
        #: summation order rounds differently in general.
        self.occupancy_exec: Optional[float] = None
        self._col: Optional[Dict[str, np.ndarray]] = None
        self._dur: Optional[Dict[str, np.ndarray]] = None
        self._exec: Optional[Dict[str, np.ndarray]] = None
        self._real_ops = None

    @property
    def col(self) -> Dict[str, np.ndarray]:
        """Typed named columns, split from the flat table on first access."""
        if self._col is None:
            self._col = _split_columns(self.table)
            if self._dur is not None:
                self._col.update(self._dur)
        return self._col

    def attach_durations(self, durations: Dict[str, np.ndarray]) -> None:
        """Install the priced duration columns from the vectorized pass."""
        self._dur = durations
        if self._col is not None:
            self._col.update(durations)
        self.priced = True

    # ------------------------------------------------------------------ #
    def exec_columns(self, iteration_offset: bool) -> Dict[str, np.ndarray]:
        """Priced columns permuted into execution order (offset applied)."""
        if self._exec is None:
            if iteration_offset:
                perm = self._offset_permutation()
            else:
                perm = np.arange(self.num_ops, dtype=np.int64)
            cols = {name: arr[perm] for name, arr in self.col.items()}
            # First-occurrence flags depend on stream order: recompute them
            # over the permuted stream exactly as the executor's per-rank
            # tile cache sees it.
            for key_name, remote_name, first_name in (
                ("a_key", "a_remote", "a_first"),
                ("b_key", "b_remote", "b_first"),
            ):
                first = np.zeros(self.num_ops, dtype=bool)
                keys = cols[key_name]
                remote = cols[remote_name]
                ranks = cols["rank"]
                seen: set = set()
                for i in range(self.num_ops):
                    if remote[i]:
                        token = (int(ranks[i]), int(keys[i]))
                        if token not in seen:
                            seen.add(token)
                            first[i] = True
                cols[first_name] = first
            self._exec = cols
        return self._exec

    def _offset_permutation(self) -> np.ndarray:
        """Per-rank iteration-offset rotation as an index permutation."""
        stat_i = self.col["stat_i"]
        stat_j = self.col["stat_j"]
        perm: List[int] = []
        starts = self.rank_starts
        for rank in range(len(starts) - 1):
            lo, hi = int(starts[rank]), int(starts[rank + 1])
            groups: Dict[Tuple[int, int], List[int]] = {}
            order: List[Tuple[int, int]] = []
            for idx in range(lo, hi):
                key = (int(stat_i[idx]), int(stat_j[idx]))
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(idx)
            for key in order:
                group = groups[key]
                offset = (key[0] + key[1]) % len(group)
                perm.extend(group[offset:])
                perm.extend(group[:offset])
        return np.asarray(perm, dtype=np.int64)


@dataclass
class _ReplayState:
    """Snapshot of the per-rank relaxed-replay fold after some prefix of ops."""

    avail_compute: float = 0.0
    avail_copy: float = 0.0
    avail_accumulate: float = 0.0
    #: Remote-tile fetch completion per flat tile id (the executor's cache).
    cache_a: Dict[int, float] = field(default_factory=dict)
    cache_b: Dict[int, float] = field(default_factory=dict)
    #: Issued-but-unconsumed prefetches: op index -> (a ready, b ready).
    pending: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    next_prefetch: int = 0
    gemm_start: List[float] = field(default_factory=list)
    gemm_end: List[float] = field(default_factory=list)
    acc_end: List[float] = field(default_factory=list)

    def copy(self) -> "_ReplayState":
        return _ReplayState(
            avail_compute=self.avail_compute,
            avail_copy=self.avail_copy,
            avail_accumulate=self.avail_accumulate,
            cache_a=dict(self.cache_a),
            cache_b=dict(self.cache_b),
            pending=dict(self.pending),
            next_prefetch=self.next_prefetch,
            gemm_start=list(self.gemm_start),
            gemm_end=list(self.gemm_end),
            acc_end=list(self.acc_end),
        )


@dataclass
class _RankTrace:
    """One cached relaxed replay: the stream key, its finish, checkpoints."""

    key: np.ndarray
    finish: float
    checkpoints: List[Tuple[int, _ReplayState]]


class BatchEvaluator:
    """Compile-once, price-vectorized, replay-incremental candidate evaluator.

    One instance serves one ``search_partitionings`` call: it owns the cached
    candidate programs, the per-class symbolic matrices, one reusable
    :class:`EventEngine` (reset between simulations instead of rebuilt), and
    the relaxed-replay trace cache that powers delta re-simulation.  Only
    valid for ``simulate_only`` direct-mode configs — the matrices it shares
    across candidates carry no data.
    """

    def __init__(self, machine: MachineSpec, workload: Workload,
                 config: Optional[ExecutionConfig] = None) -> None:
        self.machine = machine
        self.workload = workload
        self.config = config or ExecutionConfig(simulate_only=True)
        if not self.config.simulate_only:
            raise ValueError("BatchEvaluator shares symbolic matrices across "
                             "candidates; it requires simulate_only configs")
        self.cost_model = CostModel(machine)
        self.structure = resolve_structure(workload.structure)
        self.m, self.n, self.k = check_matmul_shapes(*workload.shapes)
        self._structure_validated = False
        # One runtime for every symbolic matrix: unmaterialized creates never
        # touch runtime state, and rebuilding heaps/pools per class is pure
        # overhead on the cold path.
        self._runtime = Runtime(machine=machine)
        self._axis_ranges: Dict[Tuple[Tuple[int, ...], int, int], range] = {}
        self._classes: Dict[Tuple[int, Tuple[int, int, int]], _ClassData] = {}
        self._programs: Dict[Tuple[int, Tuple[int, int, int], str],
                             CandidateProgram] = {}
        self._engine = EventEngine(machine.num_devices)
        self._replay_cache: Dict[int, List[_RankTrace]] = {}
        # Pairwise latency/bandwidth tables for vectorized pricing.
        topology = machine.topology
        p = machine.num_devices
        self._lat = np.array([[topology.latency(s, d) for d in range(p)]
                              for s in range(p)], dtype=np.float64)
        self._bw = np.array([[topology.bandwidth(s, d) for d in range(p)]
                             for s in range(p)], dtype=np.float64)
        #: Seconds spent compiling candidate event tables (op generation).
        self.opgen_seconds = 0.0
        #: Relaxed-replay reuse counters: cold folds, checkpoint resumes,
        #: and whole-trace hits.
        self.replay_stats = {"cold": 0, "delta": 0, "full": 0}

    # ------------------------------------------------------------------ #
    # candidate compilation
    # ------------------------------------------------------------------ #
    def _class_data(self, candidate) -> _ClassData:
        key = (id(candidate.scheme), tuple(candidate.replication))
        data = self._classes.get(key)
        if data is None:
            runtime = self._runtime
            rep_a, rep_b, rep_c = candidate.replication
            p = self.machine.num_devices
            part_a, part_b, part_c = candidate.scheme.partitions(
                self.workload, p // rep_a, p // rep_b, p // rep_c
            )
            a_shape, b_shape, c_shape = self.workload.shapes
            a = DistributedMatrix.create(runtime, a_shape, part_a, replication=rep_a,
                                         name="A", materialize=False)
            b = DistributedMatrix.create(runtime, b_shape, part_b, replication=rep_b,
                                         name="B", materialize=False)
            c = DistributedMatrix.create(runtime, c_shape, part_c, replication=rep_c,
                                         name="C", materialize=False)
            data = _ClassData(
                a=a, b=b, c=c,
                a_geom=_MatrixGeom(a, ROLE_A),
                b_geom=_MatrixGeom(b, ROLE_B),
                c_geom=_MatrixGeom(c, ROLE_C),
                reduce_time=model_reduce_time(c, self.cost_model,
                                              structure=self.structure),
            )
            self._classes[key] = data
        return data

    def compile(self, candidate) -> CandidateProgram:
        """Build (or fetch) the candidate's flat event table."""
        key = (id(candidate.scheme), tuple(candidate.replication),
               candidate.stationary)
        program = self._programs.get(key)
        if program is None:
            started = time.perf_counter()
            cls = self._class_data(candidate)
            table, rank_starts = self._enumerate(
                cls, parse_stationary(candidate.stationary)
            )
            program = CandidateProgram(candidate, cls, table, rank_starts)
            self._programs[key] = program
            self.opgen_seconds += time.perf_counter() - started
        return program

    def _enumerate(self, cls: _ClassData, stationary: Stationary):
        """Primitive-int re-implementation of ``generate_all_ops`` + pruning.

        Emits the exact op stream (same order, same dedup discipline) as the
        slicing generator followed by ``prune_structured_ops``, without
        constructing any per-op objects.  The property suite pins equality
        against the reference generator.
        """
        out: List[tuple] = []
        num_ranks = self.machine.num_devices
        rank_starts = np.zeros(num_ranks + 1, dtype=np.int64)
        if stationary is Stationary.C:
            emit_rank = self._emit_stationary_c
        elif stationary is Stationary.B:
            emit_rank = self._emit_stationary_b
        else:
            emit_rank = self._emit_stationary_a
        for rank in range(num_ranks):
            emit_rank(cls, rank, out)
            rank_starts[rank + 1] = len(out)
        table = np.asarray(out, dtype=np.float64)
        if table.size == 0:
            table = table.reshape(0, len(_ROW_COLUMNS))
        return table, rank_starts

    def _axis_range_cached(self, splits: Tuple[int, ...], start: int,
                           stop: int) -> range:
        """Memoized ``_axis_range`` — split tuples repeat heavily across the
        frontier (classes share operand grids), so the bisects amortize."""
        key = (splits, start, stop)
        cached = self._axis_ranges.get(key)
        if cached is None:
            cached = _axis_range(splits, start, stop)
            self._axis_ranges[key] = cached
        return cached

    # -- shared per-op emission ----------------------------------------- #
    def _emit_op(self, cls: _ClassData, rank: int, out: List[tuple],
                 seen_a: set, seen_b: set,
                 a_flat: int, b_flat: int, c_flat: int,
                 m0: int, m1: int, k0: int, k1: int, n0: int, n1: int,
                 stat: Tuple[int, int]) -> None:
        structure = self.structure
        c_geom = cls.c_geom
        m_ext = m1 - m0
        k_ext = k1 - k0
        n_ext = n1 - n0
        if structure is not None:
            mb = Interval(m0, m1)
            kb = Interval(k0, k1)
            nb = Interval(n0, n1)
            # Mirror prune_structured_ops: fully masked cuboids are dropped
            # before dedup bookkeeping and before any pricing.
            if structure.flops_fraction(mb, kb, nb) <= 0.0:
                return
            fractions = structure.op_fractions(mb, kb, nb)
            c_bytes = (m_ext * n_ext * c_geom.itemsize) * fractions[3]
            gemm = self.cost_model.structured_op_compute_time(
                _OpView(mb, kb, nb, c_geom.itemsize), structure, fractions
            )
        else:
            c_bytes = m_ext * n_ext * c_geom.itemsize
            gemm = 0.0  # dense GEMMs are priced vectorized later
        a_geom, b_geom = cls.a_geom, cls.b_geom
        a_owner = (rank // a_geom.rpr) * a_geom.rpr + a_geom.positions[a_flat]
        b_owner = (rank // b_geom.rpr) * b_geom.rpr + b_geom.positions[b_flat]
        c_owner = (rank // c_geom.rpr) * c_geom.rpr + c_geom.positions[c_flat]
        a_remote = a_owner != rank
        b_remote = b_owner != rank
        a_first = False
        if a_remote and a_flat not in seen_a:
            seen_a.add(a_flat)
            a_first = True
        b_first = False
        if b_remote and b_flat not in seen_b:
            seen_b.add(b_flat)
            b_first = True
        out.append((
            rank, m_ext, n_ext, k_ext,
            a_owner, b_owner, c_owner, a_flat, b_flat, stat[0], stat[1],
            a_remote, b_remote, c_owner != rank, a_first, b_first,
            a_geom.full_tile_bytes(a_flat, structure),
            b_geom.full_tile_bytes(b_flat, structure),
            c_bytes, gemm,
        ))

    def _emit_stationary_c(self, cls: _ClassData, rank: int, out) -> None:
        a, b, c = cls.a_geom, cls.b_geom, cls.c_geom
        replica = rank // c.rpr
        k_share0, k_share1 = cls.c.replication.work_share(replica, self.k)
        seen_a: set = set()
        seen_b: set = set()
        for (ci, cj) in c.tiles_by_position.get(rank % c.rpr, ()):
            c_r0, c_r1 = c.row_splits[ci], c.row_splits[ci + 1]
            c_c0, c_c1 = c.col_splits[cj], c.col_splits[cj + 1]
            a_cols = self._axis_range_cached(a.col_splits, k_share0, k_share1)
            b_cols = self._axis_range_cached(b.col_splits, c_c0, c_c1)
            for ai in self._axis_range_cached(a.row_splits, c_r0, c_r1):
                a_r0, a_r1 = a.row_splits[ai], a.row_splits[ai + 1]
                m0 = c_r0 if c_r0 > a_r0 else a_r0
                m1 = c_r1 if c_r1 < a_r1 else a_r1
                if m1 <= m0:
                    continue
                for aj in a_cols:
                    a_c0, a_c1 = a.col_splits[aj], a.col_splits[aj + 1]
                    ka0 = a_c0 if a_c0 > k_share0 else k_share0
                    ka1 = a_c1 if a_c1 < k_share1 else k_share1
                    if ka1 <= ka0:
                        continue
                    a_flat = ai * a.ncols + aj
                    for bi in self._axis_range_cached(b.row_splits, ka0, ka1):
                        b_r0, b_r1 = b.row_splits[bi], b.row_splits[bi + 1]
                        kk0 = ka0 if ka0 > b_r0 else b_r0
                        kk1 = ka1 if ka1 < b_r1 else b_r1
                        if kk1 <= kk0:
                            continue
                        for bj in b_cols:
                            b_c0, b_c1 = b.col_splits[bj], b.col_splits[bj + 1]
                            nn0 = b_c0 if b_c0 > c_c0 else c_c0
                            nn1 = b_c1 if b_c1 < c_c1 else c_c1
                            if nn1 <= nn0:
                                continue
                            self._emit_op(cls, rank, out, seen_a, seen_b,
                                          a_flat, bi * b.ncols + bj,
                                          ci * c.ncols + cj,
                                          m0, m1, kk0, kk1, nn0, nn1, (ci, cj))

    def _emit_stationary_b(self, cls: _ClassData, rank: int, out) -> None:
        a, b, c = cls.a_geom, cls.b_geom, cls.c_geom
        replica = rank // b.rpr
        m_share0, m_share1 = cls.b.replication.work_share(replica, self.m)
        seen_a: set = set()
        seen_b: set = set()
        for (bi, bj) in b.tiles_by_position.get(rank % b.rpr, ()):
            b_r0, b_r1 = b.row_splits[bi], b.row_splits[bi + 1]
            b_c0, b_c1 = b.col_splits[bj], b.col_splits[bj + 1]
            b_flat = bi * b.ncols + bj
            a_cols = self._axis_range_cached(a.col_splits, b_r0, b_r1)
            c_cols = self._axis_range_cached(c.col_splits, b_c0, b_c1)
            for ai in self._axis_range_cached(a.row_splits, m_share0, m_share1):
                a_r0, a_r1 = a.row_splits[ai], a.row_splits[ai + 1]
                ma0 = a_r0 if a_r0 > m_share0 else m_share0
                ma1 = a_r1 if a_r1 < m_share1 else m_share1
                if ma1 <= ma0:
                    continue
                for aj in a_cols:
                    a_c0, a_c1 = a.col_splits[aj], a.col_splits[aj + 1]
                    kk0 = a_c0 if a_c0 > b_r0 else b_r0
                    kk1 = a_c1 if a_c1 < b_r1 else b_r1
                    if kk1 <= kk0:
                        continue
                    a_flat = ai * a.ncols + aj
                    for ci in self._axis_range_cached(c.row_splits, ma0, ma1):
                        c_r0, c_r1 = c.row_splits[ci], c.row_splits[ci + 1]
                        m0 = ma0 if ma0 > c_r0 else c_r0
                        m1 = ma1 if ma1 < c_r1 else c_r1
                        if m1 <= m0:
                            continue
                        for cj in c_cols:
                            c_c0, c_c1 = c.col_splits[cj], c.col_splits[cj + 1]
                            nn0 = b_c0 if b_c0 > c_c0 else c_c0
                            nn1 = b_c1 if b_c1 < c_c1 else c_c1
                            if nn1 <= nn0:
                                continue
                            self._emit_op(cls, rank, out, seen_a, seen_b,
                                          a_flat, b_flat, ci * c.ncols + cj,
                                          m0, m1, kk0, kk1, nn0, nn1, (bi, bj))

    def _emit_stationary_a(self, cls: _ClassData, rank: int, out) -> None:
        a, b, c = cls.a_geom, cls.b_geom, cls.c_geom
        replica = rank // a.rpr
        n_share0, n_share1 = cls.a.replication.work_share(replica, self.n)
        seen_a: set = set()
        seen_b: set = set()
        for (ai, aj) in a.tiles_by_position.get(rank % a.rpr, ()):
            a_r0, a_r1 = a.row_splits[ai], a.row_splits[ai + 1]
            a_c0, a_c1 = a.col_splits[aj], a.col_splits[aj + 1]
            a_flat = ai * a.ncols + aj
            b_cols = self._axis_range_cached(b.col_splits, n_share0, n_share1)
            for bi in self._axis_range_cached(b.row_splits, a_c0, a_c1):
                b_r0, b_r1 = b.row_splits[bi], b.row_splits[bi + 1]
                kk0 = a_c0 if a_c0 > b_r0 else b_r0
                kk1 = a_c1 if a_c1 < b_r1 else b_r1
                if kk1 <= kk0:
                    continue
                for bj in b_cols:
                    b_c0, b_c1 = b.col_splits[bj], b.col_splits[bj + 1]
                    nb0 = b_c0 if b_c0 > n_share0 else n_share0
                    nb1 = b_c1 if b_c1 < n_share1 else n_share1
                    if nb1 <= nb0:
                        continue
                    b_flat = bi * b.ncols + bj
                    c_cols = self._axis_range_cached(c.col_splits, nb0, nb1)
                    for ci in self._axis_range_cached(c.row_splits, a_r0, a_r1):
                        c_r0, c_r1 = c.row_splits[ci], c.row_splits[ci + 1]
                        m0 = a_r0 if a_r0 > c_r0 else c_r0
                        m1 = a_r1 if a_r1 < c_r1 else c_r1
                        if m1 <= m0:
                            continue
                        for cj in c_cols:
                            c_c0, c_c1 = c.col_splits[cj], c.col_splits[cj + 1]
                            nn0 = nb0 if nb0 > c_c0 else c_c0
                            nn1 = nb1 if nb1 < c_c1 else c_c1
                            if nn1 <= nn0:
                                continue
                            self._emit_op(cls, rank, out, seen_a, seen_b,
                                          a_flat, b_flat, ci * c.ncols + cj,
                                          m0, m1, kk0, kk1, nn0, nn1, (ai, aj))

    # ------------------------------------------------------------------ #
    # vectorized pricing
    # ------------------------------------------------------------------ #
    def _duration_columns(self, col: Dict[str, np.ndarray],
                          c_itemsize: float) -> Dict[str, np.ndarray]:
        """Price one (possibly stacked) column set in a single array pass.

        Every formula below mirrors the corresponding ``CostModel`` method
        operation-for-operation (same association order, same guards), which
        is what makes the vectorized durations bit-equal to the scalar ones.
        """
        machine = self.machine
        shape = self.cost_model.shape_model
        launch = machine.kernel_launch_overhead
        acc_eff = max(machine.accumulate_efficiency, 1.0e-6)
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.structure is None:
                # CostModel.gemm_time — the op generator stamps ops with
                # c.dtype.itemsize, shared by the whole workload.
                m, n, k = col["m"], col["n"], col["k"]
                flops = 2.0 * m * n * k
                bytes_touched = c_itemsize * (m * k + k * n + 2 * m * n)
                efficiency = machine.gemm_efficiency * (
                    (m / (m + shape.m_half)) * (n / (n + shape.n_half))
                    * (k / (k + shape.k_half))
                )
                compute_time = flops / (machine.flops_peak
                                        * np.maximum(efficiency, 1.0e-3))
                memory_time = bytes_touched / machine.memory_bandwidth
                gemm = np.maximum(compute_time, memory_time) + launch
            else:
                gemm = col["gemm"]  # priced scalar at compile time

            rank = col["rank"]
            c_owner = col["c_owner"]
            c_bytes = col["c_bytes"]
            c_remote = col["c_remote"]
            # CostModel.accumulate_time(rank, c_owner, c_bytes)
            lat = self._lat[rank, c_owner]
            transfer = lat + c_bytes / self._bw[rank, c_owner]
            remote_acc = launch + lat + (transfer - lat) / acc_eff
            # CostModel.local_accumulate_time(c_bytes)
            local_acc = 3.0 * c_bytes / machine.memory_bandwidth + launch
            acc = np.where(c_bytes <= 0, 0.0,
                           np.where(c_remote, remote_acc, local_acc))
            # CostModel.device_link_time(c_bytes, accumulate=True)
            ingress = np.where(c_bytes <= 0, 0.0,
                               (c_bytes / machine.device_link_bandwidth) / acc_eff)

            fetch: Dict[str, np.ndarray] = {}
            egress: Dict[str, np.ndarray] = {}
            for side in ("a", "b"):
                owner = col[f"{side}_owner"]
                nbytes = col[f"{side}_bytes"]
                # CostModel.transfer_time(owner, rank, nbytes) — only remote
                # rows are ever consumed, so the src == dst guard is subsumed
                # by the remote mask at assembly time.
                duration = self._lat[owner, rank] + nbytes / self._bw[owner, rank]
                fetch[side] = np.where(nbytes <= 0, 0.0, duration)
                # CostModel.device_link_time(nbytes)
                egress[side] = np.where(nbytes <= 0, 0.0,
                                        nbytes / machine.device_link_bandwidth)

        return {"gemm": gemm, "acc": acc, "ingress": ingress,
                "a_fetch": fetch["a"], "b_fetch": fetch["b"],
                "a_egress": egress["a"], "b_egress": egress["b"]}

    def _price_programs(self, programs: Sequence[CandidateProgram]) -> None:
        """Attach duration columns to each unpriced program."""
        todo = [p for p in programs if not p.priced]
        if not todo:
            return
        if len(todo) == 1:
            program = todo[0]
            program.attach_durations(self._duration_columns(
                program.col, float(program.cls.c_geom.itemsize)))
            return
        offsets = np.cumsum([0] + [p.num_ops for p in todo])
        stacked = _split_columns(np.concatenate([p.table for p in todo]))
        durations = self._duration_columns(
            stacked, float(todo[0].cls.c_geom.itemsize))
        for i, program in enumerate(todo):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            program.attach_durations(
                {name: arr[lo:hi] for name, arr in durations.items()})

    def _occupancy_rows(self, cols: Dict[str, np.ndarray]
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """(slot, value) pairs in the scalar occupancy loop's emission order.

        Seven terms per op, row-major, matching ``direct_lower_bound``:
        GEMM -> accumulate (remote on the accumulate engine, local on
        compute) -> ingress -> fetch A -> egress A -> fetch B -> egress B.
        Terms the scalar loop never adds are routed to a per-candidate trash
        slot with value 0.
        """
        num = cols["rank"].shape[0]
        p = self.machine.num_devices
        trash = p * _NUM_ENGINES
        slots = np.empty((num, 7), dtype=np.int64)
        vals = np.zeros((num, 7), dtype=np.float64)
        base = cols["rank"] * _NUM_ENGINES
        c_remote = cols["c_remote"]
        slots[:, 0] = base + _E_COMPUTE
        vals[:, 0] = cols["gemm"]
        slots[:, 1] = np.where(c_remote, base + _E_ACCUMULATE, base + _E_COMPUTE)
        vals[:, 1] = cols["acc"]
        slots[:, 2] = np.where(c_remote,
                               cols["c_owner"] * _NUM_ENGINES + _E_INGRESS, trash)
        vals[:, 2] = np.where(c_remote, cols["ingress"], 0.0)
        cache = self.config.cache_remote_tiles
        for offset, side in ((3, "a"), (5, "b")):
            emit = cols[f"{side}_remote"]
            if cache:
                emit = emit & cols[f"{side}_first"]
            slots[:, offset] = np.where(emit, base + _E_COPY, trash)
            vals[:, offset] = np.where(emit, cols[f"{side}_fetch"], 0.0)
            slots[:, offset + 1] = np.where(
                emit, cols[f"{side}_owner"] * _NUM_ENGINES + _E_EGRESS, trash)
            vals[:, offset + 1] = np.where(emit, cols[f"{side}_egress"], 0.0)
        return slots.reshape(-1), vals.reshape(-1)

    def frontier_occupancy_bounds(self, candidates) -> List[float]:
        """Occupancy bound (+ class reduce term) for a whole frontier at once.

        One grouped segment-sum over the stacked event tables: each
        candidate's terms land in its own slot range, ``np.bincount``
        accumulates them sequentially in emission order (bit-equal to the
        scalar loop), and a per-device max finishes the bound.
        """
        programs = [self.compile(candidate) for candidate in candidates]
        if not programs:
            return []
        counts = np.asarray([p.num_ops for p in programs], dtype=np.int64)
        offsets = np.zeros(len(programs) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # One stacked split + one pricing pass for the whole frontier; the
        # per-program duration slices are views into the stacked arrays.
        stacked = _split_columns(np.concatenate([p.table for p in programs]))
        durations = self._duration_columns(
            stacked, float(programs[0].cls.c_geom.itemsize))
        for i, program in enumerate(programs):
            if not program.priced:
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                program.attach_durations(
                    {name: arr[lo:hi] for name, arr in durations.items()})
        stacked.update(durations)
        p = self.machine.num_devices
        stride = p * _NUM_ENGINES + 1
        slots, vals = self._occupancy_rows(stacked)
        # Offset each row's 7 slots into its candidate's segment: rows are
        # program-major, so the global accumulation order matches the
        # per-program scalar loops chunk for chunk.
        prog_idx = np.repeat(np.arange(len(programs), dtype=np.int64), counts)
        slots += np.repeat(prog_idx * stride, 7)
        totals = np.bincount(slots, weights=vals,
                             minlength=len(programs) * stride)
        per_engine = totals.reshape(len(programs), stride)[:, :p * _NUM_ENGINES]
        occupancy = per_engine.max(axis=1)
        bounds = []
        for program, occ in zip(programs, occupancy):
            program.occupancy = float(occ)
            bounds.append(float(occ) + program.cls.reduce_time)
        return bounds

    def _single_occupancy(self, cols: Dict[str, np.ndarray]) -> float:
        slots, vals = self._occupancy_rows(cols)
        p = self.machine.num_devices
        totals = np.bincount(slots, weights=vals,
                             minlength=p * _NUM_ENGINES + 1)
        return float(totals[:p * _NUM_ENGINES].max())

    # ------------------------------------------------------------------ #
    # critical-path refinement (relaxed replay with delta reuse)
    # ------------------------------------------------------------------ #
    def critical_bound(self, candidate) -> float:
        """Critical-path lower bound + reduce term, bit-equal to the scalar path.

        Replays the executor's per-rank event stream (execution order,
        iteration offset applied) on the relaxed timing recurrence; ranks
        sharing a stream prefix with a cached trace resume from the deepest
        valid checkpoint.  Floored by the occupancy bound summed over the
        same execution-order stream, exactly as
        ``CostModel.critical_path_lower_bound`` computes it.
        """
        program = self.compile(candidate)
        self._price_programs([program])
        cols = program.exec_columns(self.config.iteration_offset)
        # Execution order is rank-major (the offset rotates within ranks),
        # so each rank's stream is one contiguous slice.
        boundaries = np.searchsorted(
            cols["rank"], np.arange(self.machine.num_devices + 1)
        )
        relaxed = 0.0
        for device in range(self.machine.num_devices):
            lo, hi = int(boundaries[device]), int(boundaries[device + 1])
            finish = self._replay_rank(device, cols, lo, hi)
            if finish > relaxed:
                relaxed = finish
        if program.occupancy_exec is None:
            program.occupancy_exec = self._single_occupancy(cols)
        occupancy = program.occupancy_exec
        value = relaxed if relaxed > occupancy else occupancy
        return value + program.cls.reduce_time

    def _replay_rank(self, rank: int, cols: Dict[str, np.ndarray],
                     lo: int, hi: int) -> float:
        num = hi - lo
        if num == 0:
            return 0.0
        key_matrix = np.column_stack([
            cols["gemm"][lo:hi],
            cols["c_remote"][lo:hi].astype(np.float64),
            cols["acc"][lo:hi],
            cols["a_remote"][lo:hi].astype(np.float64),
            cols["a_key"][lo:hi].astype(np.float64),
            cols["a_fetch"][lo:hi],
            cols["b_remote"][lo:hi].astype(np.float64),
            cols["b_key"][lo:hi].astype(np.float64),
            cols["b_fetch"][lo:hi],
        ])
        traces = self._replay_cache.setdefault(rank, [])
        depth = self.config.prefetch_depth
        best_resume = 0
        best_state: Optional[_ReplayState] = None
        best_trace: Optional[_RankTrace] = None
        for trace in traces:
            if trace.key.shape == key_matrix.shape and \
                    np.array_equal(trace.key, key_matrix):
                self.replay_stats["full"] += 1
                return trace.finish
            limit = min(trace.key.shape[0], num)
            if limit == 0:
                continue
            eq = (trace.key[:limit] == key_matrix[:limit]).all(axis=1)
            common = limit if bool(eq.all()) else int(np.argmin(eq))
            for index, state in reversed(trace.checkpoints):
                # A checkpoint taken after op index-1 has consumed stream
                # rows [0, index + depth); it transfers iff those rows are
                # shared with the new stream and the old fold's prefetch
                # horizon was not tail-clamped at that point.
                if index > best_resume and index + depth <= common \
                        and index + depth <= trace.key.shape[0]:
                    best_resume = index
                    best_state = state
                    best_trace = trace
                    break
        if best_state is not None:
            self.replay_stats["delta"] += 1
            state = best_state.copy()
            # Checkpoints of the shared prefix remain valid for this stream.
            inherited = [cp for cp in best_trace.checkpoints
                         if cp[0] <= best_resume]
        else:
            self.replay_stats["cold"] += 1
            state = _ReplayState()
            inherited = []
        finish, checkpoints = self._fold(cols, lo, num, best_resume, state)
        traces.append(_RankTrace(key=key_matrix, finish=finish,
                                 checkpoints=inherited + checkpoints))
        if len(traces) > _TRACES_PER_RANK:
            del traces[0]
        return finish

    def _fold(self, cols: Dict[str, np.ndarray], lo: int, num: int,
              start: int, state: _ReplayState):
        """The relaxed-engine timing recurrence for one rank's op stream.

        Mirrors ``DirectExecutor._process_op`` running on
        ``EventEngine(contention=False)``: prefetch issue floors, the
        per-engine FIFO availability updates, the async concurrency windows,
        and the accumulate-compute interference slice.  Mutates ``state``
        (callers pass a fresh or copied snapshot) and returns the rank finish
        time plus the checkpoints recorded along the way.
        """
        config = self.config
        depth = config.prefetch_depth
        async_ = config.async_execution
        w_acc = config.max_concurrent_accumulates
        w_g = config.max_concurrent_gemms
        cache_tiles = config.cache_remote_tiles
        interference = self.machine.accumulate_compute_interference
        hi = lo + num
        gemm_dur = cols["gemm"][lo:hi].tolist()
        c_rem = cols["c_remote"][lo:hi].tolist()
        acc_dur = cols["acc"][lo:hi].tolist()
        a_rem = cols["a_remote"][lo:hi].tolist()
        a_key = cols["a_key"][lo:hi].tolist()
        a_fetch = cols["a_fetch"][lo:hi].tolist()
        b_rem = cols["b_remote"][lo:hi].tolist()
        b_key = cols["b_key"][lo:hi].tolist()
        b_fetch = cols["b_fetch"][lo:hi].tolist()

        avail_c = state.avail_compute
        avail_cp = state.avail_copy
        avail_a = state.avail_accumulate
        cache_a = state.cache_a
        cache_b = state.cache_b
        pending = state.pending
        next_pref = state.next_prefetch
        gemm_start = state.gemm_start
        gemm_end = state.gemm_end
        acc_end = state.acc_end
        checkpoints: List[Tuple[int, _ReplayState]] = []

        def issue(j: int, floor: float) -> None:
            nonlocal avail_cp
            if a_rem[j]:
                if cache_tiles:
                    end = cache_a.get(a_key[j])
                    if end is None:
                        begin = floor if floor > avail_cp else avail_cp
                        end = begin + a_fetch[j]
                        avail_cp = end
                        cache_a[a_key[j]] = end
                    a_end = end
                else:
                    begin = floor if floor > avail_cp else avail_cp
                    avail_cp = begin + a_fetch[j]
                    a_end = avail_cp
            else:
                a_end = 0.0
            if b_rem[j]:
                if cache_tiles:
                    end = cache_b.get(b_key[j])
                    if end is None:
                        begin = floor if floor > avail_cp else avail_cp
                        end = begin + b_fetch[j]
                        avail_cp = end
                        cache_b[b_key[j]] = end
                    b_end = end
                else:
                    begin = floor if floor > avail_cp else avail_cp
                    avail_cp = begin + b_fetch[j]
                    b_end = avail_cp
            else:
                b_end = 0.0
            pending[j] = (a_end, b_end)

        for i in range(start, num):
            floor = gemm_start[i - 1] if i > 0 else 0.0
            if not async_ and i > 0 and acc_end[i - 1] > floor:
                floor = acc_end[i - 1]
            horizon = i + depth
            if horizon > num - 1:
                horizon = num - 1
            while next_pref <= horizon:
                issue(next_pref, floor)
                next_pref += 1
            if next_pref <= i:
                # prefetch_depth == 0 path: fetch exactly when needed.
                issue(i, floor)
                next_pref = i + 1
            a_end, b_end = pending.pop(i)
            earliest = a_end if a_end > b_end else b_end
            if async_:
                if i >= w_acc and acc_end[i - w_acc] > earliest:
                    earliest = acc_end[i - w_acc]
                if i >= w_g and gemm_end[i - w_g] > earliest:
                    earliest = gemm_end[i - w_g]
            elif i > 0 and acc_end[i - 1] > earliest:
                earliest = acc_end[i - 1]
            begin = earliest if earliest > avail_c else avail_c
            finish = begin + gemm_dur[i]
            avail_c = finish
            gemm_start.append(begin)
            gemm_end.append(finish)
            if c_rem[i]:
                acc_begin = finish if finish > avail_a else avail_a
                acc_finish = acc_begin + acc_dur[i]
                avail_a = acc_finish
                if interference > 0.0:
                    slice_begin = acc_begin if acc_begin > avail_c else avail_c
                    avail_c = slice_begin + acc_dur[i] * interference
            else:
                acc_begin = finish if finish > avail_c else avail_c
                acc_finish = acc_begin + acc_dur[i]
                avail_c = acc_finish
            acc_end.append(acc_finish)
            done = i + 1
            if done % _CHECKPOINT_EVERY == 0 and done < num:
                checkpoints.append((done, _ReplayState(
                    avail_compute=avail_c, avail_copy=avail_cp,
                    avail_accumulate=avail_a,
                    cache_a=dict(cache_a), cache_b=dict(cache_b),
                    pending=dict(pending), next_prefetch=next_pref,
                    gemm_start=list(gemm_start), gemm_end=list(gemm_end),
                    acc_end=list(acc_end),
                )))

        finish_time = avail_c
        if avail_cp > finish_time:
            finish_time = avail_cp
        if avail_a > finish_time:
            finish_time = avail_a
        return finish_time, checkpoints

    # ------------------------------------------------------------------ #
    # batch simulation
    # ------------------------------------------------------------------ #
    def real_ops(self, candidate):
        """The candidate's real (pruned) ``LocalMatmulOp`` lists, cached.

        Only candidates that reach full simulation pay for op-object
        construction; the bound paths never touch this.
        """
        program = self.compile(candidate)
        if program._real_ops is None:
            cls = program.cls
            per_rank_ops = generate_all_ops(
                cls.a, cls.b, cls.c, parse_stationary(candidate.stationary)
            )
            if self.config.validate_ops:
                # Coverage is an envelope invariant: checked pre-pruning,
                # exactly as universal_matmul does.
                check_coverage(cls.a, cls.b, cls.c, per_rank_ops)
            if self.structure is not None:
                per_rank_ops = prune_structured_ops(per_rank_ops, self.structure)
            program._real_ops = per_rank_ops
        return program._real_ops

    def simulate(self, candidate) -> SweepPoint:
        """Full contended simulation, bit-equal to ``run_ua_point``.

        Reuses the class's symbolic matrices and the evaluator's single
        :class:`EventEngine` (``reset()`` between candidates) instead of
        rebuilding ``Runtime``/``DistributedMatrix``/engine per point.
        """
        program = self.compile(candidate)
        cls = program.cls
        if self.structure is not None and not self._structure_validated:
            self.structure.validate(self.m, self.n, self.k)
            self._structure_validated = True
        per_rank_ops = self.real_ops(candidate)
        if self.config.iteration_offset:
            per_rank_ops = {
                rank: apply_iteration_offset(ops)
                for rank, ops in per_rank_ops.items()
            }
        self._engine.reset()
        executor = DirectExecutor(cls.a, cls.b, cls.c, self.cost_model,
                                  self.config, engine=self._engine,
                                  structure=self.structure)
        makespan, per_rank_stats = executor.execute(per_rank_ops)
        reduce_time = cls.reduce_time if cls.c.replication.num_replicas > 1 else 0.0
        if self.structure is None:
            total_flops = 2 * self.m * self.n * self.k
        else:
            total_flops = self.structure.effective_flops(self.m, self.n, self.k)
        simulated_time = makespan + reduce_time
        extra = {
            "remote_get_bytes": sum(s.remote_get_bytes
                                    for s in per_rank_stats.values()),
            "remote_accumulate_bytes": sum(s.remote_accumulate_bytes
                                           for s in per_rank_stats.values()),
            "total_ops": sum(len(ops) for ops in per_rank_ops.values()),
        }
        if not self.workload.structure.is_dense:
            extra["structure"] = self.workload.structure.signature_token()
        return SweepPoint(
            series=candidate.scheme.label,
            workload=self.workload.name,
            batch=self.workload.m,
            percent_of_peak=self.cost_model.percent_of_peak(total_flops,
                                                            simulated_time),
            simulated_time=simulated_time,
            stationary=parse_stationary(candidate.stationary).value,
            replication=tuple(candidate.replication),
            extra=extra,
        )
